#!/usr/bin/env python
"""Trace-study walkthrough: crawl a marketplace and mine collusion signals.

Reproduces the paper's Section-3 methodology end to end on the synthetic
Overstock substrate:

1. run the calibrated marketplace for two years;
2. BFS-crawl it from a seed user (the authors' data-collection method);
3. compute every observation the paper reports (O1-O6) on the crawled
   subset: the reputation/business-network correlation, the weak
   personal-network correlation, per-hop rating statistics, category-rank
   CDF and interest-similarity CDF;
4. print the suspicious-behaviour patterns (B1-B4) those observations
   justify.

Run:  python examples/marketplace_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.trace import (
    MarketplaceConfig,
    bfs_crawl,
    business_network_vs_reputation,
    category_rank_distribution,
    generate_trace,
    interest_similarity_cdf,
    personal_network_vs_reputation,
    rating_stats_by_distance,
    transactions_vs_reputation,
)


def main() -> None:
    print("Simulating the marketplace (2500 users, 24 months)...")
    trace = generate_trace(MarketplaceConfig(), seed=7)
    print(f"  {trace.n_users} users, {trace.n_transactions} transactions")

    print("\nBFS-crawling from seed user 0 (cap: 2000 users)...")
    crawled = bfs_crawl(trace, seed_user=0, max_users=2000)
    print(f"  crawled {crawled.n_users} users, {crawled.n_transactions} transactions")

    print("\n--- Observation O1: reputation attracts business (Fig. 1) ---")
    biz = business_network_vs_reputation(crawled)
    tx = transactions_vs_reputation(crawled)
    print(f"  business-network size vs reputation: C = {biz.correlation:.3f} "
          "(paper: 0.996)")
    print(f"  transaction count vs reputation:     C = {tx.correlation:.3f}")

    print("\n--- Observation O2: friends are not reputation (Fig. 2) ---")
    personal = personal_network_vs_reputation(crawled)
    print(f"  personal-network size vs reputation: C = {personal.correlation:.3f} "
          "(paper: 0.092)")
    print("  => a low-reputed user may still have many friends to collude with (I2)")

    print("\n--- Observations O3/O4: social distance shapes ratings (Fig. 3) ---")
    stats = rating_stats_by_distance(crawled)
    for hop, mean, freq in zip(
        stats.hops, stats.mean_rating, stats.mean_ratings_per_pair
    ):
        label = f"{hop}" if hop < stats.hops[-1] else f">={hop}"
        print(f"  hop {label}: mean rating {mean:+.2f}, ratings/pair {freq:.2f}")
    print("  => B1: high-frequency high ratings at LONG distance are suspicious")
    print("  => B2: frequent high ratings to a low-reputed CLOSE user are suspicious")

    print("\n--- Observations O5/O6: interests shape purchases (Fig. 4) ---")
    rank_cdf = category_rank_distribution(crawled)
    print(f"  top-3 category ranks cover {rank_cdf[2]:.0%} of purchases (paper: 88%)")
    edges, sim_cdf = interest_similarity_cdf(crawled)
    below = sim_cdf[np.searchsorted(edges, 0.2)]
    above = 1.0 - sim_cdf[np.searchsorted(edges, 0.3)]
    print(f"  transactions at <=0.2 similarity: {below:.0%} (paper: ~10%)")
    print(f"  transactions at > 0.3 similarity: {above:.0%} (paper: ~60%)")
    print("  => B3: frequent high ratings between LOW-similarity users are suspicious")
    print("  => B4: frequent LOW ratings between HIGH-similarity users look like")
    print("         a competitor suppressing a rival")


if __name__ == "__main__":
    main()
