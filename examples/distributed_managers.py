#!/usr/bin/env python
"""Distributed SocialTrust: the resource-manager protocol of Section 4.3.

Runs the same colluding workload through the centralised SocialTrust
wrapper and through :class:`~repro.core.manager.DistributedSocialTrust`
with 8 resource managers, verifies both produce byte-identical global
reputations, and reports the message traffic the distributed protocol
generated (rating reports between managers, info request/response round
trips for suspected pairs).

Run:  python examples/distributed_managers.py
"""

from __future__ import annotations

import numpy as np

from repro.collusion import PairwiseCollusion
from repro.core import DistributedSocialTrust, SocialTrust
from repro.p2p import ChordRing, InterestOverlay, Population, Simulation, SimulationConfig
from repro.reputation import EigenTrust
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N_NODES = 80
N_INTERESTS = 12
PRETRUSTED = tuple(range(4))
COLLUDERS = tuple(range(4, 16))
N_MANAGERS = 8


def build(distributed: bool):
    rng = spawn_rng(77, 0)
    population = Population.build(
        N_NODES,
        rng,
        pretrusted_ids=PRETRUSTED,
        malicious_ids=COLLUDERS,
        n_interests=N_INTERESTS,
        interests_per_node=(1, 5),
        malicious_authentic_prob=0.6,
    )
    overlay = InterestOverlay([s.interests for s in population], N_INTERESTS)
    network = paper_social_network(N_NODES, COLLUDERS, rng)
    interactions = InteractionLedger(N_NODES)
    profiles = InterestProfiles(N_NODES, N_INTERESTS)
    for spec in population:
        profiles.set_declared(spec.node_id, spec.interests)
    base = EigenTrust(N_NODES, PRETRUSTED, pretrust_weight=0.05)
    if distributed:
        # Node -> manager responsibility comes from a Chord ring, exactly
        # how the DHT-based reputation systems the paper builds on locate
        # each peer's rating store.
        ring = ChordRing(range(N_MANAGERS))
        system = DistributedSocialTrust(
            base,
            network,
            interactions,
            profiles,
            assignment=ring.assignment(N_NODES),
        )
    else:
        system = SocialTrust(base, network, interactions, profiles)
    attack = PairwiseCollusion(
        COLLUDERS, [s.interests for s in population], ratings_per_cycle=20
    )
    simulation = Simulation(
        population,
        overlay,
        system,
        rng,
        config=SimulationConfig(
            simulation_cycles=10, query_cycles_per_simulation_cycle=15
        ),
        collusion=attack,
        interactions=interactions,
        profiles=profiles,
    )
    return simulation, system


def main() -> None:
    central_sim, central = build(distributed=False)
    central_sim.run()
    dist_sim, dist = build(distributed=True)
    dist_sim.run()

    identical = np.allclose(central.reputations, dist.reputations)
    print(f"centralised vs distributed reputations identical: {identical}")
    assert identical

    print(f"\nmessage traffic across {N_MANAGERS} resource managers "
          f"(10 reputation-update intervals):")
    total = 0
    for manager in dist.managers:
        counts = dict(manager.messages_sent)
        total += manager.total_messages
        print(f"  manager {manager.manager_id}: "
              f"{len(manager.managed)} nodes managed, "
              f"{manager.total_messages:4d} messages {counts}")
    print(f"  total: {total} messages")
    ring = ChordRing(range(N_MANAGERS))
    print(
        f"\nDHT routing overhead: locating a node's manager takes "
        f"{ring.mean_lookup_hops(N_NODES):.2f} Chord hops on average "
        f"across the {N_MANAGERS}-manager ring."
    )
    print(
        "Every suspected rater/ratee pair whose endpoints live under "
        "different managers costs one info_request/info_response round "
        "trip; rating reports are batched per manager pair per interval."
    )


if __name__ == "__main__":
    main()
