#!/usr/bin/env python
"""Fault tolerance: churn, manager failover, and lossy messaging.

The paper evaluates the Section 4.3 resource-manager protocol in a
fault-free world.  This demo injects the failures a real P2P deployment
sees and shows SocialTrust degrading gracefully:

1. **Zero faults** — the distributed execution under the fault injector
   stays bit-identical to the centralised SocialTrust (the equivalence
   guarantee survives the failover machinery).
2. **20% message loss** — capped-exponential-backoff retries absorb the
   loss: retries are visible in the metrics, reputations are unchanged.
3. **Scripted manager crash** — a crashed manager's nodes fail over to
   its Chord-ring successor; suspected pairs whose social information is
   unreachable fall back to the conservative neutral damping weight.
4. **The full storm** — churn + crashes + 20% loss: the run completes,
   colluders stay contained, and the degradation series shows what the
   fault machinery did.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments.faults import (
    COLLUDERS,
    N_NODES,
    PRETRUSTED,
    build_faulty_world,
)
from repro.faults import FaultConfig

CYCLES = 10


def group_means(reputations: np.ndarray) -> tuple[float, float, float]:
    normal = [
        i for i in range(N_NODES) if i not in PRETRUSTED and i not in COLLUDERS
    ]
    return (
        float(reputations[list(COLLUDERS)].mean()),
        float(reputations[normal].mean()),
        float(reputations[list(PRETRUSTED)].mean()),
    )


def report(label: str, metrics) -> np.ndarray:
    final = metrics.final_reputations()
    colluders, normal, pretrusted = group_means(final)
    print(f"\n== {label}")
    print(
        f"   reputations: colluders {colluders:.5f}  normal {normal:.5f}  "
        f"pre-trusted {pretrusted:.5f}"
    )
    summary = metrics.faults.summary()
    interesting = {k: v for k, v in summary.items() if v and k != "attempts"}
    print(f"   fault counters: {interesting or 'none fired'}")
    return final


def main() -> None:
    # 1. Fault-free distributed run vs the centralised reference.
    central = build_faulty_world(
        FaultConfig(), simulation_cycles=CYCLES, distributed=False
    ).run()
    baseline = report(
        "fault-free, distributed (6 managers, Chord ring)",
        build_faulty_world(FaultConfig(), simulation_cycles=CYCLES).run(),
    )
    identical = np.array_equal(baseline, central.final_reputations())
    print(f"   bit-identical to centralised SocialTrust: {identical}")
    assert identical

    # 2. 20% message loss: retries absorb it.
    lossy = report(
        "20% message loss, capped-backoff retries",
        build_faulty_world(
            FaultConfig(message_loss_rate=0.2, max_retries=3, timeout_budget=30.0),
            simulation_cycles=CYCLES,
        ).run(),
    )
    print(f"   reputation change vs fault-free: {np.abs(lossy - baseline).mean():.2e}")

    # 3. Manager crashes mid-run: Chord-successor failover + neutral
    #    damping for unreachable social information.
    simulation = build_faulty_world(
        FaultConfig(message_loss_rate=0.6, max_retries=1, timeout_budget=4.0),
        simulation_cycles=CYCLES,
    )
    injector = simulation.fault_injector
    for _ in range(3):
        simulation.run_simulation_cycle()
    assert injector is not None
    crashed = sorted(m.manager_id for m in simulation.system.managers)[:2]
    for manager_id in crashed:
        injector.fail_manager(manager_id)
    for _ in range(CYCLES - 3):
        simulation.run_simulation_cycle()
    report(f"managers {crashed} crash at cycle 3 + 60% loss", simulation.metrics)
    system = simulation.system
    node = next(
        n for n in range(N_NODES) if system.manager_of(n).manager_id in crashed
    )
    home = system.manager_of(node).manager_id
    serving = system.effective_manager_of(node)
    print(
        f"   node {node}: home manager {home} is down, currently served by "
        f"{serving.manager_id if serving else None}"
    )

    # 4. The full storm.
    storm = build_faulty_world(
        FaultConfig(
            peer_leave_rate=0.06,
            peer_crash_rate=0.04,
            peer_rejoin_rate=0.30,
            manager_crash_rate=0.20,
            manager_recovery_rate=0.40,
            message_loss_rate=0.20,
            max_retries=3,
            timeout_budget=20.0,
        ),
        simulation_cycles=CYCLES,
    ).run()
    final = report("the full storm: churn + manager crashes + 20% loss", storm)
    colluders, normal, _ = group_means(final)
    print(f"   colluders still contained: {colluders < normal}")
    rows = storm.faults.series()
    print("   degradation series (cycle: online peers / up managers / fallbacks):")
    for row in rows[:: max(1, len(rows) // 5)]:
        print(
            f"     cycle {int(row['cycle']):2d}: {int(row['peers_online'])} peers, "
            f"{int(row['managers_up'])} managers, "
            f"{int(row['fallbacks'])} fallbacks, "
            f"{int(row['reassignments'])} reassignments"
        )


if __name__ == "__main__":
    main()
