#!/usr/bin/env python
"""Quickstart: wrap EigenTrust with SocialTrust and watch a collusion fail.

Builds a 100-node P2P network with 20 pair-wise colluders, runs the same
workload twice — once on plain EigenTrust, once on EigenTrust wrapped by
SocialTrust — and prints the group reputations and the share of service
requests the colluders manage to capture.

The whole world (population, overlay, social network, ledgers, reputation
stack, attack schedule, simulator) is assembled by one
:func:`repro.api.build_scenario` call; see ``git log`` for the manual
wiring this replaced.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import ScenarioResult, build_scenario

SEED = 42


def run_variant(use_socialtrust: bool) -> ScenarioResult:
    """One fully wired simulation; both variants share the same seed."""
    scenario = build_scenario(
        # Peers: 5 pre-trusted (always serve well), 20 pair-wise colluders
        # (serve well 60% of the time), everyone else 80%.
        n_nodes=100,
        n_pretrusted=5,
        n_colluders=20,
        n_interests=15,
        interests_per_node=(1, 6),
        colluder_b=0.6,
        # The attack: colluder pairs exchange 20 positive ratings per query
        # cycle (the paper's PCM model), keeping their natural interests.
        collusion="pcm",
        pcm_ratings_per_cycle=20,
        colluder_low_interest_overlap=False,
        # Reputation stack: EigenTrust, optionally wrapped by SocialTrust.
        system="EigenTrust",
        use_socialtrust=use_socialtrust,
        simulation_cycles=15,
        query_cycles=20,
        seed=SEED,
    )
    return scenario.run()


def report(label: str, result: ScenarioResult) -> None:
    print(f"\n=== {label} ===")
    print(f"  colluder mean reputation : {result.colluder_mean:.5f}")
    print(f"  normal   mean reputation : {result.normal_mean:.5f}")
    print(f"  pretrusted mean reputation: {result.pretrusted_mean:.5f}")
    print(f"  requests captured by colluders: {result.colluder_request_share:.1%}")


def main() -> None:
    for use_socialtrust in (False, True):
        label = "EigenTrust + SocialTrust" if use_socialtrust else "Plain EigenTrust"
        report(label, run_variant(use_socialtrust))
    print(
        "\nPlain EigenTrust lets the colluding pairs inflate each other; "
        "SocialTrust damps their mutual ratings (suspicious frequency at "
        "abnormal social closeness / interest similarity) and the same "
        "attack collapses."
    )


if __name__ == "__main__":
    main()
