#!/usr/bin/env python
"""Quickstart: wrap EigenTrust with SocialTrust and watch a collusion fail.

Builds a 100-node P2P network with 20 pair-wise colluders, runs the same
workload twice — once on plain EigenTrust, once on EigenTrust wrapped by
SocialTrust — and prints the group reputations and the share of service
requests the colluders manage to capture.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.collusion import PairwiseCollusion
from repro.core import SocialTrust
from repro.p2p import InterestOverlay, Population, Simulation, SimulationConfig
from repro.p2p.selection import SelectionPolicy
from repro.reputation import EigenTrust
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N_NODES = 100
N_INTERESTS = 15
PRETRUSTED = tuple(range(5))
COLLUDERS = tuple(range(5, 25))
SEED = 42


def build_simulation(use_socialtrust: bool) -> tuple[Simulation, tuple[int, ...]]:
    """One fully wired simulation; both variants share the same seed."""
    rng = spawn_rng(SEED, 0)

    # 1. Peers: pre-trusted always serve well, colluders serve well 60% of
    #    the time, everyone else 80%.
    population = Population.build(
        N_NODES,
        rng,
        pretrusted_ids=PRETRUSTED,
        malicious_ids=COLLUDERS,
        n_interests=N_INTERESTS,
        interests_per_node=(1, 6),
        malicious_authentic_prob=0.6,
    )

    # 2. Overlay: peers sharing an interest are neighbours.
    overlay = InterestOverlay([s.interests for s in population], N_INTERESTS)

    # 3. Social substrate: colluders form a distance-1 clique with extra
    #    relationships; everyone else sits 1-3 hops apart.
    network = paper_social_network(N_NODES, COLLUDERS, rng)
    interactions = InteractionLedger(N_NODES)
    profiles = InterestProfiles(N_NODES, N_INTERESTS)
    for spec in population:
        profiles.set_declared(spec.node_id, spec.interests)

    # 4. Reputation stack: EigenTrust, optionally wrapped by SocialTrust.
    base = EigenTrust(N_NODES, PRETRUSTED, pretrust_weight=0.05)
    system = (
        SocialTrust(base, network, interactions, profiles)
        if use_socialtrust
        else base
    )

    # 5. The attack: colluder pairs exchange 20 positive ratings per query
    #    cycle (the paper's PCM model).
    attack = PairwiseCollusion(
        COLLUDERS, [s.interests for s in population], ratings_per_cycle=20
    )

    simulation = Simulation(
        population,
        overlay,
        system,
        rng,
        config=SimulationConfig(
            simulation_cycles=15,
            query_cycles_per_simulation_cycle=20,
            selection_policy=SelectionPolicy.THRESHOLD_RANDOM,
            selection_exploration=0.2,
        ),
        collusion=attack,
        interactions=interactions,
        profiles=profiles,
    )
    return simulation, COLLUDERS


def report(label: str, simulation: Simulation) -> None:
    reps = simulation.metrics.final_reputations()
    colluders = list(COLLUDERS)
    normal = [i for i in range(N_NODES) if i not in COLLUDERS and i not in PRETRUSTED]
    share = simulation.metrics.fraction_served_by(colluders)
    print(f"\n=== {label} ===")
    print(f"  colluder mean reputation : {reps[colluders].mean():.5f}")
    print(f"  normal   mean reputation : {reps[np.array(normal)].mean():.5f}")
    print(f"  pretrusted mean reputation: {reps[list(PRETRUSTED)].mean():.5f}")
    print(f"  requests captured by colluders: {share:.1%}")


def main() -> None:
    for use_socialtrust in (False, True):
        label = "EigenTrust + SocialTrust" if use_socialtrust else "Plain EigenTrust"
        simulation, _ = build_simulation(use_socialtrust)
        simulation.run()
        report(label, simulation)
    print(
        "\nPlain EigenTrust lets the colluding pairs inflate each other; "
        "SocialTrust damps their mutual ratings (suspicious frequency at "
        "abnormal social closeness / interest similarity) and the same "
        "attack collapses."
    )


if __name__ == "__main__":
    main()
