#!/usr/bin/env python
"""Sybil-style boosting and behaviour B1 (strangers praising each other).

The paper's related work connects collusion to Sybil attacks: "Collusion
shares similarity to Sybil attacks in the sense of forming a collective to
gain fraudulent benefits ... since malicious users can create many
identities but few trust relationships".  This example stages exactly that
attack: one master node spins up a swarm of freshly joined Sybil
identities that flood it with positive ratings.  The Sybils have *no*
social embedding — no relationships, no interaction history beyond the
fake ratings, no genuine requests — which is the signature behaviour B1
keys on (high-frequency high ratings at abnormal social closeness).

Run:  python examples/sybil_boosting.py
"""

from __future__ import annotations

import numpy as np

from repro.collusion import MultiNodeCollusion
from repro.core import SocialTrust
from repro.p2p import InterestOverlay, Population, Simulation, SimulationConfig
from repro.p2p.selection import SelectionPolicy
from repro.reputation import EigenTrust
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import assigned_distance_matrix
from repro.social.graph import AssignedSocialNetwork, Relationship
from repro.utils.rng import spawn_rng

N_NODES = 120
PRETRUSTED = tuple(range(4))
MASTER = 4
SYBILS = tuple(range(5, 25))
SEED = 101


def build(use_socialtrust: bool):
    rng = spawn_rng(SEED, 0)
    population = Population.build(
        N_NODES,
        rng,
        pretrusted_ids=PRETRUSTED,
        malicious_ids=(MASTER, *SYBILS),
        n_interests=12,
        interests_per_node=(1, 5),
        malicious_authentic_prob=0.6,
    )
    overlay = InterestOverlay([s.interests for s in population], 12)

    # Social structure: honest nodes sit 1-3 hops apart; the Sybils are
    # strangers to everyone (unreachable in the social graph), because a
    # fresh fake identity has no friendships to show.
    distances = assigned_distance_matrix(N_NODES, rng)
    from repro.social.graph import UNREACHABLE

    for sybil in SYBILS:
        distances[sybil, :] = UNREACHABLE
        distances[:, sybil] = UNREACHABLE
        distances[sybil, sybil] = 0
    network = AssignedSocialNetwork(distances)
    for i in range(N_NODES):
        for j in range(i + 1, N_NODES):
            if distances[i, j] == 1:
                network.set_relationships(i, j, [Relationship()])

    interactions = InteractionLedger(N_NODES)
    profiles = InterestProfiles(N_NODES, 12)
    for spec in population:
        profiles.set_declared(spec.node_id, spec.interests)

    base = EigenTrust(N_NODES, PRETRUSTED, pretrust_weight=0.05)
    system = (
        SocialTrust(base, network, interactions, profiles)
        if use_socialtrust
        else base
    )
    # The Sybil swarm is a one-directional boosting collective: every
    # Sybil pumps the master (MCM structure with one boosted node).
    attack = MultiNodeCollusion(
        [MASTER, *SYBILS],
        [s.interests for s in population],
        spawn_rng(SEED, 1),
        n_boosted=1,
        ratings_range=(10, 20),
    )
    simulation = Simulation(
        population,
        overlay,
        system,
        rng,
        config=SimulationConfig(
            simulation_cycles=12,
            query_cycles_per_simulation_cycle=15,
            selection_policy=SelectionPolicy.THRESHOLD_RANDOM,
            selection_exploration=0.2,
        ),
        collusion=attack,
        interactions=interactions,
        profiles=profiles,
    )
    return simulation, system, attack


def main() -> None:
    for use_socialtrust in (False, True):
        label = "EigenTrust + SocialTrust" if use_socialtrust else "Plain EigenTrust"
        simulation, system, attack = build(use_socialtrust)
        simulation.run()
        reps = simulation.metrics.final_reputations()
        boosted = attack.boosted[0]
        honest = [
            i
            for i in range(N_NODES)
            if i not in SYBILS and i != MASTER and i not in PRETRUSTED
        ]
        print(f"\n=== {label} ===")
        print(f"  boosted master reputation : {reps[boosted]:.5f}")
        print(f"  honest-node mean          : {reps[honest].mean():.5f}")
        print(f"  sybil mean                : {reps[list(SYBILS)].mean():.5f}")
        if use_socialtrust and system.last_detection is not None:
            b1_hits = sum(
                1
                for f in system.last_detection.findings
                if f.rater in SYBILS
            )
            print(f"  sybil rating pairs flagged this interval: {b1_hits}")
    print(
        "\nThe Sybil identities have no social relationships, so their "
        "rating floods arrive at zero social closeness — behaviour B1 — "
        "and SocialTrust discounts them; the master's purchased "
        "reputation evaporates."
    )


if __name__ == "__main__":
    main()
