#!/usr/bin/env python
"""Threshold-sensitivity study: how robust is SocialTrust to its knobs?

The paper fixes its detection thresholds "from empirical experience"; this
example sweeps the ones that matter under the PCM B=0.6 attack and prints
how colluder containment and false-positive pressure respond.

Run:  python examples/sensitivity_sweep.py
"""

from __future__ import annotations

from repro.analysis.render import bar_chart
from repro.experiments.sensitivity import sweep_socialtrust_parameter

SWEEPS = {
    "theta": (1.5, 2.0, 3.0, 5.0),
    "recidivism_decay": (0.25, 0.5, 0.75, 0.999),
    "selection_exploration": (0.0, 0.1, 0.2, 0.4),
}


def main() -> None:
    for parameter, values in SWEEPS.items():
        print(f"\n=== sweep: {parameter} (PCM, B=0.6, 12 cycles) ===")
        points = sweep_socialtrust_parameter(
            parameter, values, simulation_cycles=12
        )
        print(
            bar_chart(
                {f"{parameter}={p.value:g}": p.colluder_mass for p in points},
                fmt="{:.4f}",
            )
        )
        for p in points:
            print(
                f"  {parameter}={p.value:g}: colluder mass {p.colluder_mass:.4f}, "
                f"requests {p.request_share:.1%}, "
                f"false-positive share {p.false_positive_share:.1%}"
            )
    print(
        "\nReading: colluder mass is the reputation share the 30 colluders "
        "hold (total network mass = 1; the undefended system gives them "
        "~0.7).  The defence is flat across a wide theta/decay range — the "
        "paper's 'empirical experience' settings are not load-bearing — "
        "while zero exploration starves the market and any exploration "
        "level keeps the attack contained.  The false-positive share "
        "counts honest raters among *flagged* pairs: an honest pair that "
        "trips the frequency bar has its rating mass trimmed back toward "
        "a normal-frequency pair's worth, but its coefficients sit inside "
        "the rater's own band so the Gaussian barely moves — a mild "
        "haircut on one pair, invisible in the normal-node means above. "
        "That is the paper's Section-4 argument that a marginal amount of "
        "false positives is an acceptable price."
    )


if __name__ == "__main__":
    main()
