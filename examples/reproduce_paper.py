#!/usr/bin/env python
"""Regenerate any table/figure of the paper from the command line.

Usage:
    python examples/reproduce_paper.py --list
    python examples/reproduce_paper.py fig8
    python examples/reproduce_paper.py fig8 fig13 table1 --runs 2 --cycles 25
    python examples/reproduce_paper.py all --runs 5 --cycles 50   # paper profile

Simulation experiments accept --runs/--cycles; the trace figures
(fig1-fig4) ignore them.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import list_experiments, run_experiment

TRACE_FIGURES = {"fig1", "fig2", "fig3", "fig4"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="experiment ids, or 'all'")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--runs", type=int, default=2, help="runs per cell")
    parser.add_argument("--cycles", type=int, default=25, help="simulation cycles")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("known experiments:")
        for name in list_experiments():
            print(f"  {name}")
        return 0

    wanted = (
        list_experiments() if args.experiments == ["all"] else args.experiments
    )
    for experiment_id in wanted:
        start = time.time()
        if experiment_id in TRACE_FIGURES:
            result = run_experiment(experiment_id, seed=args.seed)
        else:
            result = run_experiment(
                experiment_id,
                n_runs=args.runs,
                simulation_cycles=args.cycles,
                seed=args.seed,
            )
        elapsed = time.time() - start
        print(result.describe())
        print(f"  [{elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
