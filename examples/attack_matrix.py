#!/usr/bin/env python
"""Attack matrix: every collusion model against every reputation stack.

Sweeps the paper's three collusion structures (PCM, MCM, MMM) and the
hardened attacks (compromised pre-trusted peers, falsified social
information) against EigenTrust and eBay with and without SocialTrust,
then prints a compact scoreboard of colluder reputation mass and captured
request share.

Run:  python examples/attack_matrix.py          (quick profile)
      python examples/attack_matrix.py --full   (closer to the paper's scale)
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.experiments.setup import (
    CollusionKind,
    SystemKind,
    WorldConfig,
    build_world,
)

SYSTEMS = (
    SystemKind.EIGENTRUST,
    SystemKind.EIGENTRUST_SOCIALTRUST,
    SystemKind.EBAY,
    SystemKind.EBAY_SOCIALTRUST,
)

ATTACKS: dict[str, dict] = {
    "PCM B=0.6": dict(collusion=CollusionKind.PCM, colluder_b=0.6),
    "PCM B=0.2": dict(collusion=CollusionKind.PCM, colluder_b=0.2),
    "MCM B=0.6": dict(collusion=CollusionKind.MCM, colluder_b=0.6),
    "MMM B=0.6": dict(collusion=CollusionKind.MMM, colluder_b=0.6),
    "MMM B=0.2": dict(collusion=CollusionKind.MMM, colluder_b=0.2),
    "PCM + compromised pre-trusted": dict(
        collusion=CollusionKind.PCM, colluder_b=0.2, n_compromised_pretrusted=7
    ),
    "PCM + falsified social info": dict(
        collusion=CollusionKind.PCM, colluder_b=0.6, falsified_social_info=True
    ),
}


def run_cell(base: WorldConfig, system: SystemKind) -> tuple[float, float]:
    config = replace(base, system=system)
    world = build_world(config, seed=13, run_index=0)
    world.simulation.run()
    reps = world.simulation.metrics.final_reputations()
    mass = float(reps[list(config.colluder_ids)].sum())
    share = world.simulation.metrics.fraction_served_by(config.colluder_ids)
    return mass, share


def main() -> None:
    full = "--full" in sys.argv
    cycles = 30 if full else 12
    print(f"Profile: 200 nodes, {cycles} simulation cycles per cell")
    header = f"{'attack':32s}" + "".join(f"{s.value:>26s}" for s in SYSTEMS)
    print(header)
    print("-" * len(header))
    for attack, params in ATTACKS.items():
        base = WorldConfig(simulation_cycles=cycles, **params)
        cells = []
        for system in SYSTEMS:
            if system in (SystemKind.EBAY, SystemKind.EBAY_SOCIALTRUST) and params.get(
                "n_compromised_pretrusted"
            ):
                cells.append(f"{'-':>26s}")  # pre-trust is an EigenTrust notion
                continue
            mass, share = run_cell(base, system)
            cells.append(f"{mass:13.3f} /{share:8.1%}   ")
        print(f"{attack:32s}" + "".join(cells))
    print(
        "\nEach cell: colluder reputation mass (sum over the 30 colluders, "
        "total network mass is 1) / share of service requests captured."
    )


if __name__ == "__main__":
    main()
