"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper at the
**bench profile** — full 200-node network, reduced run count and cycle
count so the whole suite finishes in minutes.  The paper profile
(5 runs x 50 cycles) is what EXPERIMENTS.md records; pass
``--paper-profile`` to run it here.

Each benchmark prints the reproduced series (via
``ExperimentResult.describe``) so the harness output *is* the
regenerated table/figure data.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-profile",
        action="store_true",
        default=False,
        help="run benchmarks at the paper's full profile (5 runs x 50 cycles)",
    )


@pytest.fixture(scope="session")
def profile(request):
    """n_runs / simulation_cycles kwargs for the experiment benchmarks."""
    if request.config.getoption("--paper-profile"):
        return {"n_runs": 5, "simulation_cycles": 50}
    return {"n_runs": 1, "simulation_cycles": 15}
