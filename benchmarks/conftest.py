"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper at the
**bench profile** — full 200-node network, reduced run count and cycle
count so the whole suite finishes in minutes.  The paper profile
(5 runs x 50 cycles) is what EXPERIMENTS.md records; pass
``--paper-profile`` to run it here.

Each benchmark prints the reproduced series (via
``ExperimentResult.describe``) so the harness output *is* the
regenerated table/figure data.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

import pytest

#: Repository root — ``BENCH_*.json`` artifacts land here so CI can archive
#: them from a fixed location.
REPO_ROOT = Path(__file__).resolve().parents[1]


def write_bench_artifact(name: str, config: dict, results: dict, out=None) -> Path:
    """Write one ``BENCH_<name>.json`` artifact with the stable schema.

    Every benchmark artifact carries exactly four top-level keys —
    ``name``, ``config``, ``results``, ``timestamp`` — so downstream
    tooling can diff runs without per-benchmark parsing.
    """
    path = Path(out) if out is not None else REPO_ROOT / f"BENCH_{name}.json"
    payload = {
        "name": name,
        "config": config,
        "results": results,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_artifact():
    """The :func:`write_bench_artifact` writer, as a fixture."""
    return write_bench_artifact


def pytest_addoption(parser):
    parser.addoption(
        "--paper-profile",
        action="store_true",
        default=False,
        help="run benchmarks at the paper's full profile (5 runs x 50 cycles)",
    )


@pytest.fixture(scope="session")
def profile(request):
    """n_runs / simulation_cycles kwargs for the experiment benchmarks."""
    if request.config.getoption("--paper-profile"):
        return {"n_runs": 5, "simulation_cycles": 50}
    return {"n_runs": 1, "simulation_cycles": 15}
