"""Sparse vs dense coefficient core: the detector-interval scaling benchmark.

Synthesizes a sparse social world (ring + random chords, average degree
~8, interactions and ratings concentrated on social edges plus a
high-frequency collusive pair set) at each target size, runs one full
detector interval per coefficient backend, and records wall-clock and
peak-RSS.  The dense (seed) path materialises ``n x n`` matrices so it
stops being practical past ``n ~ 10^4``; the sparse core runs the same
interval at ``n = 10^5`` inside a documented memory budget.  At the
smallest shared size the two backends' damping weights are asserted
equal within float tolerance (the deeper sweep lives in the QA
differential runner).

Results land in ``BENCH_sparse.json`` at the repo root (override with
``BENCH_SPARSE_OUT``) using the shared ``{"name", "config", "results",
"timestamp"}`` artifact schema.

Profiles (``BENCH_SPARSE_PROFILE`` environment variable):

* ``full`` (default) — sparse at n ∈ {10^3, 10^4, 10^5}, dense at
  {10^3, 10^4}, speedup floor 10x at n = 10^4, sparse 10^5 peak-RSS
  budget 8 GiB; takes a few minutes (the dense 10^4 interval alone is
  ~2 matmuls at 10^12 flops).
* ``smoke``          — both backends at n = 2000, floor 2x (used by the
  CI smoke job; finishes in well under a minute).

``ru_maxrss`` is a process-lifetime high-water mark, so the sparse runs
execute **before** any dense ``n x n`` allocation; the recorded sparse
peaks are honest, the dense ones are lower bounds.
"""

from __future__ import annotations

import os
import resource
import time

import numpy as np
from scipy import sparse

from repro.core import (
    ClosenessComputer,
    CollusionDetector,
    SimilarityComputer,
    SocialTrustConfig,
    SparseClosenessComputer,
    SparseSimilarityComputer,
)
from repro.reputation.base import IntervalRatings
from repro.social import (
    InteractionLedger,
    InterestProfiles,
    SocialGraph,
    SparseInteractionLedger,
)

PROFILES = {
    "full": {
        "sparse_sizes": (1_000, 10_000, 100_000),
        "dense_sizes": (1_000, 10_000),
        "speedup_at": 10_000,
        "min_speedup": 10.0,
        "memory_budget_mb": 8192,
    },
    "smoke": {
        "sparse_sizes": (2_000,),
        "dense_sizes": (2_000,),
        "speedup_at": 2_000,
        "min_speedup": 2.0,
        "memory_budget_mb": 8192,
    },
}

N_INTERESTS = 32
_EQUIV_RTOL = 1e-9
_EQUIV_ATOL = 1e-12


def _profile() -> tuple[str, dict]:
    name = os.environ.get("BENCH_SPARSE_PROFILE", "full")
    if name not in PROFILES:
        raise ValueError(f"BENCH_SPARSE_PROFILE must be one of {sorted(PROFILES)}")
    return name, PROFILES[name]


def _peak_rss_mb() -> float:
    """Process high-water RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _synthesize(n: int, seed: int = 0) -> dict:
    """One synthetic sparse world, as plain arrays both backends consume.

    Friendships: communities of 25 nodes around a local hub plus random
    intra-community chords — average degree ~8, and every non-adjacent
    same-community pair shares the hub as a common friend.  That keeps
    the dense reference on its vectorised matmul core (its
    no-common-friend fallback walks pairs one by one in Python, which on
    an arbitrary sparse graph would dominate the timing and overstate
    the sparse win).  Interactions run along friendship edges in both
    directions.  Ratings: one positive rating per edge direction on a
    sampled majority of edges (the organic baseline the median frequency
    threshold anchors to), plus a colluding clique of
    ``max(4, n // 1000)`` nodes — mostly cross-community, so their
    coefficients sit far below band — rating each other at ~12x that
    frequency, plus a thin stream of negatives.
    """
    rng = np.random.default_rng(seed)
    ids = np.arange(n, dtype=np.int64)
    comm = 25
    base = (ids // comm) * comm  # each community's hub is its first node
    hub_i, hub_j = base[ids != base], ids[ids != base]
    ri = np.repeat(ids, 3)
    rj = base[ri] + rng.integers(0, comm, ri.size)
    keep = (rj < n) & (ri != rj)
    ei = np.concatenate([hub_i, ri[keep]])
    ej = np.concatenate([hub_j, rj[keep]])
    lo, hi = np.minimum(ei, ej), np.maximum(ei, ej)
    keys = np.unique(lo * n + hi)
    ei, ej = keys // n, keys % n

    # Interactions both directions along each edge, integer counts 1..4.
    int_i = np.concatenate([ei, ej])
    int_j = np.concatenate([ej, ei])
    int_c = rng.integers(1, 5, int_i.size).astype(np.float64)

    # Honest ratings: one positive per direction on ~80% of edges.
    mask = rng.random(ei.size) < 0.8
    hi_, hj_ = ei[mask], ej[mask]
    pos_i = np.concatenate([hi_, hj_])
    pos_j = np.concatenate([hj_, hi_])
    pos_c = np.ones(pos_i.size, dtype=np.float64)

    # Colluders: a small set rating each other at ~12x the honest rate.
    n_coll = max(4, n // 1000)
    coll = rng.choice(n, size=n_coll, replace=False)
    gi, gj = np.meshgrid(coll, coll, indexing="ij")
    gmask = gi != gj
    coll_i, coll_j = gi[gmask], gj[gmask]
    coll_c = rng.integers(10, 15, coll_i.size).astype(np.float64)

    pos_i = np.concatenate([pos_i, coll_i])
    pos_j = np.concatenate([pos_j, coll_j])
    pos_c = np.concatenate([pos_c, coll_c])

    # A thin stream of honest negatives on a 5% edge sample.
    nmask = rng.random(ei.size) < 0.05
    neg_i, neg_j = ei[nmask], ej[nmask]
    neg_c = np.ones(neg_i.size, dtype=np.float64)

    reputations = rng.random(n)
    reputations /= reputations.sum()

    declared = rng.integers(0, N_INTERESTS, (n, 3))
    req_nodes = rng.integers(0, n, 4 * n)
    req_interests = rng.integers(0, N_INTERESTS, 4 * n)

    return {
        "n": n,
        "edges": (ei, ej),
        "interactions": (int_i, int_j, int_c),
        "pos": (pos_i, pos_j, pos_c),
        "neg": (neg_i, neg_j, neg_c),
        "reputations": reputations,
        "declared": declared,
        "requests": (req_nodes, req_interests),
    }


def _build_shared(world: dict) -> tuple[SocialGraph, InterestProfiles]:
    n = world["n"]
    graph = SocialGraph(n)
    ei, ej = world["edges"]
    for i, j in zip(ei.tolist(), ej.tolist()):
        graph.add_friendship(i, j)
    profiles = InterestProfiles(n, N_INTERESTS)
    for node, interests in enumerate(world["declared"]):
        profiles.set_declared(node, interests)
    profiles.record_requests(*world["requests"])
    return graph, profiles


def _coo(i: np.ndarray, j: np.ndarray, c: np.ndarray, n: int) -> sparse.csr_matrix:
    return sparse.coo_matrix((c, (i, j)), shape=(n, n)).tocsr()


def _run_sparse(world, graph, profiles):
    n = world["n"]
    cfg = SocialTrustConfig(coefficient_backend="sparse")
    ledger = SparseInteractionLedger(n)
    ledger.record_many(*world["interactions"])
    pos = _coo(*world["pos"], n)
    neg = _coo(*world["neg"], n)
    rated = ((pos + neg) > 0).tocsr()
    detector = CollusionDetector(
        SparseClosenessComputer(graph, ledger, cfg),
        SparseSimilarityComputer(profiles, cfg),
        cfg,
    )
    start = time.perf_counter()
    result = detector.analyze_sparse(pos, neg, world["reputations"], rated)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    detector.analyze_sparse(pos, neg, world["reputations"], rated)
    warm_s = time.perf_counter() - start
    stats = {
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "findings": len(result.findings),
        "flagged_pairs": int(result.pairs.shape[0]),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    return stats, result


def _run_dense(world, graph, profiles):
    n = world["n"]
    cfg = SocialTrustConfig(coefficient_backend="dense")
    ledger = InteractionLedger(n)
    ledger.record_many(*world["interactions"])
    interval = IntervalRatings(n)
    pi, pj, pc = world["pos"]
    np.add.at(interval.pos_counts, (pi, pj), pc)
    np.add.at(interval.value_sum, (pi, pj), pc)
    ni, nj, nc = world["neg"]
    np.add.at(interval.neg_counts, (ni, nj), nc)
    np.add.at(interval.value_sum, (ni, nj), -nc)
    rated = interval.counts > 0
    detector = CollusionDetector(
        ClosenessComputer(graph, ledger, cfg),
        SimilarityComputer(profiles, cfg),
        cfg,
    )
    start = time.perf_counter()
    result = detector.analyze(interval, world["reputations"], rated)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    detector.analyze(interval, world["reputations"], rated)
    warm_s = time.perf_counter() - start
    stats = {
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "findings": len(result.findings),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    return stats, result


def test_sparse_detector_scaling(bench_artifact):
    name, profile = _profile()
    sparse_sizes = profile["sparse_sizes"]
    dense_sizes = profile["dense_sizes"]
    results: dict = {"sparse": {}, "dense": {}, "speedup_cold": {}}
    sparse_results: dict[int, object] = {}

    # Sparse first: ru_maxrss is a high-water mark, and the dense n x n
    # allocations would otherwise mask the sparse peaks.
    for n in sparse_sizes:
        world = _synthesize(n)
        graph, profiles = _build_shared(world)
        stats, result = _run_sparse(world, graph, profiles)
        results["sparse"][str(n)] = stats
        sparse_results[n] = result
        print(f"\n[{name}] sparse n={n}: {stats}")

    equiv_n = min(set(sparse_sizes) & set(dense_sizes))
    max_diff = None
    for n in dense_sizes:
        world = _synthesize(n)
        graph, profiles = _build_shared(world)
        stats, result = _run_dense(world, graph, profiles)
        results["dense"][str(n)] = stats
        print(f"[{name}] dense  n={n}: {stats}")
        if n == equiv_n:
            dense_w = result.weights
            sparse_w = sparse_results[n].weights_dense()
            max_diff = float(np.abs(dense_w - sparse_w).max())
            assert np.allclose(
                dense_w, sparse_w, rtol=_EQUIV_RTOL, atol=_EQUIV_ATOL
            ), f"backends diverge at n={n}: max |delta| = {max_diff:.3e}"

    target = profile["speedup_at"]
    dense_cold = results["dense"][str(target)]["cold_seconds"]
    sparse_cold = results["sparse"][str(target)]["cold_seconds"]
    speedup = dense_cold / max(sparse_cold, 1e-9)
    results["speedup_cold"][str(target)] = round(speedup, 2)
    results["equivalence"] = {
        "n": equiv_n,
        "max_abs_diff": max_diff,
        "rtol": _EQUIV_RTOL,
        "atol": _EQUIV_ATOL,
    }

    largest = max(sparse_sizes)
    sparse_peak = results["sparse"][str(largest)]["peak_rss_mb"]
    bench_artifact(
        "sparse",
        config={
            "profile": name,
            "sparse_sizes": list(sparse_sizes),
            "dense_sizes": list(dense_sizes),
            "speedup_at": target,
            "min_speedup": profile["min_speedup"],
            "memory_budget_mb": profile["memory_budget_mb"],
            "avg_degree": 8,
            "n_interests": N_INTERESTS,
        },
        results=results,
        out=os.environ.get("BENCH_SPARSE_OUT"),
    )
    print(
        f"[{name}] speedup at n={target}: {speedup:.1f}x "
        f"(dense {dense_cold}s / sparse {sparse_cold}s); "
        f"sparse n={largest} peak RSS {sparse_peak} MiB"
    )
    assert speedup >= profile["min_speedup"], (
        f"cold detector-interval speedup {speedup:.2f}x at n={target} is "
        f"below the {profile['min_speedup']}x floor"
    )
    assert sparse_peak <= profile["memory_budget_mb"], (
        f"sparse n={largest} peak RSS {sparse_peak} MiB exceeds the "
        f"{profile['memory_budget_mb']} MiB budget"
    )
