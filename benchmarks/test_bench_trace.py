"""Benchmarks regenerating the trace-study figures (Figs. 1-4).

Each test prints the reproduced statistic next to the paper's value and
asserts the qualitative shape.
"""

import numpy as np

from bench_util import print_result, run_once
from repro.experiments import figures


class TestFig1:
    def test_fig1_reputation_vs_business_network(self, benchmark):
        result = run_once(benchmark, figures.fig1, seed=0)
        print_result(result)
        c = result.series["business_size_correlation"].mean[0]
        # Paper: C = 0.996 — a strong linear relationship.
        assert c > 0.85

    def test_fig1_transactions_track_reputation(self, benchmark):
        result = run_once(benchmark, figures.fig1, seed=1)
        print_result(result)
        assert result.series["transactions_correlation"].mean[0] > 0.5


class TestFig2:
    def test_fig2_personal_network_weakly_related(self, benchmark):
        result = run_once(benchmark, figures.fig2, seed=0)
        print_result(result)
        # Paper: C = 0.092 — a weak relationship, far below Fig. 1's.
        assert result.series["personal_size_correlation"].mean[0] < 0.3


class TestFig3:
    def test_fig3_rating_value_and_frequency_decay(self, benchmark):
        result = run_once(benchmark, figures.fig3, seed=0)
        print_result(result)
        means = result.series["mean_rating_by_hop"].mean
        freqs = result.series["mean_ratings_per_pair_by_hop"].mean
        # Paper Fig. 3: both decay monotonically over hops 1-4.
        assert np.all(np.diff(means) < 0)
        assert freqs[0] > freqs[-1]


class TestFig4:
    def test_fig4_top3_categories_near_88_percent(self, benchmark):
        result = run_once(benchmark, figures.fig4, seed=0)
        print_result(result)
        cdf = result.series["category_rank_cdf"].mean
        assert 0.8 <= cdf[2] <= 0.95

    def test_fig4_similar_peers_trade(self, benchmark):
        result = run_once(benchmark, figures.fig4, seed=1)
        print_result(result)
        edges = np.asarray(result.meta["similarity_bins"])
        cdf = result.series["interest_similarity_cdf"].mean
        below_02 = cdf[np.searchsorted(edges, 0.2)]
        above_03 = 1.0 - cdf[np.searchsorted(edges, 0.3)]
        # Paper: ~10% of transactions at <=0.2 similarity, ~60% above 0.3.
        assert below_02 <= 0.3
        assert above_03 >= 0.45
