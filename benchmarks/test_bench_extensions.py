"""Benchmarks for the extensions beyond the paper's evaluated grid.

* **Badmouthing** — the paper asserts "similar results can be obtained for
  the collusion of negative ratings" without plotting them; this bench
  produces the missing panel (victim reputations with and without
  SocialTrust under a B4-style negative-rating campaign).
* **PowerTrust base system** — SocialTrust wrapped around a third
  reputation system it was never tuned for, demonstrating the wrapper is
  genuinely system-agnostic.
"""

from bench_util import run_once
from repro.collusion import BadmouthingCollusion, PairwiseCollusion
from repro.core import SocialTrust
from repro.p2p import InterestOverlay, Population, Simulation, SimulationConfig
from repro.p2p.selection import SelectionPolicy
from repro.reputation import PowerTrust
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N = 200
PRETRUSTED = tuple(range(9))
COLLUDERS = tuple(range(9, 39))
#: Competitor-attack cast: eBay's one-counted-rating-per-rater rule means a
#: lone badmouther cannot outvote a victim's genuine raters, so the attack
#: that actually threatens eBay is a mob of *distinct* competitor raters —
#: all 30 colluders against two market rivals.
BADMOUTHERS = COLLUDERS
VICTIMS = (39, 40)


MARKET = frozenset({0, 1})
MARKET_OVERRIDE = {node: MARKET for node in (*BADMOUTHERS, *VICTIMS)}


def _make_competitors(profiles):
    """Put the attackers and their victims in one small shared market (two
    interest categories, matching declared profiles; their genuine request
    behaviour follows via the population-spec override) so the badmouthing
    happens at high interest similarity — the B4 competitor-attack
    pattern.  Small sets matter: the request-weighted Eq. (11) similarity
    of a pair scales like 1/k^2 in the set size."""
    for node in (*BADMOUTHERS, *VICTIMS):
        profiles.set_declared(node, MARKET)


def _build(
    system_factory,
    attack_factory,
    cycles,
    seed=0,
    profile_setup=None,
    interest_override=None,
):
    rng = spawn_rng(seed, 0)
    pop = Population.build(
        N,
        rng,
        pretrusted_ids=PRETRUSTED,
        malicious_ids=COLLUDERS,
        n_interests=20,
        interests_per_node=(1, 10),
        malicious_authentic_prob=0.6,
    )
    if interest_override:
        from dataclasses import replace

        pop = Population(
            [
                replace(spec, interests=interest_override.get(spec.node_id, spec.interests))
                for spec in pop
            ]
        )
    overlay = InterestOverlay([s.interests for s in pop], 20)
    network = paper_social_network(N, COLLUDERS, rng)
    interactions = InteractionLedger(N)
    profiles = InterestProfiles(N, 20)
    for spec in pop:
        profiles.set_declared(spec.node_id, spec.interests)
    if profile_setup is not None:
        profile_setup(profiles)
    system = system_factory(network, interactions, profiles)
    attack = attack_factory([s.interests for s in pop])
    sim = Simulation(
        pop,
        overlay,
        system,
        rng,
        config=SimulationConfig(
            simulation_cycles=cycles,
            selection_policy=SelectionPolicy.THRESHOLD_RANDOM,
            selection_exploration=0.2,
        ),
        collusion=attack,
        interactions=interactions,
        profiles=profiles,
    )
    sim.run()
    return sim


class TestBadmouthing:
    def test_badmouthing_suppression_and_defense(self, benchmark, profile):
        """eBay is the vulnerable base here: distinct negative raters
        subtract directly from the victim's weekly score, while EigenTrust
        clips negative local trust to zero and barely notices.  The
        badmouthing floods push every victim's interval net negative;
        SocialTrust's B4 pattern (high-frequency negatives at high
        interest similarity) damps them."""
        from repro.reputation import EBayModel

        cycles = profile["simulation_cycles"]

        def attack(interests):
            return BadmouthingCollusion(
                BADMOUTHERS, VICTIMS, interests, ratings_per_cycle=20, paired=True
            )

        def run_pair():
            plain = _build(
                lambda *_: EBayModel(N, cycle_aggregation="node_sign"),
                attack,
                cycles,
                profile_setup=_make_competitors,
                interest_override=MARKET_OVERRIDE,
            )
            guarded = _build(
                lambda net, inter, prof: SocialTrust(
                    EBayModel(N, cycle_aggregation="node_sign"),
                    net,
                    inter,
                    prof,
                ),
                attack,
                cycles,
                profile_setup=_make_competitors,
                interest_override=MARKET_OVERRIDE,
            )
            return (
                plain.metrics.final_reputations(),
                guarded.metrics.final_reputations(),
            )

        plain_reps, guarded_reps = run_once(benchmark, run_pair)
        victims = list(VICTIMS)
        plain_victim = plain_reps[victims].mean()
        guarded_victim = guarded_reps[victims].mean()
        print(
            f"\n[badmouthing] victim mean reputation: plain eBay "
            f"{plain_victim:.5f} vs +SocialTrust {guarded_victim:.5f}"
        )
        # Plain eBay lets the campaign zero the victims out; SocialTrust
        # damps the flagged negative floods so victims keep standing.
        assert plain_victim < 1e-4
        assert guarded_victim > 10 * max(plain_victim, 1e-6)


class TestPowerTrustBase:
    def test_socialtrust_over_powertrust(self, benchmark, profile):
        cycles = profile["simulation_cycles"]

        def attack(interests):
            return PairwiseCollusion(COLLUDERS, interests, ratings_per_cycle=20)

        def run_pair():
            plain = _build(
                lambda *_: PowerTrust(N, n_power_nodes=9, power_weight=0.05),
                attack,
                cycles,
            )
            guarded = _build(
                lambda net, inter, prof: SocialTrust(
                    PowerTrust(N, n_power_nodes=9, power_weight=0.05),
                    net,
                    inter,
                    prof,
                ),
                attack,
                cycles,
            )
            return (
                plain.metrics.final_reputations(),
                guarded.metrics.final_reputations(),
            )

        plain_reps, guarded_reps = run_once(benchmark, run_pair)
        colluders = list(COLLUDERS)
        plain_col = plain_reps[colluders].mean()
        guarded_col = guarded_reps[colluders].mean()
        print(
            f"\n[powertrust] colluder mean reputation: plain PowerTrust "
            f"{plain_col:.5f} vs +SocialTrust {guarded_col:.5f}"
        )
        assert guarded_col < plain_col