"""Benchmarks regenerating Figs. 8-9: pair-wise collusion (PCM)."""

from bench_util import group_means, print_result, run_once
from repro.experiments import figures


class TestFig8:
    """PCM, B=0.6: the regime where the base systems fail."""

    def test_fig8_pcm_high_b(self, benchmark, profile):
        result = run_once(benchmark, figures.fig8, **profile)
        print_result(result)
        colluders = result.meta["colluder_ids"]
        pretrusted = result.meta["pretrusted_ids"]

        # Fig. 8(a): colluders dominate plain EigenTrust.
        col, normal, _ = group_means(result, "EigenTrust", colluders, pretrusted)
        assert col > 3 * normal

        # Figs. 8(c)/(d): SocialTrust collapses colluder reputations.
        col_st, normal_st, _ = group_means(
            result, "EigenTrust+SocialTrust", colluders, pretrusted
        )
        assert col_st < normal_st
        col_eb, normal_eb, _ = group_means(
            result, "eBay+SocialTrust", colluders, pretrusted
        )
        assert col_eb < normal_eb

        # Request routing collapses alongside (Table-1 PCM column).
        frac = result.meta["request_fraction_to_colluders"]
        assert frac["EigenTrust+SocialTrust"] < 0.2 * frac["EigenTrust"]


class TestFig9:
    """PCM, B=0.2: EigenTrust already resists; SocialTrust drives to ~0."""

    def test_fig9_pcm_low_b(self, benchmark, profile):
        result = run_once(benchmark, figures.fig9, **profile)
        print_result(result)
        colluders = result.meta["colluder_ids"]
        pretrusted = result.meta["pretrusted_ids"]

        # Fig. 9(a): low-QoS colluders cannot rise under EigenTrust.
        col, normal, pre = group_means(result, "EigenTrust", colluders, pretrusted)
        assert col < normal
        assert pre > normal

        # Fig. 9(b): eBay also keeps them down at B=0.2.
        col_eb, normal_eb, _ = group_means(result, "eBay", colluders, pretrusted)
        assert col_eb < normal_eb

        # Figs. 9(c)/(d): with SocialTrust they are nearly zero.
        col_st, normal_st, _ = group_means(
            result, "EigenTrust+SocialTrust", colluders, pretrusted
        )
        assert col_st < 0.5 * normal_st
