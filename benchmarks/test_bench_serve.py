"""Streaming service throughput/latency benchmark.

Builds one :class:`~repro.serve.ReputationService` world, synthesizes a
deterministic event stream (ratings with a thin interaction/churn mix,
a reputation query every ``query_every`` events), and streams it through
the synchronous ingestion path with the ``interval_events``
auto-watermark closing a reputation interval every 6,000 events — so the
measured rate is *sustained* throughput including the full SocialTrust
detector + damping + inner update passes, not just ledger increments.
Query latency comes from the service's own ``serve.query.latency``
histogram (the same instrument ``repro serve`` reports).

Results land in ``BENCH_serve.json`` at the repo root (override with
``BENCH_SERVE_OUT``) using the shared ``{"name", "config", "results",
"timestamp"}`` artifact schema.

Profiles (``BENCH_SERVE_PROFILE`` environment variable):

* ``full`` (default) — n = 1,000 nodes, 60,000 events (10 reputation
  intervals); asserts sustained >= 5,000 events/sec;
* ``smoke`` — n = 200 nodes, 12,000 events (4 intervals), floor
  1,000 events/sec (the CI serve-smoke job; finishes in seconds).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.api import ScenarioSpec
from repro.serve import (
    ChurnEvent,
    InteractionEvent,
    QueryRequest,
    RatingEvent,
    ReputationService,
)

PROFILES = {
    "full": {
        "n_nodes": 1_000,
        "n_pretrusted": 20,
        "n_events": 60_000,
        "interval_events": 6_000,
        "min_events_per_second": 5_000.0,
    },
    "smoke": {
        "n_nodes": 200,
        "n_pretrusted": 5,
        "n_events": 12_000,
        "interval_events": 3_000,
        "min_events_per_second": 1_000.0,
    },
}

QUERY_EVERY = 100
CHURN_EVERY = 2_000
SEED = 42


def _profile() -> tuple[str, dict]:
    name = os.environ.get("BENCH_SERVE_PROFILE", "full")
    if name not in PROFILES:
        raise ValueError(f"BENCH_SERVE_PROFILE must be one of {sorted(PROFILES)}")
    return name, PROFILES[name]


def _synthesize_events(n_nodes: int, n_events: int, seed: int = SEED) -> list:
    """A deterministic mixed stream: ~94% ratings (10% negative), ~5%
    bare interactions, plus a small churn-decay event every
    ``CHURN_EVERY`` mutations and a node query every ``QUERY_EVERY``."""
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, n_nodes, size=n_events)
    offsets = rng.integers(1, n_nodes, size=n_events)
    targets = (sources + offsets) % n_nodes
    kinds = rng.random(n_events)
    values = np.where(rng.random(n_events) < 0.1, -1.0, 1.0)
    interests = rng.integers(0, 16, size=n_events)
    events: list = []
    for i in range(n_events):
        src, dst = int(sources[i]), int(targets[i])
        if i and i % CHURN_EVERY == 0:
            events.append(ChurnEvent(nodes=(src, dst), factor=0.9))
        elif kinds[i] < 0.05:
            events.append(InteractionEvent(source=src, target=dst))
        else:
            events.append(
                RatingEvent(
                    rater=src,
                    ratee=dst,
                    value=float(values[i]),
                    interest=int(interests[i]),
                )
            )
        if i % QUERY_EVERY == 0:
            events.append(QueryRequest(node=src))
    return events


def test_serve_throughput_and_latency(bench_artifact):
    profile_name, profile = _profile()
    spec = ScenarioSpec(
        system="EigenTrust+SocialTrust",
        collusion="none",
        seed=SEED,
        world=dict(
            n_nodes=profile["n_nodes"],
            n_pretrusted=profile["n_pretrusted"],
            n_colluders=0,
        ),
    )
    build_start = time.perf_counter()
    service = ReputationService(
        spec, interval_events=profile["interval_events"]
    )
    build_seconds = time.perf_counter() - build_start

    events = _synthesize_events(profile["n_nodes"], profile["n_events"])
    stream_start = time.perf_counter()
    consumed = service.serve_events(events)
    elapsed = time.perf_counter() - stream_start

    events_per_second = service.events_applied / elapsed
    metrics = service.metrics.as_dict()
    latency = metrics["serve.query.latency"]
    update = metrics["serve.update.seconds"]

    expected_intervals = profile["n_events"] // profile["interval_events"]
    assert consumed == len(events)
    assert service.events_applied == profile["n_events"]
    assert service.intervals_run == expected_intervals
    assert latency["count"] > 0

    print(
        f"\nserve[{profile_name}]: n={profile['n_nodes']}, "
        f"{service.events_applied} events / {elapsed:.2f}s = "
        f"{events_per_second:,.0f} ev/s over {service.intervals_run} "
        f"intervals; query p50 {latency['p50'] * 1e6:.1f}µs "
        f"p99 {latency['p99'] * 1e6:.1f}µs; "
        f"update p99 {update['p99'] * 1e3:.1f}ms"
    )

    bench_artifact(
        "serve",
        config={
            "profile": profile_name,
            "n_nodes": profile["n_nodes"],
            "n_pretrusted": profile["n_pretrusted"],
            "n_events": profile["n_events"],
            "interval_events": profile["interval_events"],
            "query_every": QUERY_EVERY,
            "system": "EigenTrust+SocialTrust",
            "seed": SEED,
        },
        results={
            "build_seconds": build_seconds,
            "stream_seconds": elapsed,
            "events_applied": service.events_applied,
            "events_per_second": events_per_second,
            "intervals_run": service.intervals_run,
            "queries": latency["count"],
            "query_p50_seconds": latency["p50"],
            "query_p90_seconds": latency["p90"],
            "query_p99_seconds": latency["p99"],
            "update_p50_seconds": update["p50"],
            "update_p99_seconds": update["p99"],
            "flood_top_rater_share": metrics["serve.flood.top_rater_share"][
                "value"
            ],
        },
        out=os.environ.get("BENCH_SERVE_OUT"),
    )

    floor = profile["min_events_per_second"]
    assert events_per_second >= floor, (
        f"sustained throughput {events_per_second:,.0f} ev/s below the "
        f"{floor:,.0f} ev/s floor ({profile_name} profile)"
    )
