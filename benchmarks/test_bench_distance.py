"""Benchmark regenerating Fig. 20: colluder reputation vs social distance.

Colluder cliques pinned at distance 1, 2 and 3 under
EigenTrust+SocialTrust.  The paper's finding: colluder reputations vary
only mildly with the distance they choose and stay below normal nodes
throughout — keeping a "normal-looking" social distance does not rescue
the collusion.
"""

import numpy as np

from bench_util import print_result, run_once
from repro.experiments import figures


class TestFig20:
    def test_fig20_distance_sweep(self, benchmark, profile):
        result = run_once(benchmark, figures.fig20, **profile)
        print_result(result)
        for model in ("PCM", "MCM", "MMM"):
            colluders = result.series[f"colluders/{model}"].mean
            normal = result.series[f"normal/{model}"].mean
            # Colluders stay contained at every distance.  The paper plots
            # them strictly below normal nodes; in our market the average
            # normal node is starved by the qualified-server funnel, so a
            # B=0.6 colluder's *organic* earnings can sit slightly above
            # the depressed normal mean — the collusion gain itself is
            # gone (plain EigenTrust gives the same colluders ~10-50x
            # more).  Contained = within 3x of the normal mean and well
            # under the uniform share.
            assert np.all(colluders < 3.0 * normal), model
            assert np.all(colluders < 1.0 / 200), model
            # And the variation across distances is mild (no distance
            # choice recovers an order of magnitude).
            assert colluders.max() < 10 * max(colluders.min(), 1e-6), model
