"""Observability overhead benchmark: tracing off must be (near-)free.

Runs the same collusion world three ways — bare (no observability
bundle), with ``Observability(tracing=False)`` attached (metrics +
audit log but the null tracer), and with full span tracing — and
asserts:

* the disabled-tracing run stays within **5%** wall-clock of the bare
  run (plus a small absolute slack to absorb scheduler noise on short
  smoke runs);
* all three runs produce **bit-identical** reputation histories —
  observability never touches the RNG streams or the numerics;
* the fully traced run exports a JSONL trace in which every line
  validates against the schema and detector-audit events are present.

The enabled-tracing time is recorded in the artifact for the record but
not asserted — tracing is opt-in and allowed to cost what it costs.
Results land in ``BENCH_obs.json`` at the repo root (override with
``BENCH_OBS_OUT``), using the shared
``{"name", "config", "results", "timestamp"}`` artifact schema.

Profiles (``BENCH_OBS_PROFILE`` environment variable):

* ``full`` (default) — n=1000 nodes, 50 simulation cycles, 3 repeats;
* ``smoke``          — n=120 nodes, 10 simulation cycles, 2 repeats
  (used by the CI smoke job; finishes in a few seconds).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.experiments import CollusionKind, SystemKind, WorldConfig, build_world
from repro.obs import (
    Observability,
    parse_prometheus,
    profile_spans,
    render_prometheus,
    validate_jsonl,
)

PROFILES = {
    "full": {"n_nodes": 1000, "simulation_cycles": 50, "repeats": 3},
    "smoke": {"n_nodes": 120, "simulation_cycles": 10, "repeats": 2},
}

#: Disabled-path overhead ceiling (relative) plus absolute slack, which
#: dominates on sub-second smoke runs where timer noise swamps the ratio.
MAX_OVERHEAD = 0.05
ABS_SLACK_S = 0.05


def _profile() -> tuple[str, dict]:
    name = os.environ.get("BENCH_OBS_PROFILE", "full")
    if name not in PROFILES:
        raise ValueError(f"BENCH_OBS_PROFILE must be one of {sorted(PROFILES)}")
    return name, PROFILES[name]


def _config(n_nodes: int, cycles: int) -> WorldConfig:
    return WorldConfig(
        n_nodes=n_nodes,
        n_colluders=max(2, n_nodes // 10),
        system=SystemKind.EIGENTRUST_SOCIALTRUST,
        collusion=CollusionKind.PCM,
        simulation_cycles=cycles,
    )


def _run_once(config: WorldConfig, observability: Observability | None):
    world = build_world(config, seed=0, observability=observability)
    start = time.perf_counter()
    metrics = world.simulation.run()
    return time.perf_counter() - start, metrics.reputation_history()


def _best_of(config: WorldConfig, repeats: int, make_obs):
    """(min wall-clock, history, last observability bundle) over repeats."""
    best = float("inf")
    history = None
    obs = None
    for _ in range(repeats):
        obs = make_obs()
        elapsed, history = _run_once(config, obs)
        best = min(best, elapsed)
    return best, history, obs


def test_obs_overhead(bench_artifact, tmp_path):
    name, profile = _profile()
    config = _config(profile["n_nodes"], profile["simulation_cycles"])
    repeats = profile["repeats"]

    bare_s, bare_hist, _ = _best_of(config, repeats, lambda: None)
    off_s, off_hist, _ = _best_of(
        config, repeats, lambda: Observability(tracing=False)
    )
    on_s, on_hist, on_obs = _best_of(
        config, repeats, lambda: Observability(tracing=True)
    )

    # Observability must never perturb the simulation itself.
    assert np.array_equal(off_hist, bare_hist), (
        "attaching Observability(tracing=False) changed the numerics"
    )
    assert np.array_equal(on_hist, bare_hist), (
        "attaching Observability(tracing=True) changed the numerics"
    )

    # The traced run must export a schema-valid trace with audit events.
    trace_path = tmp_path / "trace.jsonl"
    assert on_obs is not None
    on_obs.export_jsonl(trace_path)
    counts = validate_jsonl(trace_path)
    assert counts.get("span", 0) > 0, "traced run produced no spans"
    assert counts.get("audit", 0) > 0, "collusion run produced no audit events"

    # The profiler must aggregate the traced spans into phase stats whose
    # cumulative time is self-consistent (self <= cumulative, calls > 0).
    stats = profile_spans(on_obs.tracer.events())
    assert stats, "profiler found no phases in a traced run"
    for stat in stats:
        assert stat.calls > 0
        assert 0.0 <= stat.self_s <= stat.cumulative_s + 1e-12

    # The registry must export valid exposition text that round-trips.
    exposition = render_prometheus(on_obs.metrics)
    families = parse_prometheus(exposition)
    assert families, "traced run produced no metric families"

    overhead = off_s / bare_s - 1.0
    bench_artifact(
        "obs",
        config={
            "profile": name,
            "n_nodes": config.n_nodes,
            "simulation_cycles": config.simulation_cycles,
            "repeats": repeats,
            "max_overhead": MAX_OVERHEAD,
        },
        results={
            "bare_seconds": round(bare_s, 3),
            "tracing_off_seconds": round(off_s, 3),
            "tracing_on_seconds": round(on_s, 3),
            "disabled_overhead": round(overhead, 4),
            "span_events": counts.get("span", 0),
            "audit_events": counts.get("audit", 0),
            "profiled_phases": len(stats),
            "exposition_families": len(families),
        },
        out=os.environ.get("BENCH_OBS_OUT"),
    )
    print(
        f"\n[{name}] n={config.n_nodes} cycles={config.simulation_cycles}: "
        f"bare={bare_s:.2f}s off={off_s:.2f}s on={on_s:.2f}s "
        f"overhead={overhead:+.1%}"
    )
    assert off_s <= bare_s * (1.0 + MAX_OVERHEAD) + ABS_SLACK_S, (
        f"disabled-tracing overhead {overhead:+.1%} exceeds the "
        f"{MAX_OVERHEAD:.0%} ceiling ({off_s:.3f}s vs {bare_s:.3f}s bare)"
    )
