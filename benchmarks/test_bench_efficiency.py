"""Benchmark regenerating Fig. 19: convergence speed of collusion deterrence.

The paper measures the simulation cycles until every colluder's reputation
stays below 1e-3 under MMM.  Its finding: EigenTrust-family systems
converge in ~6-8 cycles while eBay needs ~25 at B=0.2 (and never converges
at B=0.6, which is why the paper omits it there).
"""

from bench_util import print_result, run_once
from repro.experiments import figures


class TestFig19:
    def test_fig19_convergence_cycles(self, benchmark, profile):
        result = run_once(benchmark, figures.fig19, **profile)
        print_result(result)
        never = result.meta["never_converged_value"]

        st_02 = result.series["B=0.2/EigenTrust+SocialTrust"].mean[0]
        et_02 = result.series["B=0.2/EigenTrust"].mean[0]

        # SocialTrust converges quickly at B=0.2 and no later than plain
        # EigenTrust (the paper puts both at 6-8 cycles; our EigenTrust is
        # somewhat slower because exploration keeps feeding the boosted
        # nodes a trickle of traffic).
        assert st_02 < never
        assert st_02 <= et_02

        # At B=0.6 plain EigenTrust cannot suppress MMM colluders at all,
        # while SocialTrust still converges — the paper's reason for
        # omitting the non-SocialTrust systems in Fig. 19(b).
        st_06 = result.series["B=0.6/EigenTrust+SocialTrust"].mean[0]
        et_06 = result.series["B=0.6/EigenTrust"].mean[0]
        assert st_06 < never
        assert et_06 == never
