"""Benchmarks regenerating Figs. 10 and 15: compromised pre-trusted nodes."""

from bench_util import group_means, print_result, run_once
from repro.experiments import figures


class TestFig10:
    """PCM B=0.2 with 7 compromised pre-trusted nodes."""

    def test_fig10_compromised_pretrusted(self, benchmark, profile):
        result = run_once(benchmark, figures.fig10, **profile)
        print_result(result)
        colluders = result.meta["colluder_ids"]
        pretrusted = result.meta["pretrusted_ids"]

        # Fig. 10(a): the compromised pre-trusted endorsements lift the
        # colluders EigenTrust had suppressed at B=0.2 (compare Fig. 9(a));
        # they now draw a large request share.
        frac = result.meta["request_fraction_to_colluders"]
        assert frac["EigenTrust"] > 0.1

        # Fig. 10(b): SocialTrust still suppresses both the colluders and
        # their pre-trusted accomplices.
        col_st, normal_st, _ = group_means(
            result, "EigenTrust+SocialTrust", colluders, pretrusted
        )
        assert col_st < normal_st
        assert frac["EigenTrust+SocialTrust"] < 0.3 * frac["EigenTrust"]


class TestFig15:
    """MCM and MMM B=0.2 with compromised pre-trusted nodes."""

    def test_fig15_mcm_mmm_compromised(self, benchmark, profile):
        result = run_once(benchmark, figures.fig15, **profile)
        print_result(result)
        colluders = result.meta["colluder_ids"]
        pretrusted = result.meta["pretrusted_ids"]
        frac = result.meta["request_fraction_to_colluders"]

        for model in ("MCM", "MMM"):
            # SocialTrust keeps the colluder group below normal nodes and
            # cuts their request share versus plain EigenTrust.
            col_st, normal_st, _ = group_means(
                result, f"{model}/EigenTrust+SocialTrust", colluders, pretrusted
            )
            assert col_st < normal_st, model
            assert (
                frac[f"{model}/EigenTrust+SocialTrust"]
                <= frac[f"{model}/EigenTrust"]
            ), model
