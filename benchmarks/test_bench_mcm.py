"""Benchmarks regenerating Figs. 11-12: multiple-node collusion (MCM)."""

import numpy as np

from bench_util import group_means, print_result, run_once
from repro.experiments import figures


class TestFig11:
    """MCM, B=0.6: boosted nodes rise under the base systems."""

    def test_fig11_mcm_high_b(self, benchmark, profile):
        result = run_once(benchmark, figures.fig11, **profile)
        print_result(result)
        colluders = list(result.meta["colluder_ids"])
        pretrusted = result.meta["pretrusted_ids"]

        # Fig. 11(a): under plain EigenTrust *some* colluders (the boosted
        # ones) reach reputations well above the normal-node mean while the
        # boosting nodes stay low — a bimodal colluder distribution.  MCM's
        # one-directional pumping (~3 boosters per boosted node, no return
        # loop) is the mildest of the three attacks, so the spike is a
        # factor of 2-3, not the order of magnitude MMM produces.
        reps = result.series["EigenTrust"].mean
        col, normal, _ = group_means(result, "EigenTrust", colluders, pretrusted)
        assert reps[colluders].max() > 2 * normal

        # Fig. 11(c): SocialTrust removes the boosted spike.
        reps_st = result.series["EigenTrust+SocialTrust"].mean
        assert reps_st[colluders].max() < reps[colluders].max()
        col_st, normal_st, _ = group_means(
            result, "EigenTrust+SocialTrust", colluders, pretrusted
        )
        assert col_st < 2 * normal_st


class TestFig12:
    """MCM, B=0.2: low-QoS boosting nodes cannot lift the boosted ones."""

    def test_fig12_mcm_low_b(self, benchmark, profile):
        result = run_once(benchmark, figures.fig12, **profile)
        print_result(result)
        colluders = list(result.meta["colluder_ids"])
        pretrusted = result.meta["pretrusted_ids"]

        # Fig. 12(a): EigenTrust keeps all colluders low.
        col, normal, _ = group_means(result, "EigenTrust", colluders, pretrusted)
        assert col < normal

        # Figs. 12(c)/(d): SocialTrust pushes them further down.
        col_st, _, _ = group_means(
            result, "EigenTrust+SocialTrust", colluders, pretrusted
        )
        assert col_st <= col * 1.05
        reps_st = result.series["EigenTrust+SocialTrust"].mean
        assert np.all(reps_st[colluders] < 2 * normal)
