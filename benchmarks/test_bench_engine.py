"""Scalar vs batched query-cycle engine: the tentpole speedup benchmark.

Runs the same no-collusion world twice — once on the seed per-client
scalar loop, once on the batched engine — asserts the reputation
histories are **bit-identical**, and asserts the wall-clock speedup floor
(>= 5x at the full profile).  Results land in ``BENCH_engine.json`` at
the repo root (override with ``BENCH_ENGINE_OUT``), using the shared
``{"name", "config", "results", "timestamp"}`` artifact schema, so CI
can archive them.

Profiles (``BENCH_ENGINE_PROFILE`` environment variable):

* ``full`` (default) — n=1000 nodes, 50 simulation cycles, floor 5x;
* ``smoke``          — n=120 nodes, 10 simulation cycles, floor 2x
  (used by the CI smoke job; finishes in a few seconds).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.experiments import CollusionKind, WorldConfig, build_world
from repro.p2p import EngineMode

PROFILES = {
    "full": {"n_nodes": 1000, "simulation_cycles": 50, "min_speedup": 5.0},
    "smoke": {"n_nodes": 120, "simulation_cycles": 10, "min_speedup": 2.0},
}


def _profile() -> tuple[str, dict]:
    name = os.environ.get("BENCH_ENGINE_PROFILE", "full")
    if name not in PROFILES:
        raise ValueError(f"BENCH_ENGINE_PROFILE must be one of {sorted(PROFILES)}")
    return name, PROFILES[name]


def _run(engine: EngineMode, n_nodes: int, cycles: int) -> tuple[float, np.ndarray]:
    """(wall-clock seconds, reputation history) for one engine."""
    config = WorldConfig(
        n_nodes=n_nodes,
        collusion=CollusionKind.NONE,
        simulation_cycles=cycles,
        engine=engine,
    )
    world = build_world(config, seed=0)
    start = time.perf_counter()
    metrics = world.simulation.run()
    return time.perf_counter() - start, metrics.reputation_history()


def test_engine_speedup(bench_artifact):
    name, profile = _profile()
    n_nodes = profile["n_nodes"]
    cycles = profile["simulation_cycles"]
    scalar_s, scalar_hist = _run(EngineMode.SCALAR, n_nodes, cycles)
    batched_s, batched_hist = _run(EngineMode.BATCHED, n_nodes, cycles)
    identical = bool(np.array_equal(batched_hist, scalar_hist))
    speedup = scalar_s / batched_s
    bench_artifact(
        "engine",
        config={
            "profile": name,
            "n_nodes": n_nodes,
            "simulation_cycles": cycles,
            "min_speedup": profile["min_speedup"],
        },
        results={
            "scalar_seconds": round(scalar_s, 3),
            "batched_seconds": round(batched_s, 3),
            "speedup": round(speedup, 2),
            "bit_identical": identical,
        },
        out=os.environ.get("BENCH_ENGINE_OUT"),
    )
    print(
        f"\n[{name}] n={n_nodes} cycles={cycles}: "
        f"scalar={scalar_s:.2f}s batched={batched_s:.2f}s "
        f"speedup={speedup:.1f}x identical={identical}"
    )
    assert identical, "batched engine diverged from the scalar reference"
    assert speedup >= profile["min_speedup"], (
        f"speedup {speedup:.2f}x below the {profile['min_speedup']}x floor"
    )
