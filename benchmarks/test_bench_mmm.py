"""Benchmarks regenerating Figs. 13-14: mutual multi-node collusion (MMM)."""

from bench_util import group_means, print_result, run_once
from repro.experiments import figures


class TestFig13:
    """MMM, B=0.6: the strongest attack on the base systems."""

    def test_fig13_mmm_high_b(self, benchmark, profile):
        result = run_once(benchmark, figures.fig13, **profile)
        print_result(result)
        colluders = result.meta["colluder_ids"]
        pretrusted = result.meta["pretrusted_ids"]

        # Fig. 13(a): mutual rating loops inflate colluders dramatically.
        col, normal, _ = group_means(result, "EigenTrust", colluders, pretrusted)
        assert col > 5 * normal

        # Fig. 13(c): SocialTrust collapses them.
        col_st, normal_st, _ = group_means(
            result, "EigenTrust+SocialTrust", colluders, pretrusted
        )
        assert col_st < normal_st

        frac = result.meta["request_fraction_to_colluders"]
        assert frac["EigenTrust+SocialTrust"] < 0.2 * frac["EigenTrust"]


class TestFig14:
    """MMM, B=0.2: even low-QoS colluders gain under plain EigenTrust."""

    def test_fig14_mmm_low_b(self, benchmark, profile):
        result = run_once(benchmark, figures.fig14, **profile)
        print_result(result)
        colluders = list(result.meta["colluder_ids"])
        pretrusted = result.meta["pretrusted_ids"]

        # Fig. 14(a) vs Fig. 12(a): the mutual loop lets boosted nodes
        # climb despite B=0.2 — colluder peak above the normal mean.
        reps = result.series["EigenTrust"].mean
        _, normal, _ = group_means(result, "EigenTrust", colluders, pretrusted)
        assert reps[colluders].max() > normal

        # Figs. 14(c)/(d): SocialTrust eliminates the gain entirely.
        col_st, normal_st, _ = group_means(
            result, "EigenTrust+SocialTrust", colluders, pretrusted
        )
        assert col_st < 0.5 * normal_st
