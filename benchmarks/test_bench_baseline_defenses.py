"""Benchmark supporting the paper's motivating claim (Section 1):

"Although the mechanisms can reduce the influence of collusion on
reputations to a certain extent, they are not sufficiently effective in
countering collusion."

The main prior mechanism the paper cites is TrustGuard's
similarity-weighted feedback.  This bench runs the PCM B=0.6 attack across
the defence spectrum — undefended EigenTrust, the TrustGuard-like
credibility weighting, and EigenTrust+SocialTrust — and checks the claimed
ordering: the similarity-weighted defence helps, SocialTrust helps more.
"""

from bench_util import run_once
from repro.collusion import PairwiseCollusion
from repro.core import SocialTrust
from repro.p2p import InterestOverlay, Population, Simulation, SimulationConfig
from repro.p2p.selection import SelectionPolicy
from repro.reputation import EigenTrust, SimilarityWeightedModel
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N = 200
PRETRUSTED = tuple(range(9))
COLLUDERS = tuple(range(9, 39))


def run_system(system_factory, cycles, seed=0):
    rng = spawn_rng(seed, 0)
    pop = Population.build(
        N,
        rng,
        pretrusted_ids=PRETRUSTED,
        malicious_ids=COLLUDERS,
        n_interests=20,
        interests_per_node=(1, 10),
        malicious_authentic_prob=0.6,
    )
    overlay = InterestOverlay([s.interests for s in pop], 20)
    network = paper_social_network(N, COLLUDERS, rng)
    interactions = InteractionLedger(N)
    profiles = InterestProfiles(N, 20)
    for spec in pop:
        profiles.set_declared(spec.node_id, spec.interests)
    system = system_factory(network, interactions, profiles)
    attack = PairwiseCollusion(
        COLLUDERS, [s.interests for s in pop], ratings_per_cycle=20
    )
    sim = Simulation(
        pop,
        overlay,
        system,
        rng,
        config=SimulationConfig(
            simulation_cycles=cycles,
            selection_policy=SelectionPolicy.THRESHOLD_RANDOM,
            selection_exploration=0.2,
        ),
        collusion=attack,
        interactions=interactions,
        profiles=profiles,
    )
    sim.run()
    reps = sim.metrics.final_reputations()
    return float(reps[list(COLLUDERS)].sum()), sim.metrics.fraction_served_by(
        COLLUDERS
    )


class TestDefenseSpectrum:
    def test_socialtrust_beats_similarity_weighting(self, benchmark, profile):
        cycles = profile["simulation_cycles"]

        def sweep():
            return {
                "EigenTrust (undefended)": run_system(
                    lambda *_: EigenTrust(N, PRETRUSTED, pretrust_weight=0.05),
                    cycles,
                ),
                "TrustGuard-like": run_system(
                    lambda *_: SimilarityWeightedModel(N),
                    cycles,
                ),
                "EigenTrust+SocialTrust": run_system(
                    lambda net, inter, prof: SocialTrust(
                        EigenTrust(N, PRETRUSTED, pretrust_weight=0.05),
                        net,
                        inter,
                        prof,
                    ),
                    cycles,
                ),
            }

        results = run_once(benchmark, sweep)
        print()
        for name, (mass, share) in results.items():
            print(f"[defenses] {name:28s} colluder mass={mass:.4f} "
                  f"requests={share:.1%}")
        undefended, _ = results["EigenTrust (undefended)"]
        trustguard, _ = results["TrustGuard-like"]
        socialtrust, _ = results["EigenTrust+SocialTrust"]
        # The paper's ordering: prior similarity-based defences reduce the
        # collusion gain "to a certain extent"; SocialTrust goes further.
        assert trustguard < undefended
        assert socialtrust < trustguard
