"""Micro-benchmarks of the hot computational kernels.

Unlike the figure benchmarks (one timed run of a full experiment), these
use pytest-benchmark's normal calibration to time the inner kernels the
simulation grid leans on: the EigenTrust power iteration, the vectorised
closeness/similarity matrices, the detector pass, and one simulation
cycle.
"""

import numpy as np
import pytest

from repro.core import ClosenessComputer, CollusionDetector, SimilarityComputer, SocialTrustConfig
from repro.experiments.setup import CollusionKind, SystemKind, WorldConfig, build_world
from repro.reputation import EigenTrust
from repro.reputation.base import IntervalRatings
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

N = 200


@pytest.fixture(scope="module")
def dense_interval():
    rng = spawn_rng(1, 0)
    iv = IntervalRatings(N)
    values = rng.random((N, N))
    iv.value_sum[:] = np.where(values > 0.5, 1.0, -1.0) * (values > 0.2)
    iv.pos_counts[:] = (iv.value_sum > 0).astype(float)
    iv.neg_counts[:] = (iv.value_sum < 0).astype(float)
    np.fill_diagonal(iv.value_sum, 0)
    return iv


@pytest.fixture(scope="module")
def social_stack():
    rng = spawn_rng(2, 0)
    network = paper_social_network(N, list(range(10, 40)), rng)
    interactions = InteractionLedger(N)
    for _ in range(4000):
        i, j = rng.integers(0, N, size=2)
        if i != j:
            interactions.record(int(i), int(j))
    profiles = InterestProfiles(N, 20)
    for node in range(N):
        k = int(rng.integers(1, 11))
        profiles.set_declared(node, (int(v) for v in rng.choice(20, k, replace=False)))
        for _ in range(10):
            profiles.record_request(node, int(rng.choice(sorted(profiles.declared(node)))))
    config = SocialTrustConfig()
    closeness = ClosenessComputer(network, interactions, config)
    similarity = SimilarityComputer(profiles, config)
    return closeness, similarity, config


class TestKernels:
    def test_eigentrust_update(self, benchmark, dense_interval):
        system = EigenTrust(N, list(range(9)))

        def step():
            system.update(dense_interval)

        benchmark(step)

    def test_closeness_matrix(self, benchmark, social_stack):
        closeness, _, _ = social_stack
        result = benchmark(closeness.closeness_matrix)
        assert result.shape == (N, N)

    def test_similarity_matrix(self, benchmark, social_stack):
        _, similarity, _ = social_stack
        result = benchmark(similarity.similarity_matrix)
        assert result.shape == (N, N)

    def test_detector_analyze(self, benchmark, social_stack, dense_interval):
        closeness, similarity, config = social_stack
        detector = CollusionDetector(closeness, similarity, config)
        reputations = np.full(N, 1.0 / N)
        rated = dense_interval.counts > 0

        def analyze():
            return detector.analyze(dense_interval, reputations, rated)

        result = benchmark(analyze)
        assert result.weights.shape == (N, N)


class TestSimulationCycle:
    def test_one_simulation_cycle(self, benchmark):
        config = WorldConfig(
            collusion=CollusionKind.PCM,
            colluder_b=0.6,
            system=SystemKind.EIGENTRUST_SOCIALTRUST,
            simulation_cycles=1,
        )
        world = build_world(config, seed=3)

        def cycle():
            world.simulation.run_simulation_cycle()

        benchmark.pedantic(cycle, rounds=3, iterations=1)
