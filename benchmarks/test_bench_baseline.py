"""Benchmark regenerating Fig. 7: EigenTrust vs eBay without colluders."""

from bench_util import group_means, print_result, run_once
from repro.experiments import figures


class TestFig7:
    def test_fig7_no_colluders(self, benchmark, profile):
        result = run_once(benchmark, figures.fig7, **profile)
        print_result(result)
        colluders = result.meta["colluder_ids"]  # the malicious (non-colluding) peers
        pretrusted = result.meta["pretrusted_ids"]

        # Fig. 7(a): EigenTrust gives malicious peers low reputations.
        mal_et, normal_et, pre_et = group_means(
            result, "EigenTrust", colluders, pretrusted
        )
        assert mal_et < normal_et
        assert pre_et > normal_et

        # Fig. 7(b): eBay also ranks them below normal peers.
        mal_ebay, normal_ebay, _ = group_means(result, "eBay", colluders, pretrusted)
        assert mal_ebay < normal_ebay

        # Fig. 7(c): EigenTrust routes fewer requests to malicious peers
        # than eBay does.
        pct = result.meta["percent_services_by_malicious"]
        assert pct["EigenTrust"] < pct["eBay"]
