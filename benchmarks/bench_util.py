"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiment functions are full simulations; default benchmark
    calibration would re-run them dozens of times.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def print_result(result) -> None:
    """Print the regenerated table/figure series below the benchmark row."""
    print()
    print(result.describe())


def group_means(result, series, colluder_ids, pretrusted_ids):
    """(colluder, normal, pretrusted) mean reputations for one system series."""
    reps = result.series[series].mean
    colluders = list(colluder_ids)
    pretrusted = list(pretrusted_ids)
    normal = [
        i for i in range(reps.size) if i not in colluders and i not in pretrusted
    ]
    return (
        float(reps[colluders].mean()),
        float(reps[normal].mean()),
        float(reps[pretrusted].mean()),
    )
