"""Benchmarks regenerating Figs. 16-18: falsified static social information.

Colluders declare a single relationship and identical interest profiles to
dodge the B1-B4 patterns; the hardened coefficients (Eqs. (10)/(11)) keep
reading their *behaviour*, so SocialTrust still holds them below normal
nodes (slightly higher than with truthful profiles, as the paper reports).
"""

import pytest

from bench_util import group_means, print_result, run_once
from repro.experiments import figures


@pytest.mark.parametrize(
    "fig, func",
    [
        ("fig16", figures.fig16),
        ("fig17", figures.fig17),
        ("fig18", figures.fig18),
    ],
)
class TestFalsifiedInfo:
    def test_socialtrust_resists_falsification(self, benchmark, profile, fig, func):
        result = run_once(benchmark, func, **profile)
        print_result(result)
        colluders = result.meta["colluder_ids"]
        pretrusted = result.meta["pretrusted_ids"]
        col_st, normal_st, _ = group_means(
            result, "EigenTrust+SocialTrust", colluders, pretrusted
        )
        assert col_st < normal_st, fig
        frac = result.meta["request_fraction_to_colluders"]
        assert frac["EigenTrust+SocialTrust"] < 0.1, fig
