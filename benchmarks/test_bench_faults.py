"""Benchmark: SocialTrust degradation under injected faults.

Not a paper figure — the robustness sweep the deployment north-star
needs.  Exercises the full fault surface: peer churn, resource-manager
crashes with Chord-successor failover, and lossy messaging with
capped-backoff retries and the neutral-damping fallback.
"""

import numpy as np
from bench_util import print_result, run_once
from repro.experiments.faults import build_faulty_world, fault_tolerance
from repro.faults import FaultConfig


class TestFaultTolerance:
    def test_fault_scenarios(self, benchmark, profile):
        result = run_once(benchmark, fault_tolerance, **profile)
        print_result(result)
        totals = result.meta["fault_totals"]

        # Fault-free: collusion is contained (colluders below normal mean)
        # and no fault machinery ever fired.
        ff = result.series["fault_free"].mean
        assert ff[0] < ff[1], "colluders must stay below normal nodes"
        assert ff[3] == 0.0, "fault-free error against itself must be zero"
        assert totals["fault_free"]["losses"] == 0
        assert totals["fault_free"]["fallbacks"] == 0

        # 20% message loss: retries absorb it — losses and retries are
        # observed, yet the reputation error stays (near) zero and the
        # colluders stay contained.
        l20 = result.series["loss_20"].mean
        assert totals["loss_20"]["losses"] > 0
        assert totals["loss_20"]["retries"] > 0
        assert l20[0] < l20[1]
        assert l20[3] <= 0.005, "capped-backoff retries should absorb 20% loss"

        # 50% loss with a tight budget: timeouts and neutral-damping
        # fallbacks appear, the run still completes, degradation is
        # graceful (bounded error, pre-trusted still on top).
        l50 = result.series["loss_50"].mean
        assert totals["loss_50"]["timeouts"] > 0
        assert totals["loss_50"]["fallbacks"] > 0
        assert l50[2] > l50[1], "pre-trusted must stay above normal nodes"

        # Churn: lifecycle events recorded, simulation completes, the
        # detector still contains the colluders.
        churn = result.series["churn_10"].mean
        assert totals["churn_10"]["events"] > 0
        assert churn[0] < churn[1]

        # Combined crash + loss + churn: failover reassignments happen
        # and the system degrades gracefully rather than crashing.
        combined = result.series["crash_loss_churn"].mean
        assert totals["crash_loss_churn"]["reassignments"] > 0
        assert totals["crash_loss_churn"]["retries"] > 0
        assert combined[0] < combined[1]
        assert combined[2] > combined[1]

    def test_degradation_series_populated(self, benchmark, profile):
        """The per-cycle fault series is recorded alongside reputations."""

        def run():
            simulation = build_faulty_world(
                FaultConfig(
                    peer_leave_rate=0.05,
                    peer_crash_rate=0.03,
                    peer_rejoin_rate=0.30,
                    manager_crash_rate=0.20,
                    manager_recovery_rate=0.40,
                    message_loss_rate=0.20,
                    max_retries=3,
                    timeout_budget=20.0,
                ),
                seed=3,
                simulation_cycles=profile["simulation_cycles"],
            )
            return simulation.run()

        metrics = run_once(benchmark, run)
        series = metrics.faults.series()
        assert len(series) == profile["simulation_cycles"]
        assert len(series) == metrics.n_snapshots
        last = series[-1]
        # Cumulative columns are monotone and the fault machinery fired.
        for column in ("retries", "events", "reassignments"):
            values = [row[column] for row in series]
            assert values == sorted(values)
            assert last[column] > 0
        assert last["losses"] > 0
        # Churn actually took peers offline at some point.
        assert min(row["peers_online"] for row in series) < metrics.n_nodes
        # Reputation-error-vs-cycle series against the fault-free world.
        reference = build_faulty_world(
            FaultConfig(), seed=3, simulation_cycles=profile["simulation_cycles"]
        ).run()
        errors = metrics.reputation_error_series(reference.reputation_history())
        assert errors.shape == (profile["simulation_cycles"],)
        assert np.all(np.isfinite(errors))
        print(
            "\nfinal fault counters:", metrics.faults.summary(),
            "\nmean reputation error by cycle:", np.round(errors, 5),
        )
