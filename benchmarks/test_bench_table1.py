"""Benchmark regenerating Table 1: percentage of requests sent to colluders.

Prints the full measured grid next to the paper's reported percentages and
asserts the table's two structural claims: SocialTrust rows sit in the
low single digits everywhere, and each SocialTrust row undercuts its base
system row.
"""

from bench_util import run_once
from repro.experiments.table1 import table1


def _print_table(result):
    paper = result.meta["paper"]
    print()
    print(f"{'cell':44s} {'measured':>9s} {'paper':>7s}")
    for key, stats in result.series.items():
        measured = stats.mean[0]
        ref = paper.get(key)
        ref_text = f"{ref:6.0%}" if ref is not None else "   -"
        print(f"{key:44s} {measured:8.1%} {ref_text:>7s}")


class TestTable1:
    def test_table1_request_routing(self, benchmark, profile):
        result = run_once(
            benchmark,
            table1,
            n_runs=profile["n_runs"],
            simulation_cycles=profile["simulation_cycles"],
        )
        _print_table(result)

        def frac(model, b, row):
            return result.series[f"{model}/B={b}/{row}"].mean[0]

        for model in ("pcm", "mcm", "mmm"):
            for b in (0.2, 0.6):
                # SocialTrust holds colluder request share to a few percent
                # (paper: 2-4%) in every model/B cell...
                for row in (
                    "EigenTrust+SocialTrust",
                    "EigenTrust+SocialTrust (Pre)",
                ):
                    assert frac(model, b, row) < 0.10, (model, b, row)
                # ... and never exceeds its base system.
                assert frac(model, b, "EigenTrust+SocialTrust") <= frac(
                    model, b, "EigenTrust"
                ) + 0.02, (model, b)

        # The headline contrast: at B=0.6 the base systems leak a large
        # request share to colluders under PCM/MMM; SocialTrust does not.
        assert frac("pcm", 0.6, "EigenTrust") > 0.15
        assert frac("mmm", 0.6, "EigenTrust") > 0.15
