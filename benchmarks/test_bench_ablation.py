"""Ablation benchmarks for the SocialTrust design choices DESIGN.md calls out.

Two regimes expose different mechanisms:

* **distance 1** (the paper's main setup): the colluders' pumped closeness
  is a glaring outlier, so the Gaussian filter of Eq. (9) does the work and
  every variant contains the attack;
* **distance 2** (the Fig. 20 evasion): the colluders' coefficients look
  normal and Eq. (9) alone barely moves — here the flagged-frequency cap
  and the recidivism escalation carry the defence, and switching them off
  is measurable.

Each variant runs the PCM B=0.6 cell and reports the colluder reputation
mass (the 30 colluders' share of the total; plain EigenTrust gives them
~0.7).
"""

import pytest

from bench_util import run_once
from repro.core import GaussianCenter, SocialTrustConfig
from repro.core.config import CommonFriendAggregate
from repro.experiments.setup import (
    CollusionKind,
    SystemKind,
    WorldConfig,
    build_world,
)


def run_variant(st_config: SocialTrustConfig, cycles: int, distance: int, seed: int = 0):
    config = WorldConfig(
        collusion=CollusionKind.PCM,
        colluder_b=0.6,
        system=SystemKind.EIGENTRUST_SOCIALTRUST,
        simulation_cycles=cycles,
        colluder_distance=distance,
        socialtrust=st_config,
    )
    world = build_world(config, seed=seed, run_index=0)
    world.simulation.run()
    reps = world.simulation.metrics.final_reputations()
    return float(reps[list(config.colluder_ids)].sum()), float(
        reps[list(config.normal_ids)].mean()
    )


VARIANTS = {
    "full": SocialTrustConfig(),
    "closeness-only": SocialTrustConfig(use_similarity=False),
    "similarity-only": SocialTrustConfig(use_closeness=False),
    "global-center": SocialTrustConfig(center=GaussianCenter.GLOBAL),
    "rater-center": SocialTrustConfig(center=GaussianCenter.RATER),
    "plain-coefficients": SocialTrustConfig(hardened=False),
    "sum-common-friends": SocialTrustConfig(
        common_friend_aggregate=CommonFriendAggregate.SUM
    ),
    "no-frequency-cap": SocialTrustConfig(cap_flagged_frequency=False),
    "no-recidivism": SocialTrustConfig(recidivism_decay=1.0),
    "gaussian-only": SocialTrustConfig(
        cap_flagged_frequency=False, recidivism_decay=1.0
    ),
}


@pytest.mark.parametrize("name", sorted(VARIANTS))
class TestAblationsDistance1:
    def test_ablation(self, benchmark, profile, name):
        cycles = profile["simulation_cycles"]
        col_mass, normal_mean = run_once(
            benchmark, run_variant, VARIANTS[name], cycles, 1
        )
        print(f"\n[ablation d=1:{name}] colluder mass={col_mass:.4f} "
              f"normal mean={normal_mean:.5f}")
        # At distance 1 the Gaussian outlier filter alone contains the
        # attack, so every variant must stay far below the undefended ~0.7.
        assert col_mass < 0.3, name


class TestAblationsDistance2:
    """The Fig. 20 evasion regime — Eq. (9) alone is not enough here."""

    def test_hardening_layers_matter_at_distance_2(self, benchmark, profile):
        cycles = profile["simulation_cycles"]

        def sweep():
            return {
                name: run_variant(VARIANTS[name], cycles, 2)
                for name in ("full", "no-frequency-cap", "gaussian-only")
            }

        results = run_once(benchmark, sweep)
        print()
        for name, (mass, normal_mean) in results.items():
            print(f"[ablation d=2:{name}] colluder mass={mass:.4f} "
                  f"normal mean={normal_mean:.5f}")
        full, _ = results["full"]
        gaussian_only, _ = results["gaussian-only"]
        # The cap + recidivism layers are what contain distance-2 colluders.
        assert full < 0.5 * gaussian_only
        assert full < 0.15
