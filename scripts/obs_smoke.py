#!/usr/bin/env python
"""CI obs-smoke: run a tiny traced collusion scenario and validate the trace.

Runs a 40-node PCM collusion world with full observability, exports the
JSONL trace, validates every line against the event schema, and asserts
the detector audit captured at least one damped pair with fired
thresholds.  Exits non-zero on any failure, so the CI step is a real
gate, not a smoke signal.

CI runs this under ``python -W error::DeprecationWarning`` — the traced
path must not lean on any deprecated shim.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api import run_scenario
from repro.obs import AuditEvent, read_jsonl, validate_jsonl


def main() -> int:
    result = run_scenario(
        n_nodes=40,
        n_pretrusted=3,
        n_colluders=8,
        system="EigenTrust+SocialTrust",
        collusion="pcm",
        simulation_cycles=3,
        n_interests=8,
        interests_per_node=(1, 4),
        query_cycles=6,
        seed=1,
        observability=True,
    )
    obs = result.observability
    assert obs is not None, "observability bundle missing from the result"

    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "obs_smoke.jsonl"
        n_written = obs.export_jsonl(trace)
        counts = validate_jsonl(trace)
        assert sum(counts.values()) == n_written, "line count mismatch"
        assert counts.get("span", 0) > 0, "no spans in the trace"
        assert counts.get("audit", 0) > 0, "no audit events in the trace"
        assert counts.get("metrics", 0) == 1, "expected one metrics snapshot"

        audit = [
            AuditEvent.from_dict(e)
            for e in read_jsonl(trace)
            if e["type"] == "audit"
        ]

    damped = [e for e in audit if e.decision == "damped"]
    assert damped, "collusion run produced no damped audit events"
    assert all(e.fired for e in damped), "damped event without fired thresholds"
    assert all(e.behaviors for e in damped), "damped event without behaviours"

    print(
        f"obs-smoke OK: {n_written} events "
        f"(spans={counts['span']}, audit={counts['audit']}, "
        f"damped={len(damped)})"
    )
    print()
    print(obs.report(title="obs-smoke report"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
