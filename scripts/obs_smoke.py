#!/usr/bin/env python
"""CI obs-smoke: traced scenario, telemetry pipeline, health, profiler.

Stage 1 — batch trace: runs a 40-node PCM collusion world with full
observability, exports the JSONL trace, validates every line against the
event schema, and asserts the detector audit captured at least one
damped pair with fired thresholds.

Stage 2 — telemetry pipeline: streams rating traffic (including an
injected single-rater flood window) through a live
:class:`~repro.serve.ReputationService` wired to a
:class:`~repro.obs.TelemetrySink` and :class:`~repro.obs.HealthMonitor`,
then asserts the recorded series is watermark-aligned and schema-valid,
the health verdict flipped OK -> DEGRADED -> OK, the last snapshot
renders as parseable Prometheus exposition, and the traced spans profile
into a non-empty hot-path table.

Exits non-zero on any failure, so the CI step is a real gate, not a
smoke signal.  CI runs this under ``python -W error::DeprecationWarning``
— the traced path must not lean on any deprecated shim.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.api import ScenarioSpec, run_scenario
from repro.obs import (
    DEGRADED,
    OK,
    AuditEvent,
    HealthMonitor,
    Observability,
    TelemetrySink,
    default_service_rules,
    parse_prometheus,
    profile_spans,
    read_jsonl,
    read_telemetry,
    render_prometheus,
    render_top,
    validate_jsonl,
)
from repro.serve import RatingEvent, ReputationService, WatermarkEvent


def smoke_batch_trace() -> None:
    result = run_scenario(
        n_nodes=40,
        n_pretrusted=3,
        n_colluders=8,
        system="EigenTrust+SocialTrust",
        collusion="pcm",
        simulation_cycles=3,
        n_interests=8,
        interests_per_node=(1, 4),
        query_cycles=6,
        seed=1,
        observability=True,
    )
    obs = result.observability
    assert obs is not None, "observability bundle missing from the result"

    with tempfile.TemporaryDirectory() as tmp:
        trace = Path(tmp) / "obs_smoke.jsonl"
        n_written = obs.export_jsonl(trace)
        counts = validate_jsonl(trace)
        assert sum(counts.values()) == n_written, "line count mismatch"
        assert counts.get("span", 0) > 0, "no spans in the trace"
        assert counts.get("audit", 0) > 0, "no audit events in the trace"
        assert counts.get("metrics", 0) == 1, "expected one metrics snapshot"

        audit = [
            AuditEvent.from_dict(e)
            for e in read_jsonl(trace)
            if e["type"] == "audit"
        ]

    damped = [e for e in audit if e.decision == "damped"]
    assert damped, "collusion run produced no damped audit events"
    assert all(e.fired for e in damped), "damped event without fired thresholds"
    assert all(e.behaviors for e in damped), "damped event without behaviours"

    print(
        f"obs-smoke OK: {n_written} events "
        f"(spans={counts['span']}, audit={counts['audit']}, "
        f"damped={len(damped)})"
    )
    print()
    print(obs.report(title="obs-smoke report"))


def smoke_telemetry_pipeline() -> None:
    spec = ScenarioSpec(
        system="EigenTrust+SocialTrust",
        collusion="pcm",
        seed=7,
        world=dict(
            n_nodes=20,
            n_pretrusted=2,
            n_colluders=4,
            n_interests=6,
            interests_per_node=[1, 3],
            capacity=10,
            query_cycles=3,
            simulation_cycles=3,
        ),
    )
    with tempfile.TemporaryDirectory() as tmp:
        telemetry = Path(tmp) / "telemetry.jsonl"
        sink = TelemetrySink(telemetry)
        monitor = HealthMonitor(default_service_rules(), sink=sink)
        service = ReputationService(
            spec,
            observability=Observability(tracing=True),
            telemetry_sink=sink,
            health=monitor,
        )

        n = service.n_nodes
        interval = 0
        states = []
        # 3 healthy intervals, 3 single-rater flood intervals, 4 healed.
        for phase in ("spread",) * 3 + ("flood",) * 3 + ("spread",) * 4:
            if phase == "spread":
                for rater in range(10):
                    service.apply(
                        RatingEvent(rater=rater, ratee=(rater + 1) % n, value=1.0)
                    )
            else:
                for k in range(30):
                    service.apply(
                        RatingEvent(rater=0, ratee=1 + (k % (n - 1)), value=1.0)
                    )
            service.apply(WatermarkEvent(cycle=interval))
            states.append(monitor.state)
            interval += 1
        sink.close()

        assert OK in states and DEGRADED in states, (
            f"flood window never degraded the verdict: {states}"
        )
        assert monitor.state == OK, f"verdict did not heal: {monitor.state}"
        overall = [
            (t["from"], t["to"])
            for t in monitor.transitions
            if t["scope"] == "overall"
        ]
        assert overall == [(OK, DEGRADED), (DEGRADED, OK)], overall

        counts = validate_jsonl(telemetry)
        assert counts.get("telemetry", 0) == 10, counts
        assert counts.get("health", 0) >= 4, counts
        snapshots = read_telemetry(telemetry)
        assert [e["interval"] for e in snapshots] == list(range(1, 11))

        # A fresh monitor replaying the recorded series reaches the same
        # verdict the live one did.
        replayed = HealthMonitor(default_service_rules())
        replayed.replay(snapshots)
        assert replayed.state == monitor.state

        # The last snapshot renders as valid exposition text.
        families = parse_prometheus(render_prometheus(snapshots[-1]["metrics"]))
        assert "repro_serve_events_rating_total" in families
        live_families = parse_prometheus(render_prometheus(service.metrics))
        assert set(live_families) == set(families)

        # The traced spans aggregate into a non-empty hot-path profile.
        stats = profile_spans(service.observability.tracer.events())
        assert stats, "traced service produced no profiled phases"
        assert any(s.name == "serve.watermark" for s in stats)

    print()
    print(
        f"telemetry-smoke OK: {counts['telemetry']} snapshots, "
        f"{counts['health']} health events, verdict "
        f"{' -> '.join([OK, DEGRADED, OK])}, "
        f"{len(families)} exposition families"
    )
    print()
    print(render_top(stats, top=5, title="telemetry-smoke hot phases"))


def main() -> int:
    smoke_batch_trace()
    smoke_telemetry_pipeline()
    return 0


if __name__ == "__main__":
    sys.exit(main())
