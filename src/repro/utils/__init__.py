"""Shared utilities: seeded RNG streams and argument validation."""

from repro.utils.rng import RngStream, spawn_rng
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RngStream",
    "spawn_rng",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
