"""Shared utilities: seeded RNG streams, argument validation, deprecation."""

from repro.utils.deprecation import deprecated_alias, deprecated_param
from repro.utils.rng import RngStream, spawn_rng
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RngStream",
    "spawn_rng",
    "deprecated_alias",
    "deprecated_param",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
