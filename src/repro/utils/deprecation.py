"""Deprecation shims for evolving keyword APIs without breaking callers.

The :mod:`repro.api` facade froze a set of keyword names; earlier example
scripts and notebooks used looser spellings (``cycles``, ``policy``, ...).
These decorators keep the old spellings working for one release while
steering callers — loudly, via :class:`DeprecationWarning` — to the new
ones.

* :func:`deprecated_alias` maps old keyword names onto their replacements
  and forwards the value;
* :func:`deprecated_param` accepts a keyword that no longer does anything,
  warns, and drops it.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, TypeVar

__all__ = ["deprecated_alias", "deprecated_param"]

F = TypeVar("F", bound=Callable[..., Any])


def deprecated_alias(**aliases: str) -> Callable[[F], F]:
    """Accept old keyword names as deprecated aliases of new ones.

    ``@deprecated_alias(old="new")`` makes ``fn(old=x)`` behave as
    ``fn(new=x)`` after emitting a :class:`DeprecationWarning`.  Passing
    both the old and the new spelling in one call is ambiguous and raises
    :class:`TypeError`.  The mapping is recorded on the wrapper as
    ``__deprecated_aliases__`` so tests and docs can introspect it.
    """
    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            for old, new in aliases.items():
                if old not in kwargs:
                    continue
                if new in kwargs:
                    raise TypeError(
                        f"{func.__name__}() got both {new!r} and its "
                        f"deprecated alias {old!r}"
                    )
                warnings.warn(
                    f"{func.__name__}() keyword {old!r} is deprecated; "
                    f"use {new!r} instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                kwargs[new] = kwargs.pop(old)
            return func(*args, **kwargs)

        wrapper.__deprecated_aliases__ = dict(aliases)  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


def deprecated_param(name: str, *, reason: str) -> Callable[[F], F]:
    """Accept-and-ignore a keyword that no longer has any effect.

    ``@deprecated_param("progress", reason="...")`` lets old call sites
    keep passing ``progress=...`` — the value is dropped after a
    :class:`DeprecationWarning` explaining *why* via ``reason``.  Ignored
    names are recorded on the wrapper as ``__deprecated_params__``.
    """
    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if name in kwargs:
                kwargs.pop(name)
                warnings.warn(
                    f"{func.__name__}() keyword {name!r} is deprecated and "
                    f"ignored: {reason}",
                    DeprecationWarning,
                    stacklevel=2,
                )
            return func(*args, **kwargs)

        recorded = dict(getattr(func, "__deprecated_params__", {}))
        recorded[name] = reason
        wrapper.__deprecated_params__ = recorded  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
