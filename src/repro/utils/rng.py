"""Deterministic random-number streams.

Every stochastic component of the simulator draws from a
:class:`numpy.random.Generator`.  Experiments derive independent child
streams from a root seed via :func:`spawn_rng` so that

* a given ``(experiment, run)`` pair is exactly reproducible, and
* adding a new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["RngStream", "spawn_rng"]

#: Alias used throughout the package for readability in signatures.
RngStream = np.random.Generator


def spawn_rng(seed: int | None, *key: Iterable[int] | int) -> RngStream:
    """Return a generator keyed by ``seed`` plus an arbitrary integer key path.

    Parameters
    ----------
    seed:
        Root seed.  ``None`` yields OS entropy (non-reproducible runs).
    *key:
        Zero or more integers identifying the consumer, e.g.
        ``spawn_rng(42, experiment_id, run_index)``.  Distinct key paths
        yield statistically independent streams (``SeedSequence`` spawning).

    Examples
    --------
    >>> a = spawn_rng(7, 1, 0)
    >>> b = spawn_rng(7, 1, 0)
    >>> float(a.random()) == float(b.random())
    True
    >>> c = spawn_rng(7, 1, 1)
    >>> float(spawn_rng(7, 1, 0).random()) != float(c.random())
    True
    """
    if seed is None:
        return np.random.default_rng()
    flat: list[int] = [int(seed)]
    for part in key:
        if isinstance(part, (list, tuple)):
            flat.extend(int(p) for p in part)
        else:
            flat.append(int(part))
    return np.random.default_rng(np.random.SeedSequence(flat))
