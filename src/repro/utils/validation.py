"""Lightweight argument validation helpers.

The simulator is configuration-heavy; these helpers turn silent
mis-configuration (a probability of 1.5, a negative node count) into
immediate ``ValueError``s with the offending name in the message.
"""

from __future__ import annotations

import math

__all__ = [
    "check_probability",
    "check_fraction",
    "check_positive",
    "check_non_negative",
]


def _check_finite(name: str, value: float) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


def check_probability(name: str, value: float) -> float:
    """Validate ``value`` lies in the closed interval [0, 1]."""
    _check_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_fraction(name: str, value: float) -> float:
    """Validate ``value`` lies in the half-open interval (0, 1]."""
    _check_finite(name, value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must be in (0, 1], got {value!r}")
    return float(value)


def check_positive(name: str, value: float) -> float:
    """Validate ``value`` is strictly positive."""
    _check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Validate ``value`` is zero or positive."""
    _check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return float(value)
