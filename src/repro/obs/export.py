"""Metrics exposition and the JSONL telemetry time series.

Two export surfaces over one :class:`~repro.obs.registry.MetricsRegistry`:

* **Prometheus text exposition** — :func:`render_prometheus` renders
  counters, gauges and histograms (cumulative ``_bucket{le=...}`` rows
  plus ``_sum``/``_count``) in the text format 0.0.4 any Prometheus
  scraper understands.  It accepts either a live registry or a snapshot
  dict produced by :meth:`MetricsRegistry.as_dict` — snapshots carry
  their bucket layout, so a JSONL time series re-renders identically.
  :func:`parse_prometheus` is the matching round-trip parser used by the
  schema tests and the CLI's self-validation;
* **JSONL time series** — a :class:`TelemetrySink` appends one
  ``{"type": "telemetry", ...}`` registry snapshot per serve watermark
  (subsampled with ``every``), giving a replayable operational record
  that :class:`~repro.obs.health.HealthMonitor` and ``repro obs health``
  evaluate after (or during) the run.  Health-transition events share
  the same file, so one artifact tells the whole operational story.

Both are zero-dependency like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Mapping

from repro.obs.registry import MetricsRegistry, bound_label

__all__ = [
    "prometheus_name",
    "render_prometheus",
    "parse_prometheus",
    "PrometheusParseError",
    "TelemetrySink",
    "read_telemetry",
]

#: The exposition content type, for anything that serves it over a wire.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)


class PrometheusParseError(ValueError):
    """Exposition text that does not parse back into samples."""


def prometheus_name(name: str, *, namespace: str = "repro") -> str:
    """Registry dotted path → legal Prometheus metric name.

    ``serve.query.latency`` → ``repro_serve_query_latency``.  Any
    character outside ``[a-zA-Z0-9_:]`` becomes an underscore; a leading
    digit (impossible for our dotted names, cheap to guard) is prefixed.
    """
    flat = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{namespace}_{flat}" if namespace else flat
    if not _NAME_OK.match(full):
        full = f"_{full}"
    return full


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _snapshot(source: MetricsRegistry | Mapping[str, Any]) -> Mapping[str, Any]:
    if isinstance(source, MetricsRegistry):
        return source.as_dict()
    return source


def render_prometheus(
    source: MetricsRegistry | Mapping[str, Any], *, namespace: str = "repro"
) -> str:
    """Render a registry (or an ``as_dict`` snapshot) as exposition text.

    Counters render with the conventional ``_total`` suffix; histograms
    render cumulative ``_bucket`` rows (``le`` ending at ``+Inf``) plus
    ``_sum`` and ``_count``.  Families come out name-sorted so the text
    is deterministic for a given snapshot.
    """
    snapshot = _snapshot(source)
    lines: list[str] = []
    for name in sorted(snapshot):
        row = snapshot[name]
        kind = row["kind"]
        base = prometheus_name(name, namespace=namespace)
        if kind == "counter":
            # Conventional _total suffix, without doubling it for metrics
            # already named *.total (e.g. serve.events.total).
            family = base if base.endswith("_total") else f"{base}_total"
            lines.append(f"# HELP {family} {name}")
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{family} {_format_value(row['value'])}")
        elif kind == "gauge":
            lines.append(f"# HELP {base} {name}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_format_value(row['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {base} {name}")
            lines.append(f"# TYPE {base} histogram")
            for le, cumulative in row["buckets"]:
                label = le if isinstance(le, str) else bound_label(float(le))
                lines.append(f'{base}_bucket{{le="{label}"}} {int(cumulative)}')
            lines.append(f"{base}_sum {_format_value(row['sum'])}")
            lines.append(f"{base}_count {int(row['count'])}")
        else:
            raise ValueError(f"metric {name!r} has unknown kind {kind!r}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_labels(text: str | None) -> tuple[tuple[str, str], ...]:
    if not text:
        return ()
    labels = []
    for part in filter(None, (p.strip() for p in text.split(","))):
        key, sep, value = part.partition("=")
        if not sep or not value.startswith('"') or not value.endswith('"'):
            raise PrometheusParseError(f"malformed label pair {part!r}")
        labels.append((key.strip(), value[1:-1]))
    return tuple(labels)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise PrometheusParseError(f"unparseable sample value {text!r}") from None


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Parse exposition text back into families.

    Returns ``{family_name: {"type": str, "samples": [(name, labels,
    value), ...]}}`` where ``labels`` is a tuple of ``(key, value)``
    pairs.  ``# TYPE`` comments declare families; sample lines must
    belong to a declared family (matching the renderer's output — this
    is a round-trip validator, not a general scraper).
    """
    families: dict[str, dict[str, Any]] = {}
    current: str | None = None
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise PrometheusParseError(f"line {line_number}: bad TYPE comment")
            _, _, family, family_type = parts
            if family_type not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise PrometheusParseError(
                    f"line {line_number}: unknown family type {family_type!r}"
                )
            if family in families:
                raise PrometheusParseError(
                    f"line {line_number}: duplicate TYPE for {family!r}"
                )
            families[family] = {"type": family_type, "samples": []}
            current = family
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise PrometheusParseError(f"line {line_number}: unparseable sample {line!r}")
        name = match.group("name")
        family = current
        if family is None or not name.startswith(family):
            # A sample outside its declared family — find the owner.
            owners = [f for f in families if name.startswith(f)]
            if not owners:
                raise PrometheusParseError(
                    f"line {line_number}: sample {name!r} precedes its TYPE"
                )
            family = max(owners, key=len)
        suffix = name[len(family):]
        if families[family]["type"] == "histogram":
            if suffix not in ("_bucket", "_sum", "_count"):
                raise PrometheusParseError(
                    f"line {line_number}: bad histogram sample suffix {suffix!r}"
                )
        elif suffix:
            raise PrometheusParseError(
                f"line {line_number}: unexpected sample suffix {suffix!r}"
            )
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        families[family]["samples"].append((name, labels, value))
    _check_histogram_families(families)
    return families


def _check_histogram_families(families: dict[str, dict[str, Any]]) -> None:
    """Structural validation the format itself mandates: cumulative,
    monotone buckets ending at ``+Inf`` with count equal to ``_count``."""
    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        buckets = [
            (dict(labels).get("le"), value)
            for name, labels, value in data["samples"]
            if name == f"{family}_bucket"
        ]
        counts = [v for name, _, v in data["samples"] if name == f"{family}_count"]
        if not buckets or len(counts) != 1:
            raise PrometheusParseError(
                f"histogram {family!r} is missing bucket or count samples"
            )
        if buckets[-1][0] != "+Inf":
            raise PrometheusParseError(
                f"histogram {family!r} buckets do not end at le=\"+Inf\""
            )
        bounds = [_parse_value(le) for le, _ in buckets]
        values = [v for _, v in buckets]
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise PrometheusParseError(
                f"histogram {family!r} bucket bounds are not increasing"
            )
        if any(v2 < v1 for v1, v2 in zip(values, values[1:])):
            raise PrometheusParseError(
                f"histogram {family!r} bucket counts are not cumulative"
            )
        if values[-1] != counts[0]:
            raise PrometheusParseError(
                f"histogram {family!r} +Inf bucket disagrees with _count"
            )


class TelemetrySink:
    """Appends registry snapshots (and health events) to a JSONL file.

    One line per emission: ``{"type": "telemetry", "interval": k,
    "events_applied": n, "metrics": {...}}``, schema-validated by
    :func:`repro.obs.schema.validate_event`.  ``every`` subsamples
    watermarks (emit when ``interval % every == 0``); :meth:`append`
    writes any extra pre-shaped event (health transitions) to the same
    stream.  The file handle opens lazily on first write and appends, so
    a resumed service extends the same series.
    """

    def __init__(self, path: Any, *, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.path = Path(path)
        self.every = int(every)
        self.n_written = 0
        self._handle = None

    def _write(self, event: Mapping[str, Any]) -> None:
        from repro.obs.schema import _sanitize

        if self._handle is None:
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(_sanitize(dict(event)), separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()
        self.n_written += 1

    def emit(
        self,
        registry: MetricsRegistry | Mapping[str, Any],
        *,
        interval: int,
        events_applied: int = 0,
    ) -> dict[str, Any] | None:
        """Append one snapshot when ``interval`` is due; returns the
        written event (or ``None`` when subsampled away)."""
        if interval % self.every != 0:
            return None
        event = {
            "type": "telemetry",
            "interval": int(interval),
            "events_applied": int(events_applied),
            "metrics": dict(_snapshot(registry)),
        }
        self._write(event)
        return event

    def append(self, event: Mapping[str, Any]) -> None:
        """Append a pre-shaped JSONL event (e.g. a health transition)."""
        self._write(event)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_telemetry(path: Any) -> list[dict[str, Any]]:
    """Read the telemetry snapshots of a JSONL file (other event types —
    health transitions, spans — are passed over), schema-validating
    every line."""
    from repro.obs.schema import read_jsonl, validate_event

    out = []
    for event in read_jsonl(path):
        if validate_event(event) == "telemetry":
            out.append(event)
    return out
