"""JSONL event schema and validation for exported observability data.

One trace file holds three record types, discriminated by ``"type"``:

* ``span``     — a finished tracer span (name, ids, timing, attributes);
* ``audit``    — one detector audit event (see :mod:`repro.obs.audit`);
* ``metrics``  — a single snapshot of the metrics registry;
* ``telemetry``— one watermark-aligned registry snapshot of the streaming
  service's JSONL time series (see :mod:`repro.obs.export`);
* ``health``   — an SLO health-state transition (see
  :mod:`repro.obs.health`).

Validation is hand-rolled (no ``jsonschema`` dependency): each schema is
a field → type-spec map checked by :func:`validate_event`.  The CI
``obs-smoke`` step and the schema tests run every exported line through
:func:`validate_jsonl`, so a drifting exporter fails loudly instead of
producing unreadable traces.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.obs.audit import BEHAVIOR_NAMES, DECISIONS, THRESHOLD_NAMES

__all__ = [
    "SchemaError",
    "SPAN_SCHEMA",
    "AUDIT_SCHEMA",
    "METRICS_SCHEMA",
    "TELEMETRY_SCHEMA",
    "HEALTH_SCHEMA",
    "validate_event",
    "to_jsonl",
    "read_jsonl",
    "validate_jsonl",
]

_NUMBER = (int, float)

#: Health states a transition event may name (kept in sync with
#: :mod:`repro.obs.health`, which re-checks at import via its tests).
_HEALTH_STATES = ("ok", "degraded", "critical")


class SchemaError(ValueError):
    """An exported event does not match its declared schema."""


#: field name → (types, required).  ``None`` in the types tuple means the
#: JSON null is accepted.
SPAN_SCHEMA: dict[str, tuple[tuple[type, ...], bool]] = {
    "type": ((str,), True),
    "name": ((str,), True),
    "span_id": ((int,), True),
    "parent_id": ((int, type(None)), True),
    "depth": ((int,), True),
    "start": (_NUMBER, True),
    "duration": (_NUMBER, True),
    "attributes": ((dict,), True),
}

AUDIT_SCHEMA: dict[str, tuple[tuple[type, ...], bool]] = {
    "type": ((str,), True),
    "interval": ((int,), True),
    "rater": ((int,), True),
    "ratee": ((int,), True),
    "decision": ((str,), True),
    "behaviors": ((list,), True),
    "fired": ((list,), True),
    "closeness": (_NUMBER, True),
    "similarity": (_NUMBER, True),
    "weight": (_NUMBER, True),
    "pos_count": (_NUMBER, True),
    "neg_count": (_NUMBER, True),
    "thresholds": ((dict,), True),
}

METRICS_SCHEMA: dict[str, tuple[tuple[type, ...], bool]] = {
    "type": ((str,), True),
    "metrics": ((dict,), True),
}

TELEMETRY_SCHEMA: dict[str, tuple[tuple[type, ...], bool]] = {
    "type": ((str,), True),
    "interval": ((int,), True),
    "events_applied": ((int,), True),
    "metrics": ((dict,), True),
}

HEALTH_SCHEMA: dict[str, tuple[tuple[type, ...], bool]] = {
    "type": ((str,), True),
    "scope": ((str,), True),
    "rule": ((str,), True),
    "from": ((str,), True),
    "to": ((str,), True),
    "interval": ((int,), True),
    "value": ((int, float, type(None)), True),
    "threshold": ((int, float, type(None)), True),
    "reason": ((str,), True),
}

_SCHEMAS = {
    "span": SPAN_SCHEMA,
    "audit": AUDIT_SCHEMA,
    "metrics": METRICS_SCHEMA,
    "telemetry": TELEMETRY_SCHEMA,
    "health": HEALTH_SCHEMA,
}


def _check_fields(event: dict[str, Any], schema: dict) -> None:
    for field_name, (types, required) in schema.items():
        if field_name not in event:
            if required:
                raise SchemaError(f"missing field {field_name!r}: {event!r}")
            continue
        value = event[field_name]
        # bool is an int subclass; reject it where a number is expected.
        if isinstance(value, bool) and bool not in types:
            raise SchemaError(f"field {field_name!r} must not be boolean")
        if not isinstance(value, types):
            raise SchemaError(
                f"field {field_name!r} has type {type(value).__name__}, "
                f"expected one of {[t.__name__ for t in types]}"
            )
    unknown = set(event) - set(schema)
    if unknown:
        raise SchemaError(f"unknown field(s) {sorted(unknown)} in event {event!r}")


def validate_event(event: dict[str, Any]) -> str:
    """Validate one event dict; returns its record type.

    Raises :class:`SchemaError` on a missing/extra field, a type
    mismatch, or an out-of-vocabulary threshold/behaviour/decision name.
    """
    if not isinstance(event, dict):
        raise SchemaError(f"event must be an object, got {type(event).__name__}")
    kind = event.get("type")
    if kind not in _SCHEMAS:
        raise SchemaError(f"unknown event type {kind!r}")
    _check_fields(event, _SCHEMAS[kind])
    if kind == "audit":
        if event["decision"] not in DECISIONS:
            raise SchemaError(f"unknown decision {event['decision']!r}")
        bad = set(event["behaviors"]) - set(BEHAVIOR_NAMES)
        if bad:
            raise SchemaError(f"unknown behaviour class(es) {sorted(bad)}")
        bad = set(event["fired"]) - set(THRESHOLD_NAMES)
        if bad:
            raise SchemaError(f"unknown threshold name(s) {sorted(bad)}")
        if event["decision"] == "damped" and not event["behaviors"]:
            raise SchemaError("damped event must name at least one behaviour")
    elif kind == "span":
        if event["duration"] < 0:
            raise SchemaError("span duration must be non-negative")
    elif kind == "telemetry":
        if event["interval"] < 0:
            raise SchemaError("telemetry interval must be non-negative")
    elif kind == "health":
        if event["scope"] not in ("rule", "overall"):
            raise SchemaError(f"unknown health scope {event['scope']!r}")
        for field_name in ("from", "to"):
            if event[field_name] not in _HEALTH_STATES:
                raise SchemaError(
                    f"unknown health state {event[field_name]!r} in {field_name!r}"
                )
    return kind


def _sanitize(value: Any) -> Any:
    """JSON has no NaN/Infinity; encode them as null at export time."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def to_jsonl(events: list[dict[str, Any]] | tuple[dict[str, Any], ...], path) -> int:
    """Write events one-per-line; returns the number of lines written.

    ``start`` of synthetic (pre-measured) spans is NaN in memory and
    exported as null — :func:`read_jsonl` maps it back.
    """
    out = Path(path)
    with out.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(_sanitize(event), separators=(",", ":")))
            handle.write("\n")
    return len(events)


def read_jsonl(path) -> list[dict[str, Any]]:
    """Read a JSONL trace back into event dicts (null start → NaN)."""
    events: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"line {line_number}: invalid JSON ({exc})") from None
            if isinstance(event, dict) and "start" in event and event["start"] is None:
                event["start"] = float("nan")
            events.append(event)
    return events


def validate_jsonl(path) -> dict[str, int]:
    """Validate every line of a trace file; returns counts by record type.

    Raises :class:`SchemaError` naming the first offending line.
    """
    counts: dict[str, int] = {}
    for index, event in enumerate(read_jsonl(path), start=1):
        try:
            kind = validate_event(event)
        except SchemaError as exc:
            raise SchemaError(f"line {index}: {exc}") from None
        counts[kind] = counts.get(kind, 0) + 1
    return counts
