"""Hot-path phase profiler over the tracer's span events.

The tracer records every instrumented phase (``sim.cycle``,
``engine.candidate_build``, ``detector.analyze``,
``reputation.inner_update``, ``serve.ingest``, ...) as a flat list of
span dicts carrying parent links.  :func:`profile_spans` folds that list
into one row per phase name:

* **calls** — completed spans with the name;
* **cumulative** — summed wall-clock, children included (a parent phase
  accumulates everything nested under it);
* **self** — cumulative minus the time attributed to *direct* child
  spans, i.e. where the clock actually went — the column the top-N
  hot-path table sorts by.

Synthetic spans recorded through :meth:`Tracer.record` (pre-measured
accumulations like the engine's cache patching) participate exactly like
real ones: they carry a parent id, so their time is subtracted from the
enclosing phase's self time.  A span whose parent never completed (e.g.
the run was interrupted mid-cycle) simply attributes to no parent.

:func:`render_top` formats the table for ``repro obs top`` and the
smoke scripts; :func:`profile_file` reads an exported JSONL trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

__all__ = ["PhaseStat", "profile_spans", "render_top", "profile_file"]


@dataclass(frozen=True)
class PhaseStat:
    """Aggregated timing for one phase (span name)."""

    name: str
    calls: int
    cumulative_s: float
    self_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.cumulative_s / self.calls if self.calls else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "cumulative_s": self.cumulative_s,
            "self_s": self.self_s,
            "mean_s": self.mean_s,
            "max_s": self.max_s,
        }


def profile_spans(span_events: Iterable[dict[str, Any]]) -> list[PhaseStat]:
    """Fold span events into per-phase self/cumulative stats, sorted by
    self time descending (the hot-path ordering)."""
    events = [e for e in span_events if e.get("type", "span") == "span"]
    child_time: dict[int, float] = {}
    for event in events:
        parent = event.get("parent_id")
        if parent is not None:
            child_time[parent] = child_time.get(parent, 0.0) + event["duration"]
    stats: dict[str, dict[str, float]] = {}
    for event in events:
        row = stats.setdefault(
            event["name"], {"calls": 0, "cum": 0.0, "self": 0.0, "max": 0.0}
        )
        duration = float(event["duration"])
        row["calls"] += 1
        row["cum"] += duration
        row["self"] += max(duration - child_time.get(event["span_id"], 0.0), 0.0)
        row["max"] = max(row["max"], duration)
    table = [
        PhaseStat(
            name=name,
            calls=int(row["calls"]),
            cumulative_s=row["cum"],
            self_s=row["self"],
            max_s=row["max"],
        )
        for name, row in stats.items()
    ]
    table.sort(key=lambda s: s.self_s, reverse=True)
    return table


def render_top(
    stats: list[PhaseStat], *, top: int = 10, title: str = "hot phases"
) -> str:
    """The top-N table: self-time-ordered phases with call counts."""
    if not stats:
        return f"{title}\n  (no spans recorded — was tracing enabled?)"
    rows = stats[:top]
    total_self = sum(s.self_s for s in stats) or 1.0
    width = max(len(s.name) for s in rows)
    lines = [
        title,
        f"  {'phase'.ljust(width)}  {'calls':>7}  {'self':>10}  "
        f"{'self%':>6}  {'cum':>10}  {'mean':>10}  {'max':>10}",
    ]
    for s in rows:
        lines.append(
            f"  {s.name.ljust(width)}  {s.calls:>7d}  "
            f"{s.self_s * 1e3:>8.2f}ms  {s.self_s / total_self:>6.1%}  "
            f"{s.cumulative_s * 1e3:>8.2f}ms  {s.mean_s * 1e6:>8.1f}us  "
            f"{s.max_s * 1e3:>8.2f}ms"
        )
    hidden = len(stats) - len(rows)
    if hidden > 0:
        hidden_self = sum(s.self_s for s in stats[top:])
        lines.append(
            f"  ... {hidden} more phases ({hidden_self * 1e3:.2f}ms self)"
        )
    return "\n".join(lines)


def profile_file(path, *, top: int = 10) -> tuple[list[PhaseStat], str]:
    """Profile an exported JSONL trace; returns (stats, rendered table).

    Every line is schema-validated on the way in, so a drifting exporter
    fails here the same way it fails ``repro obs report``.
    """
    from repro.obs.schema import read_jsonl, validate_event

    spans = []
    for event in read_jsonl(path):
        if validate_event(event) == "span":
            spans.append(event)
    stats = profile_spans(spans)
    return stats, render_top(stats, top=top, title=f"hot phases: {path}")
