"""Human-readable report over a run's observability data.

:func:`render_report` works on a live :class:`~repro.obs.Observability`
bundle (the ``repro simulate --trace`` path); :func:`render_file_report`
re-reads an exported JSONL trace (the ``repro obs <file>`` path).  Both
produce the same three sections:

* **phases** — per-span-name count / total / mean / max wall-clock, so
  the engine's candidate-build / selection / rating-flush / cache-patch
  split is visible at a glance;
* **metrics** — the registry's counters, gauges and histogram summaries;
* **detector audit** — damped/accepted totals, per-behaviour counts and
  the heaviest-damped pairs.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["render_report", "render_file_report", "phase_table"]


def phase_table(span_events: Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Aggregate span events by name → count/total/mean/max rows, sorted
    by total descending."""
    stats: dict[str, dict[str, float]] = {}
    for event in span_events:
        row = stats.setdefault(
            event["name"], {"count": 0, "total": 0.0, "max": 0.0}
        )
        row["count"] += 1
        row["total"] += event["duration"]
        row["max"] = max(row["max"], event["duration"])
    table = [
        {
            "name": name,
            "count": int(row["count"]),
            "total_s": row["total"],
            "mean_s": row["total"] / row["count"],
            "max_s": row["max"],
        }
        for name, row in stats.items()
    ]
    table.sort(key=lambda r: r["total_s"], reverse=True)
    return table


def _phase_lines(table: list[dict[str, Any]]) -> list[str]:
    if not table:
        return ["  (no spans recorded — was tracing enabled?)"]
    width = max(len(r["name"]) for r in table)
    lines = [
        f"  {'phase'.ljust(width)}  {'count':>7}  {'total':>10}  "
        f"{'mean':>10}  {'max':>10}"
    ]
    for row in table:
        lines.append(
            f"  {row['name'].ljust(width)}  {row['count']:>7d}  "
            f"{row['total_s'] * 1e3:>8.2f}ms  {row['mean_s'] * 1e6:>8.1f}us  "
            f"{row['max_s'] * 1e3:>8.2f}ms"
        )
    return lines


def _metrics_lines(metrics: dict[str, dict[str, float]]) -> list[str]:
    if not metrics:
        return ["  (no metrics recorded)"]
    width = max(len(name) for name in metrics)
    lines = []
    for name in sorted(metrics):
        row = metrics[name]
        if row["kind"] == "histogram":
            detail = (
                f"count={int(row['count'])} mean={row['mean']:.6g} "
                f"p50={row['p50']:.6g} p90={row['p90']:.6g} p99={row['p99']:.6g}"
            )
        else:
            detail = f"{row['value']:.6g}"
        lines.append(f"  {name.ljust(width)}  [{row['kind']}] {detail}")
    return lines


def _audit_lines(audit_events: list[dict[str, Any]]) -> list[str]:
    if not audit_events:
        return ["  (no detector audit events — no pair tripped a threshold)"]
    damped = [e for e in audit_events if e["decision"] == "damped"]
    accepted = len(audit_events) - len(damped)
    by_behavior: dict[str, int] = {}
    for event in damped:
        for name in event["behaviors"]:
            by_behavior[name] = by_behavior.get(name, 0) + 1
    lines = [
        f"  pairs examined: {len(audit_events)}  "
        f"damped: {len(damped)}  accepted: {accepted}",
        "  damped by behaviour: "
        + (
            ", ".join(f"{k}={by_behavior[k]}" for k in sorted(by_behavior))
            or "(none)"
        ),
    ]
    heaviest = sorted(damped, key=lambda e: e["weight"])[:5]
    for event in heaviest:
        lines.append(
            f"  {event['rater']:>4d} -> {event['ratee']:>4d}  "
            f"interval={event['interval']:<3d} "
            f"w={event['weight']:.4f}  "
            f"{'+'.join(event['behaviors'])}  "
            f"fired={','.join(event['fired'])}  "
            f"Oc={event['closeness']:.3f} Os={event['similarity']:.3f}"
        )
    return lines


def _render(
    span_events: list[dict[str, Any]],
    metrics: dict[str, dict[str, float]],
    audit_events: list[dict[str, Any]],
    title: str,
) -> str:
    lines = [title, "", "== phases =="]
    lines += _phase_lines(phase_table(span_events))
    lines += ["", "== metrics =="]
    lines += _metrics_lines(metrics)
    lines += ["", "== detector audit =="]
    lines += _audit_lines(audit_events)
    return "\n".join(lines)


def render_report(obs: "Observability", title: str = "observability report") -> str:
    """Render the three-section report from a live bundle."""
    return _render(
        list(obs.tracer.events()),
        obs.metrics.as_dict(),
        [e.to_dict() for e in obs.audit],
        title,
    )


def render_file_report(path) -> str:
    """Validate an exported JSONL trace and render the same report."""
    from repro.obs.schema import read_jsonl, validate_event

    spans: list[dict[str, Any]] = []
    audit: list[dict[str, Any]] = []
    metrics: dict[str, dict[str, float]] = {}
    for event in read_jsonl(path):
        kind = validate_event(event)
        if kind == "span":
            spans.append(event)
        elif kind == "audit":
            audit.append(event)
        else:
            metrics = event["metrics"]
    return _render(spans, metrics, audit, f"observability report: {path}")
