"""Declarative SLO rules and the OK/DEGRADED/CRITICAL health monitor.

A :class:`SloRule` names one statistic of one registry metric (a gauge's
value, a histogram percentile, or a counter's delta — optionally divided
by another counter's delta for a rate) and bounds it with a ceiling
(``op="<="``) or a floor (``op=">="``).  The :class:`HealthMonitor`
evaluates every rule against successive registry snapshots — one per
serve watermark — with **M-of-N hysteresis**: a rule enters breach only
when at least ``m`` of its last ``n`` observations violated the bound,
and clears symmetrically, so a single noisy interval neither degrades
nor prematurely heals the verdict.

The overall state is the worst breached severity: ``CRITICAL`` if any
``severity="critical"`` rule is in breach, ``DEGRADED`` if any rule at
all is, ``OK`` otherwise.  Every rule-level and overall state change is
recorded as a structured ``{"type": "health", ...}`` transition event
(schema-validated alongside spans/audit/telemetry) and — when the
monitor carries a :class:`~repro.obs.export.TelemetrySink` — appended to
the same JSONL stream as the snapshots it judged.

A metric a rule names but the snapshot lacks is *no data*, not a breach:
rules for optional subsystems (the distributed manager ladder, the
sparse coefficient cache) sit dormant on runs without those layers.
:func:`default_service_rules` bundles the streaming service's SLOs —
query p99, sustained events/sec, queue depth, shed rate, rating-flood
share, degradation-ladder rate and sparse-cache rebuild drift.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.registry import MetricsRegistry

__all__ = [
    "OK",
    "DEGRADED",
    "CRITICAL",
    "SloRule",
    "RuleStatus",
    "HealthReport",
    "HealthMonitor",
    "default_service_rules",
]

#: Health states, worst-last.
OK = "ok"
DEGRADED = "degraded"
CRITICAL = "critical"
HEALTH_STATES = (OK, DEGRADED, CRITICAL)

#: Statistics a rule may read from a histogram snapshot row.
_HISTOGRAM_STATS = ("mean", "min", "max", "p50", "p90", "p99")
_OPS = ("<=", ">=")
_SEVERITIES = (DEGRADED, CRITICAL)


@dataclass(frozen=True)
class SloRule:
    """One bounded statistic: ``stat(metric) op threshold``, M-of-N.

    ``stat="value"`` reads a counter/gauge value; ``stat="delta"`` reads
    a counter's increase since the previous observation (``None`` — no
    data — on the first one), divided by ``denominator``'s delta when
    one is named (a zero-traffic window scores 0.0; a nonzero numerator
    over a zero denominator scores infinite, which any ceiling catches).
    Histogram rules use one of ``mean/min/max/p50/p90/p99``.
    """

    name: str
    metric: str
    stat: str
    op: str
    threshold: float
    severity: str = DEGRADED
    m: int = 1
    n: int = 1
    denominator: str | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"rule {self.name!r}: op must be one of {_OPS}")
        if self.severity not in _SEVERITIES:
            raise ValueError(
                f"rule {self.name!r}: severity must be one of {_SEVERITIES}"
            )
        if not 1 <= self.m <= self.n:
            raise ValueError(
                f"rule {self.name!r}: need 1 <= m <= n, got m={self.m} n={self.n}"
            )
        if self.stat not in ("value", "delta", *_HISTOGRAM_STATS):
            raise ValueError(f"rule {self.name!r}: unknown stat {self.stat!r}")
        if self.denominator is not None and self.stat != "delta":
            raise ValueError(
                f"rule {self.name!r}: denominator requires stat='delta'"
            )

    def breached_by(self, value: float) -> bool:
        return value > self.threshold if self.op == "<=" else value < self.threshold


@dataclass
class RuleStatus:
    """Mutable per-rule evaluation state inside the monitor."""

    rule: SloRule
    in_breach: bool = False
    last_value: float | None = None
    window: deque = field(default_factory=deque)
    _prev_raw: float | None = None
    _prev_denominator_raw: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.rule.name,
            "metric": self.rule.metric,
            "stat": self.rule.stat,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "severity": self.rule.severity,
            "m": self.rule.m,
            "n": self.rule.n,
            "state": self.rule.severity if self.in_breach else OK,
            "last_value": self.last_value,
            "breaches_in_window": int(sum(self.window)),
        }


@dataclass(frozen=True)
class HealthReport:
    """One observation's verdict: overall state plus per-rule detail."""

    state: str
    interval: int
    rules: tuple[dict[str, Any], ...]
    transitions: tuple[dict[str, Any], ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "interval": self.interval,
            "rules": list(self.rules),
            "transitions": list(self.transitions),
        }


class HealthMonitor:
    """Evaluates SLO rules over successive metrics snapshots.

    ``sink`` (a :class:`~repro.obs.export.TelemetrySink`) receives every
    transition event as it happens; transitions also accumulate on
    :attr:`transitions` for the end-of-run report either way.
    """

    def __init__(self, rules: Iterable[SloRule], *, sink=None) -> None:
        rule_list = list(rules)
        names = [r.name for r in rule_list]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self._statuses = [
            RuleStatus(rule=r, window=deque(maxlen=r.n)) for r in rule_list
        ]
        self._sink = sink
        self._state = OK
        self._intervals_observed = 0
        self.transitions: list[dict[str, Any]] = []

    @property
    def state(self) -> str:
        return self._state

    @property
    def rules(self) -> tuple[SloRule, ...]:
        return tuple(s.rule for s in self._statuses)

    @property
    def intervals_observed(self) -> int:
        return self._intervals_observed

    # -- evaluation ----------------------------------------------------------

    @staticmethod
    def _metric_value(
        snapshot: Mapping[str, Any], metric: str, stat: str
    ) -> float | None:
        row = snapshot.get(metric)
        if row is None:
            return None
        kind = row.get("kind")
        if kind == "histogram":
            if stat not in _HISTOGRAM_STATS:
                raise ValueError(
                    f"stat {stat!r} cannot be read from histogram {metric!r}"
                )
            return float(row[stat])
        if stat not in ("value", "delta"):
            raise ValueError(
                f"stat {stat!r} cannot be read from {kind} {metric!r}"
            )
        return float(row["value"])

    def _evaluate(
        self, status: RuleStatus, snapshot: Mapping[str, Any]
    ) -> float | None:
        rule = status.rule
        raw = self._metric_value(snapshot, rule.metric, rule.stat)
        if rule.stat != "delta":
            return raw
        denom_raw = (
            self._metric_value(snapshot, rule.denominator, "delta")
            if rule.denominator is not None
            else None
        )
        prev, status._prev_raw = status._prev_raw, raw
        denom_prev = status._prev_denominator_raw
        status._prev_denominator_raw = denom_raw
        if raw is None or prev is None:
            return None
        delta = raw - prev
        if rule.denominator is None:
            return delta
        if denom_raw is None or denom_prev is None:
            return None
        denom_delta = denom_raw - denom_prev
        if denom_delta <= 0.0:
            return 0.0 if delta <= 0.0 else float("inf")
        return delta / denom_delta

    def _transition(
        self,
        scope: str,
        rule: str,
        old: str,
        new: str,
        interval: int,
        value: float | None,
        threshold: float | None,
        reason: str,
    ) -> dict[str, Any]:
        event = {
            "type": "health",
            "scope": scope,
            "rule": rule,
            "from": old,
            "to": new,
            "interval": int(interval),
            "value": None if value is None else float(value),
            "threshold": None if threshold is None else float(threshold),
            "reason": reason,
        }
        self.transitions.append(event)
        if self._sink is not None:
            self._sink.append(event)
        return event

    def observe(
        self,
        source: MetricsRegistry | Mapping[str, Any],
        *,
        interval: int | None = None,
    ) -> HealthReport:
        """Evaluate every rule against one snapshot; returns the verdict.

        ``interval`` stamps transition events (defaults to the running
        observation count).
        """
        snapshot = (
            source.as_dict() if isinstance(source, MetricsRegistry) else source
        )
        if interval is None:
            interval = self._intervals_observed
        self._intervals_observed += 1
        new_transitions: list[dict[str, Any]] = []
        for status in self._statuses:
            rule = status.rule
            value = self._evaluate(status, snapshot)
            status.last_value = value
            # No data leaves the window untouched: a dormant subsystem's
            # rule neither breaches nor ages out past breaches.
            if value is None:
                continue
            status.window.append(rule.breached_by(value))
            breaches = sum(status.window)
            was = status.in_breach
            status.in_breach = breaches >= rule.m
            if status.in_breach != was:
                old = rule.severity if was else OK
                new = rule.severity if status.in_breach else OK
                comparison = "exceeded" if rule.op == "<=" else "fell below"
                reason = (
                    f"{rule.stat}({rule.metric}) {comparison} {rule.threshold:g} "
                    f"in {breaches}/{len(status.window)} recent intervals"
                    if status.in_breach
                    else f"{rule.stat}({rule.metric}) back within {rule.threshold:g}"
                )
                new_transitions.append(
                    self._transition(
                        "rule", rule.name, old, new, interval, value,
                        rule.threshold, reason,
                    )
                )
        breached = [s for s in self._statuses if s.in_breach]
        if any(s.rule.severity == CRITICAL for s in breached):
            overall = CRITICAL
        elif breached:
            overall = DEGRADED
        else:
            overall = OK
        if overall != self._state:
            names = ", ".join(sorted(s.rule.name for s in breached)) or "none"
            new_transitions.append(
                self._transition(
                    "overall", "", self._state, overall, interval, None, None,
                    f"rules in breach: {names}",
                )
            )
            self._state = overall
        return HealthReport(
            state=self._state,
            interval=interval,
            rules=tuple(s.to_dict() for s in self._statuses),
            transitions=tuple(new_transitions),
        )

    def replay(self, snapshots: Iterable[Mapping[str, Any]]) -> HealthReport:
        """Observe a whole recorded time series (``{"interval": k,
        "metrics": {...}}`` telemetry events or bare snapshot dicts);
        returns the final report."""
        report = None
        for entry in snapshots:
            if entry.get("type") == "telemetry":
                report = self.observe(
                    entry["metrics"], interval=entry.get("interval")
                )
            else:
                report = self.observe(entry)
        if report is None:
            report = HealthReport(self._state, -1, (), ())
        return report

    def report(self) -> dict[str, Any]:
        """End-of-run JSON report: state, rules, full transition log."""
        return {
            "state": self._state,
            "intervals_observed": self._intervals_observed,
            "rules": [s.to_dict() for s in self._statuses],
            "transitions": list(self.transitions),
        }


def default_service_rules(
    *,
    query_p99_ceiling: float = 0.005,
    min_events_per_sec: float = 0.0,
    queue_depth_ceiling: float = 6144,
    shed_rate_ceiling: float = 0.01,
    flood_share_ceiling: float = 0.5,
    degraded_per_interval_ceiling: float = 0.0,
    cache_drift_ceiling: float = 64,
) -> tuple[SloRule, ...]:
    """The streaming service's SLO bundle.

    ``min_events_per_sec <= 0`` omits the throughput floor (a paused or
    replay-paced stream is not an outage).  The degradation-ladder and
    sparse-cache rules read metrics that only exist on distributed /
    sparse-backend runs and stay dormant otherwise.
    """
    rules = [
        SloRule(
            name="query-p99",
            metric="serve.query.latency",
            stat="p99",
            op="<=",
            threshold=query_p99_ceiling,
            severity=DEGRADED,
            m=2,
            n=3,
        ),
        SloRule(
            name="queue-depth",
            metric="serve.queue.depth",
            stat="value",
            op="<=",
            threshold=queue_depth_ceiling,
            severity=DEGRADED,
            m=2,
            n=3,
        ),
        SloRule(
            name="shed-rate",
            metric="serve.queue.shed",
            stat="delta",
            op="<=",
            threshold=shed_rate_ceiling,
            severity=CRITICAL,
            m=2,
            n=3,
            denominator="serve.events.total",
        ),
        SloRule(
            name="flood-share",
            metric="serve.flood.top_rater_share",
            stat="value",
            op="<=",
            threshold=flood_share_ceiling,
            severity=DEGRADED,
            m=2,
            n=3,
        ),
        SloRule(
            name="degraded-ladder",
            metric="manager.degraded.total",
            stat="delta",
            op="<=",
            threshold=degraded_per_interval_ceiling,
            severity=DEGRADED,
            m=2,
            n=3,
        ),
        SloRule(
            name="cache-drift",
            metric="sparse.cache.drift",
            stat="value",
            op="<=",
            threshold=cache_drift_ceiling,
            severity=DEGRADED,
        ),
    ]
    if min_events_per_sec > 0.0:
        rules.append(
            SloRule(
                name="events-per-sec",
                metric="serve.interval.events_per_sec",
                stat="value",
                op=">=",
                threshold=min_events_per_sec,
                severity=DEGRADED,
                m=2,
                n=3,
            )
        )
    return tuple(rules)
