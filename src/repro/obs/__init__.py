"""Observability: span tracing, metrics, and the detector audit log.

The subsystem is deliberately zero-dependency and opt-in.  A run either
carries no :class:`Observability` at all (the default — instrumented
call sites fall back to the shared :data:`~repro.obs.tracer.NULL_TRACER`
and skip registry publishing entirely), or carries one bundle that every
layer publishes into:

* :class:`~repro.obs.tracer.Tracer` — nested, monotonic-clock spans over
  the engine phases (candidate-build, selection, rating-flush,
  cache-patch), the reputation update, and the fault machinery;
* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms (``engine.*``, ``detector.*``, ``manager.*``,
  ``faults.*``);
* :class:`~repro.obs.audit.DetectorAuditLog` — one structured event per
  examined rating pair, recording fired thresholds, Ωc/Ωs, behaviour
  class and the Gaussian weight applied.

Enable it through the facade::

    result = run_scenario(..., observability=True)
    print(result.observability.report())
    result.observability.export_jsonl("trace.jsonl")

or from the CLI: ``repro simulate --trace trace.jsonl`` then
``repro obs trace.jsonl``.  ``benchmarks/test_bench_obs.py`` asserts the
disabled-path overhead stays ≤5% on the engine benchmark profile.
"""

from __future__ import annotations

from repro.obs.audit import AuditEvent, DetectorAuditLog
from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    PrometheusParseError,
    TelemetrySink,
    parse_prometheus,
    prometheus_name,
    read_telemetry,
    render_prometheus,
)
from repro.obs.health import (
    CRITICAL,
    DEGRADED,
    OK,
    HealthMonitor,
    HealthReport,
    SloRule,
    default_service_rules,
)
from repro.obs.profiler import PhaseStat, profile_file, profile_spans, render_top
from repro.obs.registry import (
    QUERY_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.report import render_file_report, render_report
from repro.obs.schema import (
    SchemaError,
    read_jsonl,
    to_jsonl,
    validate_event,
    validate_jsonl,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "AuditEvent",
    "DetectorAuditLog",
    "SchemaError",
    "to_jsonl",
    "read_jsonl",
    "validate_event",
    "validate_jsonl",
    "render_report",
    "render_file_report",
    "QUERY_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "PrometheusParseError",
    "prometheus_name",
    "render_prometheus",
    "parse_prometheus",
    "TelemetrySink",
    "read_telemetry",
    "OK",
    "DEGRADED",
    "CRITICAL",
    "SloRule",
    "HealthMonitor",
    "HealthReport",
    "default_service_rules",
    "PhaseStat",
    "profile_spans",
    "profile_file",
    "render_top",
]


class Observability:
    """One run's tracer + metrics registry + detector audit log.

    ``tracing=False`` keeps the registry and audit log live but swaps the
    tracer for the shared no-op — the configuration the overhead
    benchmark measures.
    """

    def __init__(self, *, tracing: bool = True, max_audit_events: int = 100_000) -> None:
        self.tracer: Tracer | NullTracer = Tracer() if tracing else NULL_TRACER
        self.metrics = MetricsRegistry()
        self.audit = DetectorAuditLog(max_events=max_audit_events)

    @property
    def tracing_enabled(self) -> bool:
        return self.tracer.enabled

    def events(self) -> list[dict]:
        """Every exportable event: spans, audit rows, one metrics snapshot."""
        events: list[dict] = list(self.tracer.events())
        events.extend(self.audit.to_events())
        events.append({"type": "metrics", "metrics": self.metrics.as_dict()})
        return events

    def export_jsonl(self, path) -> int:
        """Write spans + audit events + a metrics snapshot as JSONL;
        returns the number of lines written."""
        return to_jsonl(self.events(), path)

    def report(self, title: str = "observability report") -> str:
        """The three-section phases/metrics/audit text report."""
        return render_report(self, title)

    def clear(self) -> None:
        self.tracer.clear()
        self.metrics.clear()
        self.audit.clear()
