"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny — no labels, no exposition format, no
locking — because its job is to let the engine, detector, manager-failover
and fault-injector paths publish named numbers that one report (or test)
can read back.  Names are dotted paths (``engine.requests.served``); the
registry namespaces nothing itself.

Histograms use fixed upper-bound buckets (Prometheus-style cumulative
counts) so percentiles cost a single pass over a short array regardless of
how many observations were recorded.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "DEFAULT_BUCKETS",
    "QUERY_LATENCY_BUCKETS",
    "bound_label",
]

#: Default histogram upper bounds (seconds-oriented, log-spaced).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Bucket layout for in-memory lookup latencies: the default
#: seconds-oriented buckets would collapse sub-100µs reads into the first
#: bin; these resolve 1µs–100ms.  Shared by the streaming service's query
#: histogram and anything else timing cache hits.
QUERY_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4,
    2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1,
)


def bound_label(bound: float) -> str:
    """Canonical string form of a bucket upper bound (`le` label value).

    ``+Inf`` follows the Prometheus exposition convention; finite bounds
    use ``repr`` so ``float(bound_label(b)) == b`` round-trips exactly.
    """
    if math.isinf(bound):
        return "+Inf" if bound > 0 else "-Inf"
    return repr(float(bound))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    ``buckets`` are strictly increasing upper bounds; observations above
    the last bound land in an implicit +inf bucket.  Percentiles are
    estimated by linear interpolation inside the covering bucket, which
    is exact to bucket resolution — plenty for profiling reports.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "_min", "_max")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect.bisect_left(self.buckets, v)] += 1
        self.count += 1
        self.sum += v
        self._min = min(self._min, v)
        self._max = max(self._max, v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def bucket_counts(self) -> tuple[tuple[float, int], ...]:
        """Cumulative Prometheus-style ``(upper_bound, count)`` pairs,
        ending with the ``+inf`` bucket (whose count equals :attr:`count`)."""
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((math.inf, self.count))
        return tuple(out)

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``0 <= q <= 100``)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        rank = q / 100.0 * self.count
        cumulative = 0
        for idx, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            prev_cumulative = cumulative
            cumulative += bucket_count
            if cumulative < rank:
                continue
            lo = self.buckets[idx - 1] if idx > 0 else min(self._min, self.buckets[0])
            hi = self.buckets[idx] if idx < len(self.buckets) else self._max
            lo = max(lo, self._min)
            hi = min(hi, self._max)
            if hi <= lo:
                return hi
            frac = (rank - prev_cumulative) / bucket_count
            return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
        return self._max


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None
    ) -> Histogram:
        """Get or create a histogram; ``buckets`` configures the upper
        bounds at first registration (default :data:`DEFAULT_BUCKETS`).

        Re-registering an existing histogram with a *different* explicit
        bucket layout is an error: the old instrument would silently keep
        its old buckets and every percentile read from then on would be
        computed against bounds the caller never asked for.  Passing
        ``None`` (or the identical layout) returns the existing one.
        """
        requested = None if buckets is None else tuple(float(b) for b in buckets)
        existing = self._metrics.get(name)
        if (
            isinstance(existing, Histogram)
            and requested is not None
            and requested != existing.buckets
        ):
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{existing.buckets}, conflicting with {requested}"
            )
        return self._get(
            name,
            Histogram,
            lambda: Histogram(name, requested if requested is not None else DEFAULT_BUCKETS),
        )

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Flat JSON-serialisable snapshot of every instrument."""
        out: dict[str, dict[str, float]] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"kind": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"kind": "gauge", "value": metric.value}
            else:
                out[name] = {
                    "kind": "histogram",
                    "count": float(metric.count),
                    "sum": metric.sum,
                    "mean": metric.mean,
                    "min": metric.min,
                    "max": metric.max,
                    "p50": metric.percentile(50.0),
                    "p90": metric.percentile(90.0),
                    "p99": metric.percentile(99.0),
                    # Bounds are stringified ("+Inf" included) so the
                    # snapshot survives JSON's lack of Infinity and the
                    # exposition renderer can work from a snapshot alone.
                    "buckets": [
                        [bound_label(bound), int(cumulative)]
                        for bound, cumulative in metric.bucket_counts()
                    ],
                }
        return out

    def clear(self) -> None:
        self._metrics.clear()


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry for callers outside a scenario context."""
    return _DEFAULT
