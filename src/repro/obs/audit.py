"""Detector audit log — *why* each suspicious rating pair was (not) damped.

Every reputation-update interval the collusion detector examines the
rater→ratee pairs whose rating frequency tripped ``T+``/``T−``.  With an
audit log attached it emits one :class:`AuditEvent` per examined pair:

* which thresholds fired (``T+``, ``T−``, ``TR``, ``Tch``, ``Tcl``,
  ``Tsh``, ``Tsl``) — the names follow the paper's Section 4.3;
* the pair's social coefficients Ωc (closeness) and Ωs (interest
  similarity);
* the suspected behaviour classes B1–B4 the pair matched (empty when the
  frequency flag found no corroborating social evidence);
* the decision — ``"damped"`` with the Gaussian damping weight actually
  applied, or ``"accepted"`` with weight 1.0;
* the interval's derived thresholds, so a single event is interpretable
  without the surrounding run.

Events are plain frozen dataclasses; :meth:`DetectorAuditLog.to_events`
serialises them as dicts for the shared JSONL exporter and
:func:`AuditEvent.from_dict` round-trips them back — field-for-field, as
the schema tests assert.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Iterator

__all__ = ["AuditEvent", "DetectorAuditLog"]

#: Threshold names an event's ``fired`` tuple may contain.
THRESHOLD_NAMES = ("T+", "T-", "TR", "Tcl", "Tch", "Tsl", "Tsh")
#: Behaviour classes an event's ``behaviors`` tuple may contain.
BEHAVIOR_NAMES = ("B1", "B2", "B3", "B4")
#: Valid decisions.  ``"damped"`` / ``"accepted"`` come from the detector
#: itself; ``"degraded_neutral"`` (social information unreachable — the
#: pair got the conservative neutral damping weight) and ``"skipped"``
#: (judgement deferred, e.g. across an active network partition) come
#: from the distributed manager layer's graceful-degradation ladder.
DECISIONS = ("damped", "accepted", "degraded_neutral", "skipped")


@dataclass(frozen=True)
class AuditEvent:
    """One examined rater→ratee pair in one reputation-update interval."""

    interval: int
    rater: int
    ratee: int
    #: ``"damped"`` (matched a behaviour class) or ``"accepted"``.
    decision: str
    #: Suspected behaviour classes, subset of ``("B1", "B2", "B3", "B4")``.
    behaviors: tuple[str, ...]
    #: Thresholds that fired for this pair, subset of `THRESHOLD_NAMES`.
    fired: tuple[str, ...]
    #: Social closeness coefficient Ωc of the pair.
    closeness: float
    #: Interest similarity coefficient Ωs of the pair.
    similarity: float
    #: Multiplicative Gaussian damping weight applied (1.0 when accepted).
    weight: float
    #: This interval's positive / negative rating counts for the pair.
    pos_count: float
    neg_count: float
    #: The interval's derived thresholds (T+ , T−, TR, Tcl, Tch, Tsl, Tsh).
    thresholds: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out["behaviors"] = list(self.behaviors)
        out["fired"] = list(self.fired)
        out["type"] = "audit"
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AuditEvent":
        payload = {k: v for k, v in data.items() if k != "type"}
        payload["behaviors"] = tuple(payload.get("behaviors", ()))
        payload["fired"] = tuple(payload.get("fired", ()))
        return cls(**payload)


class DetectorAuditLog:
    """Append-only in-memory store of :class:`AuditEvent` rows.

    ``max_events`` bounds memory on long runs: once full, further events
    are counted (``n_dropped``) but not stored, oldest-first retention.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._events: list[AuditEvent] = []
        self._max = int(max_events)
        self.n_dropped = 0

    def record(self, event: AuditEvent) -> None:
        if len(self._events) >= self._max:
            self.n_dropped += 1
            return
        self._events.append(event)

    @property
    def events(self) -> tuple[AuditEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self._events)

    def damped(self) -> tuple[AuditEvent, ...]:
        return tuple(e for e in self._events if e.decision == "damped")

    def accepted(self) -> tuple[AuditEvent, ...]:
        return tuple(e for e in self._events if e.decision == "accepted")

    def degraded(self) -> tuple[AuditEvent, ...]:
        """Events recorded by the manager layer's degradation ladder
        (``degraded_neutral`` and ``skipped``)."""
        return tuple(
            e for e in self._events if e.decision in ("degraded_neutral", "skipped")
        )

    def by_behavior(self) -> dict[str, int]:
        """Damped-event count per behaviour class (an event matching two
        classes counts toward both)."""
        counts = {name: 0 for name in BEHAVIOR_NAMES}
        for event in self._events:
            for name in event.behaviors:
                counts[name] += 1
        return counts

    def to_events(self) -> tuple[dict[str, Any], ...]:
        """Events as JSONL-ready dicts (``type: "audit"``)."""
        return tuple(e.to_dict() for e in self._events)

    def clear(self) -> None:
        self._events.clear()
        self.n_dropped = 0
