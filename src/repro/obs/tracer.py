"""Zero-dependency span tracer.

A :class:`Tracer` hands out :class:`Span` context managers timed with
:func:`time.perf_counter` (the same monotonic clock the benchmarks use).
Spans nest — entering a span while another is open records the parent
id and depth — and carry arbitrary JSON-serialisable attributes.  The
finished spans are plain dicts, exportable as JSONL through
:func:`repro.obs.schema.to_jsonl`.

The hot path is protected by :data:`NULL_TRACER`, a process-wide
:class:`NullTracer` whose :meth:`~NullTracer.span` returns one shared
no-op context manager: with tracing disabled an instrumented phase costs
a method call and a ``with`` enter/exit — nanoseconds per simulation
cycle, asserted ≤5% end-to-end by ``benchmarks/test_bench_obs.py``.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, attributed region of execution.

    Created by :meth:`Tracer.span`; use as a context manager.  Attributes
    passed at creation or added through :meth:`set` land in the exported
    event verbatim.
    """

    __slots__ = ("name", "span_id", "parent_id", "depth", "attributes",
                 "start", "duration", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        depth: int,
        attributes: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attributes = attributes
        self.start = 0.0
        self.duration = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span while it is open."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration = time.perf_counter() - self.start
        self._tracer._finish(self)


class _NullSpan:
    """Shared no-op stand-in for :class:`Span` when tracing is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans in memory, in completion order."""

    enabled = True

    def __init__(self) -> None:
        self._events: list[dict[str, Any]] = []
        self._stack: list[Span] = []
        self._next_id = 0

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a new span nested under the innermost open span."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            self,
            name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            attributes=attributes,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def record(self, name: str, duration: float, **attributes: Any) -> None:
        """Record a pre-measured duration as a closed span.

        Used for phase timings accumulated across many small regions
        (e.g. the engine's per-request cache patching) where opening a
        real span per region would distort the measurement.
        """
        parent = self._stack[-1] if self._stack else None
        self._events.append(
            {
                "type": "span",
                "name": name,
                "span_id": self._next_id,
                "parent_id": parent.span_id if parent is not None else None,
                "depth": len(self._stack),
                "start": float("nan"),
                "duration": float(duration),
                "attributes": attributes,
            }
        )
        self._next_id += 1

    def _finish(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # out-of-order exit; drop from wherever it sits
            try:
                self._stack.remove(span)
            except ValueError:
                pass
        self._events.append(
            {
                "type": "span",
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "depth": span.depth,
                "start": span.start,
                "duration": span.duration,
                "attributes": span.attributes,
            }
        )

    # -- inspection ----------------------------------------------------------

    @property
    def n_spans(self) -> int:
        return len(self._events)

    def events(self) -> tuple[dict[str, Any], ...]:
        """Finished spans as plain dicts (completion order)."""
        return tuple(self._events)

    def spans_named(self, name: str) -> Iterator[dict[str, Any]]:
        return (e for e in self._events if e["name"] == name)

    def total_duration(self, name: str) -> float:
        """Summed duration of every finished span with ``name``."""
        return sum(e["duration"] for e in self.spans_named(name))

    def clear(self) -> None:
        self._events.clear()
        self._stack.clear()


class NullTracer:
    """Disabled tracer: every call is a no-op, no span is ever stored."""

    enabled = False

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, duration: float, **attributes: Any) -> None:
        pass

    @property
    def n_spans(self) -> int:
        return 0

    def events(self) -> tuple[dict[str, Any], ...]:
        return ()

    def spans_named(self, name: str) -> Iterator[dict[str, Any]]:
        return iter(())

    def total_duration(self, name: str) -> float:
        return 0.0

    def clear(self) -> None:
        pass


#: Process-wide shared disabled tracer; components default to this so the
#: instrumented paths stay allocation-free when observability is off.
NULL_TRACER = NullTracer()
