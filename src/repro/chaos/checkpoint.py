"""Crash-safe checkpoint files.

A checkpoint is a two-line JSONL file:

1. a **header** carrying the :func:`repro.api.build_scenario` keyword
   arguments (the same self-describing contract as the golden-trace
   headers), the seed/run-index, and the cycle count at capture time;
2. a **state** line carrying :meth:`repro.p2p.simulator.Simulation.checkpoint`
   with every ndarray base64-encoded (raw little-endian bytes — exact, no
   decimal round-trip) and non-finite floats tagged.

Recovery rebuilds the scenario from the header (static structure —
population, overlay, social graph, collusion schedule — is a pure
function of the build arguments and seed) and restores the mutable state
on top.  The resumed process continues **bit-identically** to the
uninterrupted run; the kill-and-resume test pins that with a strict
golden-trace diff.
"""

from __future__ import annotations

import base64
import json
import math
from pathlib import Path
from typing import Any

import numpy as np
from scipy import sparse

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "encode_state",
    "decode_state",
    "save_checkpoint",
    "load_checkpoint",
    "resume_scenario",
]

#: Bumped whenever the checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1


def encode_state(value: Any) -> Any:
    """Recursively encode a state payload into JSON-safe data.

    ndarrays become ``{"__ndarray__": b64, "dtype": ..., "shape": ...}``
    over the raw (C-contiguous, little-endian) bytes, SciPy sparse
    matrices become ``{"__csr__": ...}`` over their CSR constituent
    arrays (data/indices/indptr — exact, the sparse Ωc caches must
    resume bit-identically just like the dense ones), numpy scalars
    become Python scalars, and non-finite floats are tagged the same way
    the golden traces tag them.
    """
    if sparse.issparse(value):
        mat = value.tocsr()
        return {
            "__csr__": {
                "data": encode_state(np.asarray(mat.data)),
                "indices": encode_state(np.asarray(mat.indices)),
                "indptr": encode_state(np.asarray(mat.indptr)),
            },
            "shape": list(mat.shape),
        }
    if isinstance(value, np.ndarray):
        # ascontiguousarray promotes 0-d to 1-d, so keep the true shape.
        contiguous = np.ascontiguousarray(value)
        le = contiguous.astype(contiguous.dtype.newbyteorder("<"), copy=False)
        return {
            "__ndarray__": base64.b64encode(le.tobytes()).decode("ascii"),
            "dtype": le.dtype.str,
            "shape": list(value.shape),
        }
    if isinstance(value, (np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.floating):
        value = float(value)
    if isinstance(value, float) and not math.isfinite(value):
        return {"__float__": repr(value)}
    if isinstance(value, dict):
        return {str(k): encode_state(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_state(v) for v in value]
    return value


def decode_state(value: Any) -> Any:
    """Inverse of :func:`encode_state`."""
    if isinstance(value, dict):
        if set(value) == {"__csr__", "shape"}:
            parts = value["__csr__"]
            return sparse.csr_matrix(
                (
                    decode_state(parts["data"]),
                    decode_state(parts["indices"]),
                    decode_state(parts["indptr"]),
                ),
                shape=tuple(value["shape"]),
            )
        if set(value) == {"__ndarray__", "dtype", "shape"}:
            raw = base64.b64decode(value["__ndarray__"])
            arr = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return arr.reshape(tuple(value["shape"])).copy()
        if set(value) == {"__float__"}:
            return float(value["__float__"])
        return {k: decode_state(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_state(v) for v in value]
    return value


def save_checkpoint(
    simulation,
    path: Path | str,
    *,
    build: dict[str, Any],
    seed: int = 0,
    run_index: int = 0,
    kind: str = "simulation",
) -> Path:
    """Capture ``simulation`` at its current cycle boundary into ``path``.

    ``build`` must be the JSON-serializable keyword arguments that
    reconstruct the scenario via :func:`repro.api.build_scenario` —
    exactly what :class:`~repro.qa.golden.GoldenScenario` stores.  The
    file is written atomically (temp file + rename) so a crash mid-write
    never leaves a truncated checkpoint behind.

    ``simulation`` is duck-typed: anything with a ``checkpoint()`` dict
    and a ``cycles_run`` count.  ``kind`` names the producer so recovery
    routes correctly — ``"simulation"`` resumes via
    :func:`resume_scenario`, ``"service"`` via
    :meth:`repro.serve.ReputationService.from_checkpoint`.  The key is
    additive (absent means ``"simulation"``), so the format version is
    unchanged.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "type": "header",
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "kind": str(kind),
        "build": dict(build),
        "seed": int(seed),
        "run_index": int(run_index),
        "cycles_run": simulation.cycles_run,
    }
    state = {"type": "state", "state": encode_state(simulation.checkpoint())}
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        for line in (header, state):
            handle.write(json.dumps(line, separators=(",", ":")))
            handle.write("\n")
    tmp.replace(path)
    return path


def load_checkpoint(path: Path | str) -> tuple[dict[str, Any], dict[str, Any]]:
    """Load ``(header, state)``; raises ``ValueError`` on malformed input."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if len(lines) != 2:
        raise ValueError(f"{path}: expected 2 JSONL lines, found {len(lines)}")
    header = json.loads(lines[0])
    if header.get("type") != "header":
        raise ValueError(f"{path}: first line is not a checkpoint header")
    version = header.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"{path}: format version {version!r} != supported "
            f"{CHECKPOINT_FORMAT_VERSION}"
        )
    payload = json.loads(lines[1])
    if payload.get("type") != "state":
        raise ValueError(f"{path}: second line is not a state payload")
    return header, decode_state(payload["state"])


def resume_scenario(path: Path | str):
    """Rebuild the checkpointed scenario and restore its state.

    Returns the resumed :class:`repro.api.Scenario`; drive it onward with
    ``scenario.world.simulation.run_simulation_cycle()`` (the restored
    cycle counter tells you how far the original run got).
    """
    # Local import: keep the codec importable without the full stack.
    from repro.api import build_scenario

    header, state = load_checkpoint(path)
    kind = header.get("kind", "simulation")
    if kind != "simulation":
        raise ValueError(
            f"{path}: checkpoint kind {kind!r} is not a batch-simulation "
            f"checkpoint; service checkpoints resume via "
            f"repro.serve.ReputationService.from_checkpoint"
        )
    scenario = build_scenario(
        seed=header["seed"], run_index=header["run_index"], **header["build"]
    )
    scenario.world.simulation.resume(state)
    return scenario
