"""Declarative chaos scenarios.

A :class:`ChaosSpec` names *which* faults hit *when*: network partitions
with explicit start/heal cycles and Byzantine manager windows.  It
compiles to a scripted :class:`~repro.faults.schedule.FaultSchedule`, so a
chaos run is exactly reproducible (and diffable against a fault-free
golden) without touching any stochastic fault rate.

The spec is plain data — JSON round-trippable via :meth:`ChaosSpec.to_dict`
/ :meth:`ChaosSpec.from_dict` — so it can travel inside a checkpoint
header or a CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.faults.config import FaultConfig
from repro.faults.schedule import NETWORK_SUBJECT, FaultEvent, FaultKind, FaultSchedule

__all__ = ["PartitionSpec", "ByzantineSpec", "ChaosSpec"]


@dataclass(frozen=True)
class PartitionSpec:
    """One network partition window: bisect at ``start_cycle``, heal at
    ``heal_cycle`` (the injector draws the side assignment from
    ``FaultConfig.partition_fraction``)."""

    start_cycle: int
    heal_cycle: int

    def __post_init__(self) -> None:
        if self.start_cycle < 0:
            raise ValueError(f"start_cycle must be >= 0, got {self.start_cycle}")
        if self.heal_cycle <= self.start_cycle:
            raise ValueError(
                f"heal_cycle ({self.heal_cycle}) must be after "
                f"start_cycle ({self.start_cycle})"
            )

    def events(self) -> list[FaultEvent]:
        return [
            FaultEvent(self.start_cycle, FaultKind.PARTITION_START, NETWORK_SUBJECT),
            FaultEvent(self.heal_cycle, FaultKind.PARTITION_HEAL, NETWORK_SUBJECT),
        ]


@dataclass(frozen=True)
class ByzantineSpec:
    """One Byzantine window for one manager; ``heal_cycle=None`` means the
    manager lies until the end of the run.  The corruption mode is global
    (``FaultConfig.byzantine_mode``)."""

    manager_id: int
    start_cycle: int
    heal_cycle: int | None = None

    def __post_init__(self) -> None:
        if self.manager_id < 0:
            raise ValueError(f"manager_id must be >= 0, got {self.manager_id}")
        if self.start_cycle < 0:
            raise ValueError(f"start_cycle must be >= 0, got {self.start_cycle}")
        if self.heal_cycle is not None and self.heal_cycle <= self.start_cycle:
            raise ValueError(
                f"heal_cycle ({self.heal_cycle}) must be after "
                f"start_cycle ({self.start_cycle})"
            )

    def events(self) -> list[FaultEvent]:
        out = [
            FaultEvent(self.start_cycle, FaultKind.MANAGER_BYZANTINE, self.manager_id)
        ]
        if self.heal_cycle is not None:
            out.append(
                FaultEvent(self.heal_cycle, FaultKind.MANAGER_HEAL, self.manager_id)
            )
        return out


@dataclass(frozen=True)
class ChaosSpec:
    """A full scripted chaos scenario: any number of partition and
    Byzantine windows (overlaps between *partition* windows are rejected —
    the injector models at most one active partition)."""

    partitions: tuple[PartitionSpec, ...] = ()
    byzantines: tuple[ByzantineSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "byzantines", tuple(self.byzantines))
        windows = sorted(
            (p.start_cycle, p.heal_cycle) for p in self.partitions
        )
        for (_, heal), (start, _) in zip(windows, windows[1:]):
            if start < heal:
                raise ValueError(
                    "partition windows overlap; at most one partition can "
                    "be active at a time"
                )

    @property
    def empty(self) -> bool:
        return not self.partitions and not self.byzantines

    def events(self) -> list[FaultEvent]:
        """All scripted events, ordered by cycle."""
        out: list[FaultEvent] = []
        for spec in self.partitions:
            out.extend(spec.events())
        for spec in self.byzantines:
            out.extend(spec.events())
        out.sort(key=lambda e: (e.cycle, e.kind.value, e.subject))
        return out

    def to_schedule(self, config: FaultConfig | None = None) -> FaultSchedule:
        """Compile to a scripted schedule carrying ``config`` (which
        supplies ``partition_fraction`` / ``byzantine_mode`` and any
        transport unreliability)."""
        by_cycle: dict[int, list[FaultEvent]] = {}
        for event in self.events():
            by_cycle.setdefault(event.cycle, []).append(event)
        return FaultSchedule(
            config, script={c: tuple(evts) for c, evts in by_cycle.items()}
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "partitions": [
                {"start_cycle": p.start_cycle, "heal_cycle": p.heal_cycle}
                for p in self.partitions
            ],
            "byzantines": [
                {
                    "manager_id": b.manager_id,
                    "start_cycle": b.start_cycle,
                    "heal_cycle": b.heal_cycle,
                }
                for b in self.byzantines
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSpec":
        unknown = sorted(set(data) - {"partitions", "byzantines"})
        if unknown:
            raise ValueError(f"unknown ChaosSpec keys: {unknown}")
        return cls(
            partitions=tuple(
                PartitionSpec(**p) for p in data.get("partitions", ())
            ),
            byzantines=tuple(
                ByzantineSpec(**b) for b in data.get("byzantines", ())
            ),
        )
