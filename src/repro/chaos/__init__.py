"""Chaos engineering: declarative fault scenarios + crash-safe recovery.

:mod:`repro.chaos.spec` compiles partition/Byzantine windows into
scripted fault schedules; :mod:`repro.chaos.checkpoint` serializes a
running simulation at a cycle boundary and rebuilds it bit-identically.
The reconvergence harness that measures recovery quality lives in
:mod:`repro.qa.reconvergence`.
"""

from repro.chaos.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    decode_state,
    encode_state,
    load_checkpoint,
    resume_scenario,
    save_checkpoint,
)
from repro.chaos.spec import ByzantineSpec, ChaosSpec, PartitionSpec

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "ByzantineSpec",
    "ChaosSpec",
    "PartitionSpec",
    "decode_state",
    "encode_state",
    "load_checkpoint",
    "resume_scenario",
    "save_checkpoint",
]
