"""Robustness experiment: SocialTrust under injected faults.

Not a paper figure — the paper evaluates a fault-free world — but the
experiment the ROADMAP's deployment north-star needs: how does the
*distributed* SocialTrust protocol degrade as peer churn, resource-manager
crashes, and message loss grow?

Each scenario runs the same PCM collusion workload through
:class:`~repro.core.manager.DistributedSocialTrust` under a different
:class:`~repro.faults.config.FaultConfig`.  Reported per scenario:

* colluder / normal / pre-trusted mean reputations (is collusion still
  contained?);
* mean absolute reputation error against the fault-free run of the same
  seed (the reputation-error-vs-fault-rate series);
* the cumulative fault counters (losses, retries, timeouts,
  neutral-damping fallbacks, failover reassignments).

The fault-free scenario doubles as a regression anchor: it must match the
centralised :class:`~repro.core.socialtrust.SocialTrust` bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collusion import PairwiseCollusion
from repro.core import DistributedSocialTrust, SocialTrust
from repro.experiments.runner import ExperimentResult, RunStats
from repro.faults import FaultConfig, FaultInjector
from repro.p2p import (
    ChordRing,
    InterestOverlay,
    Population,
    Simulation,
    SimulationConfig,
)
from repro.reputation import EigenTrust
from repro.social import InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import spawn_rng

__all__ = ["FaultScenario", "FAULT_SCENARIOS", "build_faulty_world", "fault_tolerance"]

#: World size of the robustness cells — smaller than the paper's 200-node
#: grid so the scenario sweep stays benchmark-friendly.
N_NODES = 60
N_INTERESTS = 10
N_MANAGERS = 6
PRETRUSTED = tuple(range(3))
COLLUDERS = tuple(range(3, 13))


@dataclass(frozen=True)
class FaultScenario:
    """One named point on the fault-rate axis."""

    name: str
    faults: FaultConfig


FAULT_SCENARIOS: tuple[FaultScenario, ...] = (
    FaultScenario("fault_free", FaultConfig()),
    FaultScenario(
        "loss_20",
        FaultConfig(message_loss_rate=0.20, max_retries=3, timeout_budget=30.0),
    ),
    FaultScenario(
        "loss_50",
        FaultConfig(message_loss_rate=0.50, max_retries=2, timeout_budget=8.0),
    ),
    FaultScenario(
        "churn_10",
        FaultConfig(
            peer_leave_rate=0.07,
            peer_crash_rate=0.03,
            peer_rejoin_rate=0.30,
        ),
    ),
    FaultScenario(
        "crash_loss_churn",
        FaultConfig(
            peer_leave_rate=0.05,
            peer_crash_rate=0.03,
            peer_rejoin_rate=0.30,
            manager_crash_rate=0.15,
            manager_recovery_rate=0.40,
            message_loss_rate=0.20,
            max_retries=3,
            timeout_budget=20.0,
        ),
    ),
)


def build_faulty_world(
    faults: FaultConfig,
    *,
    seed: int = 0,
    run_index: int = 0,
    simulation_cycles: int = 15,
    query_cycles: int = 15,
    distributed: bool = True,
) -> Simulation:
    """One PCM-collusion world wired for fault injection.

    ``distributed=False`` builds the centralised SocialTrust reference
    over the identical RNG stream (used by the equivalence regression).
    """
    rng = spawn_rng(seed, run_index)
    population = Population.build(
        N_NODES,
        rng,
        pretrusted_ids=PRETRUSTED,
        malicious_ids=COLLUDERS,
        n_interests=N_INTERESTS,
        interests_per_node=(1, 5),
        malicious_authentic_prob=0.6,
    )
    overlay = InterestOverlay([s.interests for s in population], N_INTERESTS)
    network = paper_social_network(N_NODES, COLLUDERS, rng)
    interactions = InteractionLedger(N_NODES)
    profiles = InterestProfiles(N_NODES, N_INTERESTS)
    for spec in population:
        profiles.set_declared(spec.node_id, spec.interests)
    base = EigenTrust(N_NODES, PRETRUSTED, pretrust_weight=0.05)
    injector: FaultInjector | None = None
    if distributed:
        ring = ChordRing(range(N_MANAGERS))
        # The injector's stream is keyed separately from the world's, so
        # fault draws never perturb the simulation randomness.
        injector = FaultInjector(
            N_NODES,
            config=faults,
            rng=spawn_rng(seed, run_index, 0xFA),
        )
        system = DistributedSocialTrust(
            base,
            network,
            interactions,
            profiles,
            assignment=ring.assignment(N_NODES),
            ring=ring,
            injector=injector,
        )
    else:
        system = SocialTrust(base, network, interactions, profiles)
    attack = PairwiseCollusion(
        COLLUDERS, [s.interests for s in population], ratings_per_cycle=15
    )
    return Simulation(
        population,
        overlay,
        system,
        rng,
        config=SimulationConfig(
            simulation_cycles=simulation_cycles,
            query_cycles_per_simulation_cycle=query_cycles,
        ),
        collusion=attack,
        interactions=interactions,
        profiles=profiles,
        fault_injector=injector,
    )


def fault_tolerance(
    *,
    n_runs: int = 2,
    simulation_cycles: int = 15,
    seed: int = 0,
) -> ExperimentResult:
    """Run the fault-scenario sweep; returns per-scenario degradation data.

    Per scenario the series holds ``[colluder_mean, normal_mean,
    pretrusted_mean, mean_reputation_error]`` (error measured against the
    fault-free run of the same seed/run pair); ``meta["fault_totals"]``
    carries the summed fault counters.  The per-cycle degradation series
    itself lives on each run's ``metrics.faults`` — re-run
    :func:`build_faulty_world` to inspect it.
    """
    result = ExperimentResult(
        experiment_id="fault_tolerance",
        title="SocialTrust degradation under churn, manager crashes and "
        "message loss",
    )
    normal_ids = [
        i for i in range(N_NODES) if i not in PRETRUSTED and i not in COLLUDERS
    ]
    references: list[np.ndarray] = []
    fault_totals: dict[str, dict[str, int]] = {}
    for scenario in FAULT_SCENARIOS:
        samples: list[np.ndarray] = []
        totals: dict[str, int] = {}
        for run_index in range(n_runs):
            simulation = build_faulty_world(
                scenario.faults,
                seed=seed,
                run_index=run_index,
                simulation_cycles=simulation_cycles,
            )
            metrics = simulation.run()
            final = metrics.final_reputations()
            if scenario.name == "fault_free":
                references.append(final)
            error = float(np.abs(final - references[run_index]).mean())
            samples.append(
                np.array(
                    [
                        float(final[list(COLLUDERS)].mean()),
                        float(final[normal_ids].mean()),
                        float(final[list(PRETRUSTED)].mean()),
                        error,
                    ]
                )
            )
            for key, value in metrics.faults.summary().items():
                totals[key] = totals.get(key, 0) + value
        result.series[scenario.name] = RunStats.from_samples(samples)
        fault_totals[scenario.name] = totals
    result.meta["series_components"] = (
        "colluder_mean",
        "normal_mean",
        "pretrusted_mean",
        "mean_reputation_error",
    )
    result.meta["fault_totals"] = fault_totals
    result.meta["colluder_ids"] = COLLUDERS
    result.meta["pretrusted_ids"] = PRETRUSTED
    result.meta["scenarios"] = {
        s.name: {
            "peer_leave_rate": s.faults.peer_leave_rate,
            "peer_crash_rate": s.faults.peer_crash_rate,
            "peer_rejoin_rate": s.faults.peer_rejoin_rate,
            "manager_crash_rate": s.faults.manager_crash_rate,
            "manager_recovery_rate": s.faults.manager_recovery_rate,
            "message_loss_rate": s.faults.message_loss_rate,
            "max_retries": s.faults.max_retries,
        }
        for s in FAULT_SCENARIOS
    }
    return result
