"""Experiment registry: id → callable.

Single authoritative index of every reproduced table/figure, used by the
benchmark harness and by ``examples/reproduce_paper.py``.  Each entry
returns an :class:`~repro.experiments.runner.ExperimentResult`.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import figures
from repro.experiments.faults import fault_tolerance
from repro.experiments.runner import ExperimentResult
from repro.experiments.table1 import table1

__all__ = ["get_experiment", "list_experiments", "EXPERIMENTS"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": figures.fig1,
    "fig2": figures.fig2,
    "fig3": figures.fig3,
    "fig4": figures.fig4,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "fig14": figures.fig14,
    "fig15": figures.fig15,
    "fig16": figures.fig16,
    "fig17": figures.fig17,
    "fig18": figures.fig18,
    "fig19": figures.fig19,
    "fig20": figures.fig20,
    "table1": table1,
    "fault_tolerance": fault_tolerance,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up one experiment; raises ``KeyError`` with the known ids."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def list_experiments() -> list[str]:
    """All known experiment ids, sorted."""
    return sorted(EXPERIMENTS)
