"""Table 1: percentage of service requests sent to colluders.

The paper's grid: {PCM, MCM, MMM} x {B=0.2, B=0.6} x {eBay, EigenTrust,
EigenTrust (Pre), eBay+SocialTrust, EigenTrust+SocialTrust,
EigenTrust+SocialTrust (Pre)}, where "(Pre)" marks runs with 7 compromised
pre-trusted nodes joining the collusion.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.runner import ExperimentResult, run_cell
from repro.experiments.setup import CollusionKind, SystemKind, WorldConfig

__all__ = ["table1", "TABLE1_ROWS"]

#: (row label, system, compromised pre-trusted count)
TABLE1_ROWS: tuple[tuple[str, SystemKind, int], ...] = (
    ("eBay", SystemKind.EBAY, 0),
    ("EigenTrust", SystemKind.EIGENTRUST, 0),
    ("EigenTrust (Pre)", SystemKind.EIGENTRUST, 7),
    ("eBay+SocialTrust", SystemKind.EBAY_SOCIALTRUST, 0),
    ("EigenTrust+SocialTrust", SystemKind.EIGENTRUST_SOCIALTRUST, 0),
    ("EigenTrust+SocialTrust (Pre)", SystemKind.EIGENTRUST_SOCIALTRUST, 7),
)

#: Paper-reported percentages, keyed (model, B, row label) — recorded here
#: so the benchmark output can print paper-vs-measured side by side.
PAPER_TABLE1: dict[tuple[str, float, str], float] = {
    ("pcm", 0.2, "eBay"): 0.06,
    ("pcm", 0.2, "EigenTrust"): 0.17,
    ("pcm", 0.2, "EigenTrust (Pre)"): 0.22,
    ("pcm", 0.2, "eBay+SocialTrust"): 0.03,
    ("pcm", 0.2, "EigenTrust+SocialTrust"): 0.02,
    ("pcm", 0.2, "EigenTrust+SocialTrust (Pre)"): 0.02,
    ("pcm", 0.6, "eBay"): 0.17,
    ("pcm", 0.6, "EigenTrust"): 0.24,
    ("pcm", 0.6, "EigenTrust (Pre)"): 0.24,
    ("pcm", 0.6, "eBay+SocialTrust"): 0.02,
    ("pcm", 0.6, "EigenTrust+SocialTrust"): 0.03,
    ("pcm", 0.6, "EigenTrust+SocialTrust (Pre)"): 0.02,
    ("mcm", 0.2, "eBay"): 0.07,
    ("mcm", 0.2, "EigenTrust"): 0.07,
    ("mcm", 0.2, "EigenTrust (Pre)"): 0.09,
    ("mcm", 0.2, "eBay+SocialTrust"): 0.03,
    ("mcm", 0.2, "EigenTrust+SocialTrust"): 0.02,
    ("mcm", 0.2, "EigenTrust+SocialTrust (Pre)"): 0.02,
    ("mcm", 0.6, "eBay"): 0.16,
    ("mcm", 0.6, "EigenTrust"): 0.15,
    ("mcm", 0.6, "EigenTrust (Pre)"): 0.10,
    ("mcm", 0.6, "eBay+SocialTrust"): 0.02,
    ("mcm", 0.6, "EigenTrust+SocialTrust"): 0.02,
    ("mcm", 0.6, "EigenTrust+SocialTrust (Pre)"): 0.02,
    ("mmm", 0.2, "eBay"): 0.08,
    ("mmm", 0.2, "EigenTrust"): 0.19,
    ("mmm", 0.2, "EigenTrust (Pre)"): 0.21,
    ("mmm", 0.2, "eBay+SocialTrust"): 0.02,
    ("mmm", 0.2, "EigenTrust+SocialTrust"): 0.03,
    ("mmm", 0.2, "EigenTrust+SocialTrust (Pre)"): 0.04,
    ("mmm", 0.6, "eBay"): 0.17,
    ("mmm", 0.6, "EigenTrust"): 0.21,
    ("mmm", 0.6, "EigenTrust (Pre)"): 0.24,
    ("mmm", 0.6, "eBay+SocialTrust"): 0.02,
    ("mmm", 0.6, "EigenTrust+SocialTrust"): 0.03,
    ("mmm", 0.6, "EigenTrust+SocialTrust (Pre)"): 0.03,
}


def table1(
    n_runs: int = 2,
    simulation_cycles: int = 25,
    seed: int = 0,
    *,
    models: tuple[CollusionKind, ...] = (
        CollusionKind.PCM,
        CollusionKind.MCM,
        CollusionKind.MMM,
    ),
    b_values: tuple[float, ...] = (0.2, 0.6),
    overrides: dict | None = None,
) -> ExperimentResult:
    """Reproduce Table 1: fraction of served requests handled by colluders.

    Series are keyed ``<model>/B=<b>/<row label>``; each holds the mean
    request fraction over ``n_runs`` runs.  ``meta['paper']`` carries the
    paper's reported value for every measured cell.
    """
    result = ExperimentResult("table1", "Percentage of requests sent to colluders")
    paper: dict[str, float] = {}
    for model in models:
        for b in b_values:
            base = WorldConfig(
                collusion=model,
                colluder_b=b,
                simulation_cycles=simulation_cycles,
                **(overrides or {}),
            )
            for label, system, n_pre in TABLE1_ROWS:
                config = replace(
                    base,
                    system=system,
                    # Scaled-down worlds may have fewer pre-trusted peers
                    # than the paper's 7 compromised ones.
                    n_compromised_pretrusted=min(n_pre, base.n_pretrusted),
                )
                fractions: list[np.ndarray] = []
                for run_index in range(n_runs):
                    world = run_cell(config, seed=seed, run_index=run_index)
                    fractions.append(
                        np.array(
                            [
                                world.simulation.metrics.fraction_served_by(
                                    config.colluder_ids
                                )
                            ]
                        )
                    )
                key = f"{model.value}/B={b}/{label}"
                result.add_series(key, fractions)
                paper_value = PAPER_TABLE1.get((model.value, b, label))
                if paper_value is not None:
                    paper[key] = paper_value
    result.meta["paper"] = paper
    return result
