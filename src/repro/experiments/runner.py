"""Multi-run execution and aggregation.

The paper runs every experiment 5 times and reports the average with 95%
confidence intervals; :func:`average_runs` does exactly that over any
per-run metric extractor, and :class:`ExperimentResult` is the uniform
container the figure functions return (named series of per-node or
per-category values plus free-form metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.experiments.setup import BuiltWorld, WorldConfig, build_world

__all__ = ["RunStats", "ExperimentResult", "average_runs", "run_cell"]


@dataclass(frozen=True)
class RunStats:
    """Mean and 95% confidence half-width over repeated runs."""

    mean: np.ndarray
    ci95: np.ndarray
    n_runs: int

    @classmethod
    def from_samples(cls, samples: Sequence[np.ndarray]) -> "RunStats":
        if not samples:
            raise ValueError("need at least one run")
        stack = np.vstack([np.atleast_1d(np.asarray(s, dtype=float)) for s in samples])
        mean = stack.mean(axis=0)
        if stack.shape[0] > 1:
            sem = stack.std(axis=0, ddof=1) / np.sqrt(stack.shape[0])
            ci95 = 1.96 * sem
        else:
            ci95 = np.zeros_like(mean)
        return cls(mean=mean, ci95=ci95, n_runs=stack.shape[0])


@dataclass
class ExperimentResult:
    """Uniform result container for every figure/table reproduction."""

    experiment_id: str
    title: str
    #: Named data series, e.g. one reputation distribution per system.
    series: dict[str, RunStats] = field(default_factory=dict)
    #: Free-form scalars/labels (axis descriptions, group boundaries, ...).
    meta: dict[str, object] = field(default_factory=dict)

    def add_series(self, name: str, samples: Sequence[np.ndarray]) -> None:
        self.series[name] = RunStats.from_samples(samples)

    def describe(self) -> str:
        """Human-readable summary used by the benchmark harness output."""
        lines = [f"[{self.experiment_id}] {self.title}"]
        for key, value in self.meta.items():
            lines.append(f"  meta {key}: {value}")
        for name, stats in self.series.items():
            values = stats.mean
            if values.size <= 8:
                body = ", ".join(f"{v:.4g}" for v in values)
            else:
                body = (
                    f"n={values.size} mean={values.mean():.4g} "
                    f"min={values.min():.4g} max={values.max():.4g}"
                )
            lines.append(f"  {name}: {body} (runs={stats.n_runs})")
        return "\n".join(lines)


def run_cell(
    config: WorldConfig,
    *,
    seed: int = 0,
    run_index: int = 0,
) -> BuiltWorld:
    """Build and fully run one simulation cell; returns the finished world."""
    world = build_world(config, seed=seed, run_index=run_index)
    world.simulation.run()
    return world


def average_runs(
    config: WorldConfig,
    extractor: Callable[[BuiltWorld], np.ndarray | float | Mapping[str, float]],
    *,
    n_runs: int = 5,
    seed: int = 0,
) -> RunStats:
    """Run ``config`` ``n_runs`` times and aggregate ``extractor``'s output.

    The extractor may return an array (e.g. the final reputation vector),
    a scalar, or a flat mapping of scalars (aggregated key-wise in sorted
    key order; the key order is recorded nowhere, so prefer arrays for
    anything ordered).
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    samples: list[np.ndarray] = []
    for run_index in range(n_runs):
        world = run_cell(config, seed=seed, run_index=run_index)
        value = extractor(world)
        if isinstance(value, Mapping):
            value = np.array([value[k] for k in sorted(value)], dtype=float)
        samples.append(np.atleast_1d(np.asarray(value, dtype=float)))
    return RunStats.from_samples(samples)
