"""Reproductions of the paper's evaluation figures (Figs. 7-20).

Every function returns an :class:`~repro.experiments.runner.ExperimentResult`
whose series carry the same content as the paper's plots: per-node
reputation distributions for the distribution figures, convergence-cycle
summaries for Fig. 19, per-distance means for Fig. 20.  Figures 1-4 (the
trace study) live in :func:`fig1` ... :func:`fig4` and run on the synthetic
Overstock trace.

All functions accept ``n_runs`` / ``simulation_cycles`` so the benchmark
harness can run a reduced-but-faithful profile while EXPERIMENTS.md records
the full paper profile (5 runs x 50 cycles).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.collusion import CompositeCollusion, MultiNodeCollusion
from repro.experiments.runner import ExperimentResult, RunStats, run_cell
from repro.experiments.setup import (
    BuiltWorld,
    CollusionKind,
    SystemKind,
    WorldConfig,
)
from repro.trace import (
    MarketplaceConfig,
    business_network_vs_reputation,
    category_rank_distribution,
    generate_trace,
    interest_similarity_cdf,
    personal_network_vs_reputation,
    rating_stats_by_distance,
    transactions_vs_reputation,
)

__all__ = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
]

#: Default evaluation profile for the benchmark harness; the paper profile
#: is ``n_runs=5, simulation_cycles=50``.
DEFAULT_RUNS = 2
DEFAULT_CYCLES = 25


def _boosted_ids(world: BuiltWorld) -> tuple[int, ...]:
    schedule = world.collusion
    if isinstance(schedule, CompositeCollusion):
        for inner in schedule._schedules:  # noqa: SLF001 - harness introspection
            if isinstance(inner, MultiNodeCollusion):
                return inner.boosted
        return ()
    if isinstance(schedule, MultiNodeCollusion):
        return schedule.boosted
    return ()


def _distribution_experiment(
    experiment_id: str,
    title: str,
    base: WorldConfig,
    systems: Sequence[SystemKind],
    *,
    n_runs: int,
    seed: int,
) -> ExperimentResult:
    """Run one figure's system sweep and collect reputation distributions."""
    result = ExperimentResult(experiment_id=experiment_id, title=title)
    result.meta["colluder_ids"] = base.colluder_ids
    result.meta["pretrusted_ids"] = base.pretrusted_ids
    result.meta["B"] = base.colluder_b
    result.meta["collusion"] = base.collusion.value
    request_fractions: dict[str, list[float]] = {}
    for system in systems:
        config = base.with_system(system)
        reputation_samples: list[np.ndarray] = []
        fractions: list[float] = []
        for run_index in range(n_runs):
            world = run_cell(config, seed=seed, run_index=run_index)
            metrics = world.simulation.metrics
            reputation_samples.append(metrics.final_reputations())
            fractions.append(metrics.fraction_served_by(config.colluder_ids))
        result.add_series(system.value, reputation_samples)
        request_fractions[system.value] = fractions
    result.meta["request_fraction_to_colluders"] = {
        name: float(np.mean(vals)) for name, vals in request_fractions.items()
    }
    return result


# ---------------------------------------------------------------------------
# Trace study (Figs. 1-4)
# ---------------------------------------------------------------------------


def _trace(seed: int, config: MarketplaceConfig | None) -> object:
    return generate_trace(config or MarketplaceConfig(), seed=seed)


def fig1(seed: int = 0, config: MarketplaceConfig | None = None) -> ExperimentResult:
    """Fig. 1: business-network size and transaction count vs reputation."""
    trace = _trace(seed, config)
    biz = business_network_vs_reputation(trace)
    tx = transactions_vs_reputation(trace)
    result = ExperimentResult("fig1", "Effect of reputation on transaction")
    result.add_series("business_size_correlation", [np.array([biz.correlation])])
    result.add_series("transactions_correlation", [np.array([tx.correlation])])
    result.meta["paper_business_correlation"] = 0.996
    result.meta["n_users"] = trace.n_users
    result.meta["n_transactions"] = trace.n_transactions
    return result


def fig2(seed: int = 0, config: MarketplaceConfig | None = None) -> ExperimentResult:
    """Fig. 2: personal-network size vs reputation (weak relationship)."""
    trace = _trace(seed, config)
    personal = personal_network_vs_reputation(trace)
    result = ExperimentResult("fig2", "Social network size vs reputation")
    result.add_series("personal_size_correlation", [np.array([personal.correlation])])
    result.meta["paper_correlation"] = 0.092
    return result


def fig3(seed: int = 0, config: MarketplaceConfig | None = None) -> ExperimentResult:
    """Fig. 3: rating value / frequency vs social distance."""
    trace = _trace(seed, config)
    stats = rating_stats_by_distance(trace)
    result = ExperimentResult("fig3", "Impact of social distance on ratings")
    result.add_series("mean_rating_by_hop", [stats.mean_rating])
    result.add_series("mean_ratings_per_pair_by_hop", [stats.mean_ratings_per_pair])
    result.meta["hops"] = stats.hops.tolist()
    return result


def fig4(seed: int = 0, config: MarketplaceConfig | None = None) -> ExperimentResult:
    """Fig. 4: category-rank CDF and interest-similarity CDF."""
    trace = _trace(seed, config)
    rank_cdf = category_rank_distribution(trace)
    edges, sim_cdf = interest_similarity_cdf(trace)
    result = ExperimentResult("fig4", "Impact of interests on purchasing")
    result.add_series("category_rank_cdf", [rank_cdf])
    result.add_series("interest_similarity_cdf", [sim_cdf])
    result.meta["similarity_bins"] = edges.tolist()
    result.meta["paper_top3_share"] = 0.88
    return result


# ---------------------------------------------------------------------------
# Collusion experiments (Figs. 7-18)
# ---------------------------------------------------------------------------


def fig7(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 7: EigenTrust vs eBay with malicious peers but no collusion."""
    base = WorldConfig(
        collusion=CollusionKind.NONE,
        colluder_b=(0.2, 0.6),
        simulation_cycles=simulation_cycles,
        **(overrides or {}),
    )
    result = _distribution_experiment(
        "fig7",
        "EigenTrust and eBay without colluders",
        base,
        [SystemKind.EIGENTRUST, SystemKind.EBAY],
        n_runs=n_runs,
        seed=seed,
    )
    # Fig. 7(c): percent of services provided by malicious nodes.
    result.meta["percent_services_by_malicious"] = result.meta.pop(
        "request_fraction_to_colluders"
    )
    return result


def _pcm(b: float, simulation_cycles: int, **kw) -> WorldConfig:
    return WorldConfig(
        collusion=CollusionKind.PCM,
        colluder_b=b,
        simulation_cycles=simulation_cycles,
        **kw,
    )


ALL_SYSTEMS = (
    SystemKind.EIGENTRUST,
    SystemKind.EBAY,
    SystemKind.EIGENTRUST_SOCIALTRUST,
    SystemKind.EBAY_SOCIALTRUST,
)


def fig8(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 8: reputation distributions, PCM with B=0.6."""
    return _distribution_experiment(
        "fig8",
        "PCM with B=0.6",
        _pcm(0.6, simulation_cycles, **(overrides or {})),
        ALL_SYSTEMS,
        n_runs=n_runs,
        seed=seed,
    )


def fig9(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 9: reputation distributions, PCM with B=0.2."""
    return _distribution_experiment(
        "fig9",
        "PCM with B=0.2",
        _pcm(0.2, simulation_cycles, **(overrides or {})),
        ALL_SYSTEMS,
        n_runs=n_runs,
        seed=seed,
    )


def fig10(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 10: PCM + compromised pre-trusted nodes, B=0.2."""
    params = {"n_compromised_pretrusted": 7, **(overrides or {})}
    base = _pcm(0.2, simulation_cycles, **params)
    result = _distribution_experiment(
        "fig10",
        "PCM with compromised pre-trusted nodes, B=0.2",
        base,
        [SystemKind.EIGENTRUST, SystemKind.EIGENTRUST_SOCIALTRUST],
        n_runs=n_runs,
        seed=seed,
    )
    return result


def _mcm(b: float, simulation_cycles: int, **kw) -> WorldConfig:
    return WorldConfig(
        collusion=CollusionKind.MCM,
        colluder_b=b,
        simulation_cycles=simulation_cycles,
        **kw,
    )


def _mmm(b: float, simulation_cycles: int, **kw) -> WorldConfig:
    return WorldConfig(
        collusion=CollusionKind.MMM,
        colluder_b=b,
        simulation_cycles=simulation_cycles,
        **kw,
    )


def fig11(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 11: reputation distributions, MCM with B=0.6."""
    return _distribution_experiment(
        "fig11", "MCM with B=0.6", _mcm(0.6, simulation_cycles, **(overrides or {})),
        ALL_SYSTEMS, n_runs=n_runs, seed=seed,
    )


def fig12(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 12: reputation distributions, MCM with B=0.2."""
    return _distribution_experiment(
        "fig12", "MCM with B=0.2", _mcm(0.2, simulation_cycles, **(overrides or {})),
        ALL_SYSTEMS, n_runs=n_runs, seed=seed,
    )


def fig13(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 13: reputation distributions, MMM with B=0.6."""
    return _distribution_experiment(
        "fig13", "MMM with B=0.6", _mmm(0.6, simulation_cycles, **(overrides or {})),
        ALL_SYSTEMS, n_runs=n_runs, seed=seed,
    )


def fig14(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 14: reputation distributions, MMM with B=0.2."""
    return _distribution_experiment(
        "fig14", "MMM with B=0.2", _mmm(0.2, simulation_cycles, **(overrides or {})),
        ALL_SYSTEMS, n_runs=n_runs, seed=seed,
    )


def fig15(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 15: MCM and MMM with compromised pre-trusted nodes, B=0.2."""
    result = ExperimentResult(
        "fig15", "MCM/MMM with compromised pre-trusted nodes, B=0.2"
    )
    fractions: dict[str, float] = {}
    for label, maker in (("MCM", _mcm), ("MMM", _mmm)):
        params = {"n_compromised_pretrusted": 7, **(overrides or {})}
        base = maker(0.2, simulation_cycles, **params)
        sub = _distribution_experiment(
            "fig15",
            result.title,
            base,
            [SystemKind.EIGENTRUST, SystemKind.EIGENTRUST_SOCIALTRUST],
            n_runs=n_runs,
            seed=seed,
        )
        for name, stats in sub.series.items():
            result.series[f"{label}/{name}"] = stats
        for name, frac in sub.meta["request_fraction_to_colluders"].items():
            fractions[f"{label}/{name}"] = frac
    result.meta["request_fraction_to_colluders"] = fractions
    reference = WorldConfig(
        **{k: v for k, v in (overrides or {}).items() if k != "n_compromised_pretrusted"}
    )
    result.meta["colluder_ids"] = reference.colluder_ids
    result.meta["pretrusted_ids"] = reference.pretrusted_ids
    return result


def _falsified_fig(
    experiment_id: str,
    title: str,
    base: WorldConfig,
    *,
    n_runs: int,
    seed: int,
) -> ExperimentResult:
    return _distribution_experiment(
        experiment_id,
        title,
        replace(base, falsified_social_info=True),
        [SystemKind.EIGENTRUST_SOCIALTRUST, SystemKind.EBAY_SOCIALTRUST],
        n_runs=n_runs,
        seed=seed,
    )


def fig16(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 16: PCM B=0.6 with falsified social information."""
    return _falsified_fig(
        "fig16", "PCM B=0.6, falsified social information",
        _pcm(0.6, simulation_cycles, **(overrides or {})),
        n_runs=n_runs, seed=seed,
    )


def fig17(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 17: MCM B=0.6 with falsified social information."""
    return _falsified_fig(
        "fig17", "MCM B=0.6, falsified social information",
        _mcm(0.6, simulation_cycles, **(overrides or {})),
        n_runs=n_runs, seed=seed,
    )


def fig18(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 18: MMM B=0.6 with falsified social information."""
    return _falsified_fig(
        "fig18", "MMM B=0.6, falsified social information",
        _mmm(0.6, simulation_cycles, **(overrides or {})),
        n_runs=n_runs, seed=seed,
    )


# ---------------------------------------------------------------------------
# Efficiency and distance sweeps (Figs. 19-20)
# ---------------------------------------------------------------------------


def fig19(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    threshold: float = 1e-3,
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 19: simulation cycles until the colluders' mean reputation
    falls below 1e-3 and stays there.

    MMM collusion; B=0.2 compares SocialTrust / EigenTrust / eBay, B=0.6
    compares SocialTrust / EigenTrust (the paper omits eBay at B=0.6
    because it never converges there).  Runs that never converge are
    reported as ``simulation_cycles + 1``.
    """
    result = ExperimentResult(
        "fig19", "Efficiency of collusion deterrence (MMM)"
    )
    grids = {
        0.2: [
            SystemKind.EIGENTRUST_SOCIALTRUST,
            SystemKind.EIGENTRUST,
            SystemKind.EBAY,
        ],
        0.6: [SystemKind.EIGENTRUST_SOCIALTRUST, SystemKind.EIGENTRUST],
    }
    for b, systems in grids.items():
        for system in systems:
            config = _mmm(b, simulation_cycles, **(overrides or {})).with_system(
                system
            )
            cycles: list[float] = []
            for run_index in range(n_runs):
                world = run_cell(config, seed=seed, run_index=run_index)
                converged = world.simulation.metrics.cycles_until_mean_below(
                    config.colluder_ids, threshold
                )
                cycles.append(
                    float(converged)
                    if converged is not None
                    else float(simulation_cycles + 1)
                )
            result.series[f"B={b}/{system.value}"] = RunStats.from_samples(
                [np.array([c]) for c in cycles]
            )
    result.meta["threshold"] = threshold
    result.meta["never_converged_value"] = simulation_cycles + 1
    return result


def fig20(
    n_runs: int = DEFAULT_RUNS,
    simulation_cycles: int = DEFAULT_CYCLES,
    seed: int = 0,
    distances: Sequence[int] = (1, 2, 3),
    overrides: dict | None = None,
) -> ExperimentResult:
    """Fig. 20: colluder vs normal reputation against colluder social distance.

    All three collusion models run under EigenTrust+SocialTrust with the
    colluder clique pinned at distance 1, 2 or 3.
    """
    result = ExperimentResult(
        "fig20", "Average reputation vs colluder social distance (SocialTrust)"
    )
    makers = {"PCM": _pcm, "MCM": _mcm, "MMM": _mmm}
    for label, maker in makers.items():
        col_means: list[np.ndarray] = []
        normal_means: list[np.ndarray] = []
        for run_index in range(n_runs):
            col_row = []
            normal_row = []
            for distance in distances:
                config = replace(
                    maker(0.6, simulation_cycles, **(overrides or {})),
                    colluder_distance=int(distance),
                ).with_system(SystemKind.EIGENTRUST_SOCIALTRUST)
                world = run_cell(config, seed=seed, run_index=run_index)
                reps = world.simulation.metrics.final_reputations()
                col_row.append(reps[list(config.colluder_ids)].mean())
                normal_row.append(reps[list(config.normal_ids)].mean())
            col_means.append(np.array(col_row))
            normal_means.append(np.array(normal_row))
        result.add_series(f"colluders/{label}", col_means)
        result.add_series(f"normal/{label}", normal_means)
    result.meta["distances"] = list(distances)
    return result
