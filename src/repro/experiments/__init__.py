"""Experiment harness.

One registered experiment per table/figure of the paper's evaluation.

* :mod:`repro.experiments.setup` — builds the paper's Section-5.1 world
  (population, overlay, social network, reputation stacks);
* :mod:`repro.experiments.runner` — multi-run averaging with confidence
  intervals;
* :mod:`repro.experiments.figures` — ``fig7`` ... ``fig20``;
* :mod:`repro.experiments.table1` — the request-routing table;
* :mod:`repro.experiments.registry` — experiment-id → callable index.
"""

from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.runner import ExperimentResult, average_runs
from repro.experiments.setup import (
    CollusionKind,
    SystemKind,
    WorldConfig,
    build_world,
)

__all__ = [
    "get_experiment",
    "list_experiments",
    "ExperimentResult",
    "average_runs",
    "CollusionKind",
    "SystemKind",
    "WorldConfig",
    "build_world",
]
