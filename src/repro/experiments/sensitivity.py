"""Parameter-sensitivity sweeps for SocialTrust's thresholds.

The paper fixes its thresholds "from empirical experience" without
reporting how sensitive the defence is to them.  These sweeps answer that
for the knobs that matter:

* ``theta`` — the frequency-threshold scale (too low: false positives on
  busy honest pairs; too high: collusion bursts slip under);
* ``recidivism_decay`` — how hard repeat offenders are escalated;
* ``selection_exploration`` — how much reputation-blind traffic the
  market grants low-reputation nodes;
* ``min_band_size`` — when the rater's own Gaussian band is trusted.

Each sweep runs the PCM B=0.6 cell (the regime where the undefended
system fails hardest) and reports colluder reputation mass plus the
false-positive pressure (share of adjusted rater→ratee pairs whose rater
is honest).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.core import SocialTrust, SocialTrustConfig
from repro.experiments.setup import (
    CollusionKind,
    SystemKind,
    WorldConfig,
    build_world,
)

__all__ = ["SensitivityPoint", "sweep_socialtrust_parameter"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Outcome of one parameter setting."""

    value: float
    colluder_mass: float
    normal_mean: float
    request_share: float
    #: Fraction of adjusted pairs whose rater is an honest node, summed
    #: over the final interval — the false-positive pressure.
    false_positive_share: float


def _world_for(
    parameter: str, value: float, *, simulation_cycles: int
) -> WorldConfig:
    st_config = SocialTrustConfig()
    config = WorldConfig(
        collusion=CollusionKind.PCM,
        colluder_b=0.6,
        system=SystemKind.EIGENTRUST_SOCIALTRUST,
        simulation_cycles=simulation_cycles,
    )
    if parameter == "theta":
        st_config = replace(st_config, theta=float(value))
    elif parameter == "recidivism_decay":
        st_config = replace(st_config, recidivism_decay=float(value))
    elif parameter == "min_band_size":
        st_config = replace(st_config, min_band_size=int(value))
    elif parameter == "selection_exploration":
        config = replace(config, selection_exploration=float(value))
    else:
        raise ValueError(
            "parameter must be one of theta, recidivism_decay, "
            f"min_band_size, selection_exploration; got {parameter!r}"
        )
    return replace(config, socialtrust=st_config)


def sweep_socialtrust_parameter(
    parameter: str,
    values: Sequence[float],
    *,
    simulation_cycles: int = 15,
    seed: int = 0,
) -> list[SensitivityPoint]:
    """Run the PCM B=0.6 cell once per parameter value."""
    if not values:
        raise ValueError("values must be non-empty")
    points: list[SensitivityPoint] = []
    for value in values:
        config = _world_for(parameter, value, simulation_cycles=simulation_cycles)
        world = build_world(config, seed=seed, run_index=0)
        world.simulation.run()
        reps = world.simulation.metrics.final_reputations()
        colluders = set(config.colluder_ids)
        false_positives = 0.0
        system = world.system
        if isinstance(system, SocialTrust) and system.last_detection is not None:
            findings = system.last_detection.findings
            if findings:
                honest = sum(1 for f in findings if f.rater not in colluders)
                false_positives = honest / len(findings)
        points.append(
            SensitivityPoint(
                value=float(value),
                colluder_mass=float(reps[list(config.colluder_ids)].sum()),
                normal_mean=float(reps[list(config.normal_ids)].mean()),
                request_share=world.simulation.metrics.fraction_served_by(
                    config.colluder_ids
                ),
                false_positive_share=false_positives,
            )
        )
    return points
