"""Builder for the paper's Section-5.1 experimental world.

The canonical configuration: a 200-node unstructured P2P network with 20
interest categories (1-10 interests per node), 9 pre-trusted nodes
(ids 0-8), 30 colluders (ids 9-38), per-query-cycle capacity 50, activity
probability uniform over [0.5, 1], colluder pairs at social distance 1
with 3-5 same-weight relationships, all other pairs at distance uniform
over [1, 3] with 1-2 relationships.

:func:`build_world` assembles a ready-to-run :class:`BuiltWorld` for one
(reputation system, collusion model, B) cell of the evaluation grid,
wiring the shared behavioural ledgers (interaction frequencies, interest
requests) into both the simulator and the SocialTrust stack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.collusion import (
    CollusionSchedule,
    CompositeCollusion,
    CompromisedPretrustedCollusion,
    MultiNodeCollusion,
    MutualMultiNodeCollusion,
    NoCollusion,
    PairwiseCollusion,
    falsify_identical_interests,
    falsify_single_relationship,
)
from repro.chaos.spec import ChaosSpec
from repro.core import DistributedSocialTrust, SocialTrust, SocialTrustConfig
from repro.faults import FaultConfig, FaultInjector, FaultSchedule
from repro.obs import Observability
from repro.p2p import (
    EngineMode,
    InterestOverlay,
    Population,
    SelectionPolicy,
    Simulation,
    SimulationConfig,
)
from repro.reputation import (
    EBayModel,
    EigenTrust,
    GossipTrust,
    PowerTrust,
    ReputationSystem,
    SimilarityWeightedModel,
)
from repro.social import AssignedSocialNetwork, InteractionLedger, InterestProfiles
from repro.social.generators import paper_social_network
from repro.utils.rng import RngStream, spawn_rng

__all__ = [
    "SystemKind",
    "CollusionKind",
    "WorldConfig",
    "BuiltWorld",
    "build_world",
]


class SystemKind(enum.Enum):
    """Which reputation stack a simulation runs."""

    EIGENTRUST = "EigenTrust"
    EBAY = "eBay"
    POWERTRUST = "PowerTrust"
    #: Related-work baseline defences (no SocialTrust-wrapped variant —
    #: they embed their own anti-collusion mechanism); mainly exercised by
    #: the baseline benchmarks and the :mod:`repro.qa` differential runner.
    TRUSTGUARD = "TrustGuard"
    GOSSIP = "GossipTrust"
    EIGENTRUST_SOCIALTRUST = "EigenTrust+SocialTrust"
    EBAY_SOCIALTRUST = "eBay+SocialTrust"
    POWERTRUST_SOCIALTRUST = "PowerTrust+SocialTrust"

    @property
    def uses_socialtrust(self) -> bool:
        return self in (
            SystemKind.EIGENTRUST_SOCIALTRUST,
            SystemKind.EBAY_SOCIALTRUST,
            SystemKind.POWERTRUST_SOCIALTRUST,
        )

    @property
    def base(self) -> "SystemKind":
        if self is SystemKind.EIGENTRUST_SOCIALTRUST:
            return SystemKind.EIGENTRUST
        if self is SystemKind.EBAY_SOCIALTRUST:
            return SystemKind.EBAY
        if self is SystemKind.POWERTRUST_SOCIALTRUST:
            return SystemKind.POWERTRUST
        return self


class CollusionKind(enum.Enum):
    """Which attack structure the colluders mount."""

    NONE = "none"
    PCM = "pcm"
    MCM = "mcm"
    MMM = "mmm"


@dataclass(frozen=True)
class WorldConfig:
    """One cell of the evaluation grid (paper defaults)."""

    n_nodes: int = 200
    n_pretrusted: int = 9
    n_colluders: int = 30
    n_interests: int = 20
    interests_per_node: tuple[int, int] = (1, 10)
    capacity: int = 50
    #: Colluders' probability of good behaviour ``B`` (a scalar for the
    #: collusion experiments, a range for the colluder-free baseline).
    colluder_b: float | tuple[float, float] = 0.2
    collusion: CollusionKind = CollusionKind.PCM
    system: SystemKind = SystemKind.EIGENTRUST
    #: PCM mutual rating frequency per query cycle.
    pcm_ratings_per_cycle: int = 20
    #: MCM boosted-node count and per-cycle rating range.
    mcm_n_boosted: int = 7
    mcm_ratings_range: tuple[int, int] = (3, 7)
    #: MMM forward / backward rating counts per query cycle.
    mmm_forward_ratings: int = 20
    mmm_back_ratings: int = 5
    #: Compromised pre-trusted peers joining the collusion (Sections 5.4/5.7).
    n_compromised_pretrusted: int = 0
    #: Colluders falsify declared relationships and interests (Section 5.8).
    falsified_social_info: bool = False
    #: Social distance between colluder pairs (Fig. 20 sweeps 1-3).
    colluder_distance: int = 1
    #: Redraw each colluding pair's interests to be (near-)disjoint.  The
    #: paper's setup states "colluders have relatively more social
    #: relationships, higher social interaction frequency, and less common
    #: interests" — the low interest overlap is what anchors behaviour B3
    #: when colluders evade B2 by growing rich or keeping their distance.
    colluder_low_interest_overlap: bool = True
    #: Simulation length (paper: 50 cycles x 30 query cycles).
    simulation_cycles: int = 50
    query_cycles: int = 30
    #: EigenTrust pre-trust blend.  0.05 keeps the pre-trust floor below the
    #: selection threshold ``T_R`` so pre-trusted peers are not the only
    #: qualified servers from cycle 0 — the regime the paper's reputation
    #: plots (pre-trusted barely above normal) imply.  See the EigenTrust
    #: class docstring for why the stated 0.5 cannot be the blend factor.
    pretrust_weight: float = 0.05
    #: eBay per-interval score aggregation (see EBayModel).  ``node_sign``
    #: matches the paper's description ("a node's reputation increase is
    #: only determined by whether the node offers more authentic files than
    #: inauthentic files in each simulation cycle").
    ebay_aggregation: str = "node_sign"
    #: Server selection rule; THRESHOLD_RANDOM is the paper's literal rule
    #: ("randomly chooses a neighbor with available capacity greater than 0
    #: and reputation higher than T_R").
    selection_policy: SelectionPolicy = SelectionPolicy.THRESHOLD_RANDOM
    #: Reputation-blind exploration fraction of the selection rule.
    selection_exploration: float = 0.2
    socialtrust: SocialTrustConfig = field(default_factory=SocialTrustConfig)
    #: Query-cycle execution engine (see :mod:`repro.p2p.engine`); accepts
    #: the enum or its string value ("batched" / "scalar").
    engine: EngineMode = EngineMode.BATCHED
    #: Stochastic fault rates (churn, manager crashes, lossy transport,
    #: partitions, Byzantine managers).  ``None`` (default) builds no
    #: injector at all — the run is byte-identical to the seed path.
    #: Accepts a :class:`~repro.faults.config.FaultConfig` or its dict
    #: form (JSON-friendly, e.g. from a golden/checkpoint header).
    faults: FaultConfig | dict | None = None
    #: Scripted chaos scenario (explicit partition / Byzantine windows).
    #: When set, it replaces the stochastic *event* schedule — transport
    #: unreliability from ``faults`` still applies.  Accepts a
    #: :class:`~repro.chaos.ChaosSpec` or its dict form.
    chaos: ChaosSpec | dict | None = None
    #: Number of resource managers for the distributed SocialTrust
    #: execution (Section 4.3).  0 (default) runs the centralised
    #: wrapper; > 0 requires a SocialTrust-wrapped ``system``.
    n_managers: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.engine, EngineMode):
            object.__setattr__(self, "engine", EngineMode(self.engine))
        if isinstance(self.socialtrust, dict):
            object.__setattr__(
                self, "socialtrust", SocialTrustConfig(**self.socialtrust)
            )
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultConfig(**self.faults))
        if isinstance(self.chaos, dict):
            object.__setattr__(self, "chaos", ChaosSpec.from_dict(self.chaos))
        if self.n_managers < 0:
            raise ValueError(f"n_managers must be >= 0, got {self.n_managers}")
        if self.n_managers and not self.system.uses_socialtrust:
            raise ValueError(
                "n_managers > 0 requires a SocialTrust-wrapped system "
                "(the manager protocol is part of SocialTrust)"
            )
        if self.chaos is not None and self.chaos.byzantines:
            if not self.n_managers:
                raise ValueError(
                    "Byzantine manager windows require n_managers > 0"
                )
            bad = sorted(
                b.manager_id
                for b in self.chaos.byzantines
                if b.manager_id >= self.n_managers
            )
            if bad:
                raise ValueError(
                    f"Byzantine manager ids {bad} out of range "
                    f"[0, {self.n_managers})"
                )
        if self.n_pretrusted + self.n_colluders > self.n_nodes:
            raise ValueError("pre-trusted + colluders exceed network size")
        if self.n_compromised_pretrusted > self.n_pretrusted:
            raise ValueError(
                "cannot compromise more pre-trusted nodes than exist"
            )
        if self.n_compromised_pretrusted and self.collusion is CollusionKind.NONE:
            raise ValueError(
                "compromised pre-trusted nodes require a collusion model"
            )

    @property
    def pretrusted_ids(self) -> tuple[int, ...]:
        return tuple(range(self.n_pretrusted))

    @property
    def colluder_ids(self) -> tuple[int, ...]:
        return tuple(range(self.n_pretrusted, self.n_pretrusted + self.n_colluders))

    @property
    def normal_ids(self) -> tuple[int, ...]:
        return tuple(range(self.n_pretrusted + self.n_colluders, self.n_nodes))

    def with_system(self, system: SystemKind) -> "WorldConfig":
        return replace(self, system=system)


@dataclass
class BuiltWorld:
    """Everything needed to run one simulation cell."""

    config: WorldConfig
    simulation: Simulation
    system: ReputationSystem
    population: Population
    social_network: AssignedSocialNetwork
    interactions: InteractionLedger
    profiles: InterestProfiles
    collusion: CollusionSchedule
    compromised_pretrusted: tuple[int, ...]
    #: The run's tracer/metrics/audit bundle (None unless requested).
    observability: Observability | None = None

    @property
    def colluder_ids(self) -> tuple[int, ...]:
        return self.config.colluder_ids

    @property
    def adversary_ids(self) -> tuple[int, ...]:
        """Colluders plus compromised pre-trusted nodes."""
        return self.config.colluder_ids + self.compromised_pretrusted


def _build_schedule(
    config: WorldConfig,
    interests: list[frozenset[int]],
    rng: RngStream,
) -> tuple[CollusionSchedule, tuple[int, ...], list[tuple[int, int]]]:
    """(schedule, compromised pre-trusted ids, colluding pairs for falsification)."""
    colluders = list(config.colluder_ids)
    if config.collusion is CollusionKind.NONE:
        return NoCollusion(), (), []
    if config.collusion is CollusionKind.PCM:
        schedule: CollusionSchedule = PairwiseCollusion(
            colluders, interests, ratings_per_cycle=config.pcm_ratings_per_cycle
        )
        pairs = list(schedule.pairs)
    elif config.collusion is CollusionKind.MCM:
        # Scaled-down worlds may have fewer colluders than the paper's 30;
        # keep at least one boosting node per boosted node.
        n_boosted = min(config.mcm_n_boosted, max(1, len(colluders) - 1))
        schedule = MultiNodeCollusion(
            colluders,
            interests,
            rng,
            n_boosted=n_boosted,
            ratings_range=config.mcm_ratings_range,
        )
        pairs = [(b, schedule.target_of(b)) for b in schedule.boosting]
    else:
        n_boosted = min(config.mcm_n_boosted, max(1, len(colluders) - 1))
        schedule = MutualMultiNodeCollusion(
            colluders,
            interests,
            rng,
            n_boosted=n_boosted,
            forward_ratings=config.mmm_forward_ratings,
            back_ratings=config.mmm_back_ratings,
        )
        pairs = [(b, schedule.target_of(b)) for b in schedule.boosting]
    compromised: tuple[int, ...] = ()
    if config.n_compromised_pretrusted:
        compromised = tuple(
            int(x)
            for x in rng.choice(
                config.pretrusted_ids,
                size=config.n_compromised_pretrusted,
                replace=False,
            )
        )
        extra = CompromisedPretrustedCollusion(
            compromised, colluders, interests, rng
        )
        pairs.extend(extra.partners)
        schedule = CompositeCollusion([schedule, extra])
    return schedule, compromised, pairs


def _build_system(
    config: WorldConfig,
    network: AssignedSocialNetwork,
    interactions: InteractionLedger,
    profiles: InterestProfiles,
    observability: Observability | None = None,
    injector: FaultInjector | None = None,
) -> ReputationSystem:
    base: ReputationSystem
    if config.system.base is SystemKind.EIGENTRUST:
        base = EigenTrust(
            config.n_nodes,
            config.pretrusted_ids,
            pretrust_weight=config.pretrust_weight,
        )
    elif config.system.base is SystemKind.POWERTRUST:
        base = PowerTrust(
            config.n_nodes,
            n_power_nodes=config.n_pretrusted,
            power_weight=config.pretrust_weight,
        )
    elif config.system.base is SystemKind.TRUSTGUARD:
        base = SimilarityWeightedModel(config.n_nodes)
    elif config.system.base is SystemKind.GOSSIP:
        base = GossipTrust(config.n_nodes)
    else:
        base = EBayModel(config.n_nodes, cycle_aggregation=config.ebay_aggregation)
    if not config.system.uses_socialtrust:
        return base
    if config.n_managers:
        return DistributedSocialTrust(
            base, network, interactions, profiles, config.socialtrust,
            n_managers=config.n_managers,
            injector=injector,
            observability=observability,
        )
    return SocialTrust(
        base, network, interactions, profiles, config.socialtrust,
        observability=observability,
    )


def _redraw_low_overlap_interests(
    interests: list[frozenset[int]],
    colluding_pairs: list[tuple[int, int]],
    colluder_set: set[int],
    n_interests: int,
    rng: RngStream,
) -> list[frozenset[int]]:
    """Give each colluding pair (near-)disjoint declared interest sets.

    For every pair exactly one endpoint is redrawn (a colluder, never a
    compromised pre-trusted node if the other side qualifies) while the
    other endpoint anchors its original set, so a node involved in several
    pairs stays consistent.  The redrawn set keeps its original size where
    the interest universe allows.
    """
    out = list(interests)
    redraw: set[int] = set()
    anchors: set[int] = set()
    partners: dict[int, set[int]] = {}
    for x, y in colluding_pairs:
        partners.setdefault(x, set()).add(y)
        partners.setdefault(y, set()).add(x)
        if x in redraw or y in redraw:
            continue
        # Prefer redrawing the colluder endpoint that is not yet an anchor.
        for candidate, other in ((x, y), (y, x)):
            if candidate in colluder_set and candidate not in anchors:
                redraw.add(candidate)
                anchors.add(other)
                break
    for node in sorted(redraw):
        avoid: set[int] = set()
        for partner in partners[node]:
            if partner not in redraw:
                avoid |= out[partner]
        pool = [v for v in range(n_interests) if v not in avoid]
        if not pool:
            continue
        k = min(len(out[node]), len(pool))
        out[node] = frozenset(
            int(v) for v in rng.choice(pool, size=k, replace=False)
        )
    return out


def build_world(
    config: WorldConfig,
    seed: int = 0,
    run_index: int = 0,
    *,
    observability: Observability | None = None,
) -> BuiltWorld:
    """Assemble one fully wired simulation cell.

    ``(seed, run_index)`` key independent RNG streams, so repeated runs of
    the same cell differ while remaining reproducible.  ``observability``
    (optional) is threaded through the simulator, engine and SocialTrust
    stack; it never touches an RNG stream, so an observed run is
    numerically identical to an unobserved one.
    """
    rng = spawn_rng(seed, run_index)
    population = Population.build(
        config.n_nodes,
        rng,
        pretrusted_ids=config.pretrusted_ids,
        malicious_ids=config.colluder_ids,
        n_interests=config.n_interests,
        interests_per_node=config.interests_per_node,
        capacity=config.capacity,
        malicious_authentic_prob=config.colluder_b,
    )
    interests = [spec.interests for spec in population]
    schedule, compromised, colluding_pairs = _build_schedule(config, interests, rng)
    if config.colluder_low_interest_overlap and colluding_pairs:
        interests = _redraw_low_overlap_interests(
            interests,
            colluding_pairs,
            set(config.colluder_ids),
            config.n_interests,
            rng,
        )
        population = Population(
            [replace(spec, interests=interests[spec.node_id]) for spec in population]
        )
    overlay = InterestOverlay(interests, config.n_interests)
    # The colluding cliques sit at social distance 1; compromised
    # pre-trusted nodes are pinned to distance 1 from their partner too.
    network = paper_social_network(
        config.n_nodes,
        config.colluder_ids,
        rng,
        colluder_distance=config.colluder_distance,
    )
    if compromised:
        # Re-generate with the extra distance-1 pinnings.
        from repro.social.generators import assigned_distance_matrix
        from repro.social.graph import Relationship

        colluder_pairs = [
            (a, b)
            for ai, a in enumerate(config.colluder_ids)
            for b in config.colluder_ids[ai + 1 :]
        ]
        pinned = colluder_pairs + [
            (p, c) for (p, c) in colluding_pairs if p in compromised
        ]
        distances = assigned_distance_matrix(
            config.n_nodes, rng, unit_distance_pairs=pinned
        )
        network = AssignedSocialNetwork(distances)
        colluder_set = set(config.colluder_ids) | set(compromised)
        for i in range(config.n_nodes):
            for j in range(i + 1, config.n_nodes):
                if distances[i, j] != 1:
                    continue
                if i in colluder_set and j in colluder_set:
                    count = int(rng.integers(3, 6))
                else:
                    count = int(rng.integers(1, 3))
                network.set_relationships(i, j, [Relationship()] * count)
    interactions = InteractionLedger(config.n_nodes)
    profiles = InterestProfiles(config.n_nodes, config.n_interests)
    for spec in population:
        profiles.set_declared(spec.node_id, spec.interests)
    if config.falsified_social_info:
        falsify_single_relationship(network, colluding_pairs)
        groups = [[a, b] for a, b in colluding_pairs]
        falsify_identical_interests(
            profiles,
            groups,
            rng,
            set_size_range=(1, min(10, config.n_interests)),
        )
    injector = None
    if config.faults is not None or config.chaos is not None:
        fault_config = config.faults if config.faults is not None else FaultConfig()
        # A dedicated stream (0xFA) keyed next to the simulation's own:
        # fault randomness never perturbs the simulation RNG, so a
        # zero-rate injector run stays bit-identical to an injector-free
        # one (and a chaos run diffs cleanly against its fault-free twin).
        fault_rng = spawn_rng(seed, run_index, 0xFA)
        if config.chaos is not None and not config.chaos.empty:
            fault_schedule = config.chaos.to_schedule(fault_config)
        else:
            fault_schedule = FaultSchedule(fault_config, fault_rng)
        injector = FaultInjector(
            config.n_nodes,
            config=fault_config,
            rng=fault_rng,
            schedule=fault_schedule,
        )
    system = _build_system(
        config, network, interactions, profiles, observability, injector
    )
    simulation = Simulation(
        population,
        overlay,
        system,
        rng,
        config=SimulationConfig(
            simulation_cycles=config.simulation_cycles,
            query_cycles_per_simulation_cycle=config.query_cycles,
            selection_policy=config.selection_policy,
            selection_exploration=config.selection_exploration,
            engine=config.engine,
        ),
        collusion=schedule,
        interactions=interactions,
        profiles=profiles,
        fault_injector=injector,
        observability=observability,
    )
    return BuiltWorld(
        config=config,
        simulation=simulation,
        system=system,
        population=population,
        social_network=network,
        interactions=interactions,
        profiles=profiles,
        collusion=schedule,
        compromised_pretrusted=compromised,
        observability=observability,
    )
