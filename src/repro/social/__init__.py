"""Social-network substrate.

This package models the "personal network" / "business network" pair the
paper observes in Overstock and the social structures SocialTrust consumes:

* :mod:`repro.social.graph` — friendship graphs with typed, weighted
  relationships (the ``m(i,j)`` and ``w_dl`` inputs of Eqs. (2) and (10)),
  plus the assigned-distance network used by the paper's experiment setup.
* :mod:`repro.social.interactions` — the directed interaction-frequency
  ledger (``f(i,j)`` in Eq. (2)).
* :mod:`repro.social.interests` — per-node interest sets and request-weighted
  interest vectors (``V_i`` and ``w_s(i,l)`` in Eqs. (7) and (11)).
* :mod:`repro.social.paths` — BFS distances, friend-of-friend sets.
* :mod:`repro.social.generators` — synthetic topology builders.
"""

from repro.social.construction import SocialNetworkBuilder
from repro.social.graph import (
    AssignedSocialNetwork,
    Relationship,
    SocialGraph,
    SocialView,
)
from repro.social.interactions import InteractionLedger, SparseInteractionLedger
from repro.social.metrics import GraphSummary, summarize_graph
from repro.social.interests import InterestProfiles
from repro.social.paths import bfs_distances, common_friends, shortest_path

__all__ = [
    "SocialNetworkBuilder",
    "AssignedSocialNetwork",
    "Relationship",
    "SocialGraph",
    "SocialView",
    "InteractionLedger",
    "SparseInteractionLedger",
    "GraphSummary",
    "summarize_graph",
    "InterestProfiles",
    "bfs_distances",
    "common_friends",
    "shortest_path",
]
