"""Per-node interest sets and request-weighted interest vectors.

Two views of a node's interests coexist, and keeping them separate is the
point of the paper's Section 4.4 hardening:

* the **declared** interest set — what the node's profile claims
  (``V_i`` in Eq. (7)); colluders can falsify this freely;
* the **behavioural** request weights — the fraction of the node's actual
  resource requests landing on each interest (``w_s(i,l)`` in Eq. (11));
  these are observed by the system and cannot be faked without actually
  issuing requests.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

__all__ = ["InterestProfiles"]


class InterestProfiles:
    """Declared interest sets plus behavioural request counters for all nodes."""

    def __init__(self, n_nodes: int, n_interests: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if n_interests <= 0:
            raise ValueError(f"n_interests must be positive, got {n_interests}")
        self._n = int(n_nodes)
        self._k = int(n_interests)
        self._declared: list[frozenset[int]] = [frozenset() for _ in range(self._n)]
        self._requests = np.zeros((self._n, self._k), dtype=np.float64)

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def n_interests(self) -> int:
        return self._k

    # -- declared profile ---------------------------------------------------

    def set_declared(self, node: int, interests: Iterable[int]) -> None:
        """Set the declared interest set of ``node`` (replaces any previous)."""
        vals = frozenset(int(v) for v in interests)
        for v in vals:
            if not 0 <= v < self._k:
                raise ValueError(f"interest {v} out of range [0, {self._k})")
        if not vals:
            raise ValueError("declared interest set must be non-empty")
        self._declared[node] = vals

    def declared(self, node: int) -> frozenset[int]:
        return self._declared[node]

    # -- behavioural requests -----------------------------------------------

    def record_request(self, node: int, interest: int, count: float = 1.0) -> None:
        """Record that ``node`` issued ``count`` requests on ``interest``."""
        if not 0 <= interest < self._k:
            raise ValueError(f"interest {interest} out of range [0, {self._k})")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._requests[node, interest] += count

    def request_counts(self, node: int) -> np.ndarray:
        """Copy of the raw per-interest request counts of ``node``."""
        return self._requests[node].copy()

    def request_weights(self, node: int) -> np.ndarray:
        """``w_s(node, l)`` — share of the node's requests per interest.

        All-zero when the node has issued no requests yet.
        """
        row = self._requests[node]
        total = row.sum()
        if total == 0.0:
            return np.zeros(self._k)
        return row / total

    def request_weight_matrix(self) -> np.ndarray:
        """Row-normalised request-share matrix for all nodes (zero rows kept)."""
        totals = self._requests.sum(axis=1, keepdims=True)
        return np.divide(
            self._requests,
            totals,
            out=np.zeros_like(self._requests),
            where=totals > 0,
        )

    def behavioural_interests(self, node: int) -> frozenset[int]:
        """Interests the node has actually requested at least once."""
        return frozenset(np.flatnonzero(self._requests[node] > 0).tolist())

    def declared_matrix(self) -> np.ndarray:
        """Boolean ``n x k`` membership matrix of the declared sets."""
        out = np.zeros((self._n, self._k), dtype=bool)
        for i, vals in enumerate(self._declared):
            for v in vals:
                out[i, v] = True
        return out

    def summary(self) -> Mapping[str, float]:
        """Aggregate statistics used in docs/tests."""
        sizes = np.array([len(v) for v in self._declared], dtype=float)
        return {
            "mean_declared_size": float(sizes.mean()),
            "total_requests": float(self._requests.sum()),
        }
