"""Per-node interest sets and request-weighted interest vectors.

Two views of a node's interests coexist, and keeping them separate is the
point of the paper's Section 4.4 hardening:

* the **declared** interest set — what the node's profile claims
  (``V_i`` in Eq. (7)); colluders can falsify this freely;
* the **behavioural** request weights — the fraction of the node's actual
  resource requests landing on each interest (``w_s(i,l)`` in Eq. (11));
  these are observed by the system and cannot be faked without actually
  issuing requests.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

__all__ = ["InterestProfiles"]


class InterestProfiles:
    """Declared interest sets plus behavioural request counters for all nodes."""

    def __init__(self, n_nodes: int, n_interests: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if n_interests <= 0:
            raise ValueError(f"n_interests must be positive, got {n_interests}")
        self._n = int(n_nodes)
        self._k = int(n_interests)
        self._declared: list[frozenset[int]] = [frozenset() for _ in range(self._n)]
        self._requests = np.zeros((self._n, self._k), dtype=np.float64)
        self._version = 0
        self._row_versions = np.zeros(self._n, dtype=np.int64)
        self._declared_version = 0

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def n_interests(self) -> int:
        return self._k

    # -- change tracking ------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every behavioural-request mutation."""
        return self._version

    @property
    def declared_version(self) -> int:
        """Monotonic counter bumped every time a declared set is replaced."""
        return self._declared_version

    def rows_changed_since(self, version: int) -> np.ndarray:
        """Ascending ids of nodes whose request counters changed after
        ``version`` was current."""
        return np.flatnonzero(self._row_versions > version)

    def _touch_rows(self, rows: np.ndarray | list[int]) -> None:
        self._version += 1
        self._row_versions[rows] = self._version

    # -- declared profile ---------------------------------------------------

    def set_declared(self, node: int, interests: Iterable[int]) -> None:
        """Set the declared interest set of ``node`` (replaces any previous)."""
        vals = frozenset(int(v) for v in interests)
        for v in vals:
            if not 0 <= v < self._k:
                raise ValueError(f"interest {v} out of range [0, {self._k})")
        if not vals:
            raise ValueError("declared interest set must be non-empty")
        self._declared[node] = vals
        self._declared_version += 1

    def declared(self, node: int) -> frozenset[int]:
        return self._declared[node]

    # -- behavioural requests -----------------------------------------------

    def record_request(self, node: int, interest: int, count: float = 1.0) -> None:
        """Record that ``node`` issued ``count`` requests on ``interest``."""
        if not 0 <= interest < self._k:
            raise ValueError(f"interest {interest} out of range [0, {self._k})")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._requests[node, interest] += count
        self._touch_rows([node])

    def record_requests(
        self,
        nodes: np.ndarray,
        interests: np.ndarray,
        counts: np.ndarray | float = 1.0,
    ) -> None:
        """Batched :meth:`record_request`; bit-identical to the scalar loop
        (``np.add.at`` is unbuffered and the increments are exact integers).
        """
        i = np.asarray(nodes, dtype=np.int64)
        l = np.asarray(interests, dtype=np.int64)
        if i.shape != l.shape or i.ndim != 1:
            raise ValueError("nodes and interests must be 1-D arrays of equal length")
        if i.size == 0:
            return
        c = np.broadcast_to(np.asarray(counts, dtype=np.float64), i.shape)
        if np.any((l < 0) | (l >= self._k)):
            raise ValueError(f"interest out of range [0, {self._k})")
        if np.any(c <= 0):
            raise ValueError("counts must be positive")
        np.add.at(self._requests, (i, l), c)
        self._touch_rows(np.unique(i))

    def request_counts(self, node: int) -> np.ndarray:
        """Copy of the raw per-interest request counts of ``node``."""
        return self._requests[node].copy()

    def request_weights(self, node: int) -> np.ndarray:
        """``w_s(node, l)`` — share of the node's requests per interest.

        All-zero when the node has issued no requests yet.
        """
        row = self._requests[node]
        total = row.sum()
        if total == 0.0:
            return np.zeros(self._k)
        return row / total

    def request_weight_matrix(self) -> np.ndarray:
        """Row-normalised request-share matrix for all nodes (zero rows kept)."""
        totals = self._requests.sum(axis=1, keepdims=True)
        return np.divide(
            self._requests,
            totals,
            out=np.zeros_like(self._requests),
            where=totals > 0,
        )

    def behavioural_interests(self, node: int) -> frozenset[int]:
        """Interests the node has actually requested at least once."""
        return frozenset(np.flatnonzero(self._requests[node] > 0).tolist())

    def declared_matrix(self) -> np.ndarray:
        """Boolean ``n x k`` membership matrix of the declared sets."""
        out = np.zeros((self._n, self._k), dtype=bool)
        for i, vals in enumerate(self._declared):
            for v in vals:
                out[i, v] = True
        return out

    def summary(self) -> Mapping[str, float]:
        """Aggregate statistics used in docs/tests."""
        sizes = np.array([len(v) for v in self._declared], dtype=float)
        return {
            "mean_declared_size": float(sizes.mean()),
            "total_requests": float(self._requests.sum()),
        }

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Declared sets, request counters, and all three version
        counters (they key the Ωs cache)."""
        return {
            "declared": [sorted(vals) for vals in self._declared],
            "requests": self._requests.copy(),
            "version": self._version,
            "row_versions": self._row_versions.copy(),
            "declared_version": self._declared_version,
        }

    def restore_state(self, state: dict) -> None:
        declared = state["declared"]
        if len(declared) != self._n:
            raise ValueError(
                f"declared sets cover {len(declared)} nodes, store has {self._n}"
            )
        self._declared = [frozenset(int(v) for v in vals) for vals in declared]
        requests = np.asarray(state["requests"], dtype=np.float64)
        if requests.shape != self._requests.shape:
            raise ValueError(
                f"requests shape {requests.shape} != {self._requests.shape}"
            )
        self._requests = requests.copy()
        self._version = int(state["version"])
        self._row_versions = np.asarray(state["row_versions"], dtype=np.int64).copy()
        self._declared_version = int(state["declared_version"])
