"""Graph statistics for social networks.

Descriptive statistics over any :class:`~repro.social.graph.SocialView`:
degree distributions, clustering, path lengths.  Used to sanity-check the
synthetic topologies against the qualitative properties the paper's trace
exhibits (heavy-tailed friend counts, short distances, homophily-driven
clustering) and exposed for users validating their own graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.social.graph import SocialView
from repro.social.paths import bfs_distances

__all__ = [
    "GraphSummary",
    "degree_distribution",
    "clustering_coefficient",
    "mean_path_length",
    "summarize_graph",
]


def degree_distribution(view: SocialView) -> np.ndarray:
    """Per-node friend counts."""
    return np.array(
        [len(view.friends(i)) for i in range(view.n_nodes)], dtype=np.int64
    )


def clustering_coefficient(view: SocialView, node: int) -> float:
    """Fraction of the node's friend pairs that are themselves friends.

    0.0 for nodes with fewer than two friends (no triangle possible).
    """
    friends = sorted(view.friends(node))
    k = len(friends)
    if k < 2:
        return 0.0
    links = 0
    for idx, a in enumerate(friends):
        for b in friends[idx + 1 :]:
            if view.are_adjacent(a, b):
                links += 1
    return 2.0 * links / (k * (k - 1))


def mean_path_length(
    view: SocialView, *, sample_sources: int | None = None, seed: int = 0
) -> float:
    """Mean hop distance over reachable pairs.

    ``sample_sources`` caps the number of BFS roots (deterministically
    spread across the id range) for large graphs; ``None`` uses every node.
    Returns ``nan`` when no pair is reachable.
    """
    n = view.n_nodes
    if sample_sources is None or sample_sources >= n:
        sources = range(n)
    else:
        if sample_sources < 1:
            raise ValueError("sample_sources must be >= 1")
        sources = np.linspace(0, n - 1, sample_sources, dtype=np.int64)
    total = 0.0
    pairs = 0
    for s in sources:
        for node, d in bfs_distances(view, int(s)).items():
            if node != s:
                total += d
                pairs += 1
    if pairs == 0:
        return float("nan")
    return total / pairs


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of one social graph."""

    n_nodes: int
    n_edges: int
    mean_degree: float
    max_degree: int
    mean_clustering: float
    mean_path_length: float


def summarize_graph(
    view: SocialView, *, path_sample_sources: int | None = 50, seed: int = 0
) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``view``."""
    degrees = degree_distribution(view)
    clustering = np.array(
        [clustering_coefficient(view, i) for i in range(view.n_nodes)]
    )
    return GraphSummary(
        n_nodes=view.n_nodes,
        n_edges=int(degrees.sum()) // 2,
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        mean_clustering=float(clustering.mean()),
        mean_path_length=mean_path_length(
            view, sample_sources=path_sample_sources, seed=seed
        ),
    )
