"""Friendship graphs with typed, weighted social relationships.

Two concrete social-network representations are provided, both satisfying
the :class:`SocialView` protocol that :mod:`repro.core.closeness` consumes:

:class:`SocialGraph`
    A genuine undirected graph.  Distances are BFS hop counts, friend sets
    are adjacency sets.  Used by the synthetic Overstock trace substrate and
    available to library users who bring real social graphs.

:class:`AssignedSocialNetwork`
    The representation matching the paper's experimental setup (Section 5.1),
    where pairwise social distances are *assigned* (colluder pairs at
    distance 1, all other pairs drawn from [1, 3]) rather than derived from
    an explicit edge set.  Adjacency is defined as assigned distance 1, and
    common friends are nodes at distance 1 from both endpoints, so the
    SocialTrust formulas operate exactly as they would on a real graph.

Each adjacent pair carries a list of :class:`Relationship` records: the count
``m(i,j)`` feeds Eq. (2) and the sorted weights feed the hardened Eq. (10)
(``sum_l lambda^(l-1) * w_dl``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "Relationship",
    "SocialView",
    "SocialGraph",
    "AssignedSocialNetwork",
    "UNREACHABLE",
]

#: Sentinel distance for disconnected pairs.
UNREACHABLE: int = -1


@dataclass(frozen=True)
class Relationship:
    """A typed social tie between two adjacent users.

    Parameters
    ----------
    kind:
        Free-form label, e.g. ``"friend"``, ``"colleague"``, ``"kin"``.
    weight:
        Strength of the tie used by the hardened closeness Eq. (10).
        Kinship, for instance, should outweigh mere friendship.
    """

    kind: str = "friend"
    weight: float = 1.0

    def __post_init__(self) -> None:
        check_positive("relationship weight", self.weight)


def relationship_factor(
    relationships: Sequence[Relationship],
    *,
    hardened: bool,
    lambda_scaling: float,
) -> float:
    """Return the relationship multiplier of the closeness formula.

    Plain mode returns ``m(i,j)`` — the number of relationships (Eq. (2)).
    Hardened mode returns ``sum_l lambda^(l-1) * w_dl`` over relationship
    weights sorted in descending order (Eq. (10)), which exponentially
    discounts additional low-value ties so colluders cannot inflate
    closeness by piling on cheap relationships.
    """
    if not relationships:
        return 0.0
    if not hardened:
        return float(len(relationships))
    weights = sorted((rel.weight for rel in relationships), reverse=True)
    scale = 1.0
    total = 0.0
    for w in weights:
        total += scale * w
        scale *= lambda_scaling
    return total


@runtime_checkable
class SocialView(Protocol):
    """What the SocialTrust closeness computation needs from a social network."""

    @property
    def n_nodes(self) -> int: ...

    def are_adjacent(self, i: int, j: int) -> bool: ...

    def friends(self, i: int) -> frozenset[int]: ...

    def relationships(self, i: int, j: int) -> tuple[Relationship, ...]: ...

    def distance(self, i: int, j: int) -> int:
        """Hop distance; ``UNREACHABLE`` when no path exists."""
        ...

    def path(self, i: int, j: int) -> list[int]:
        """One shortest path ``[i, ..., j]``; empty list when none exists."""
        ...


def _check_node(n_nodes: int, node: int) -> int:
    if not 0 <= node < n_nodes:
        raise IndexError(f"node {node} out of range [0, {n_nodes})")
    return node


def _check_pair(n_nodes: int, i: int, j: int) -> tuple[int, int]:
    _check_node(n_nodes, i)
    _check_node(n_nodes, j)
    if i == j:
        raise ValueError(f"self-pair ({i}, {i}) has no social closeness")
    return (i, j) if i < j else (j, i)


class SocialGraph:
    """An undirected friendship graph with typed weighted edges.

    Nodes are dense integer ids ``0..n_nodes-1``.  The graph is mutable:
    edges (friendships) can be added with one or more relationships, and
    additional relationships can be attached to existing edges.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._n = int(n_nodes)
        self._adj: list[set[int]] = [set() for _ in range(self._n)]
        self._rels: dict[tuple[int, int], list[Relationship]] = {}

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def n_edges(self) -> int:
        return len(self._rels)

    def add_friendship(
        self,
        i: int,
        j: int,
        relationships: Iterable[Relationship] | None = None,
    ) -> None:
        """Create (or extend) the friendship edge between ``i`` and ``j``.

        Repeated calls accumulate relationships on the same edge.  When
        ``relationships`` is omitted a single default ``friend`` tie is added
        only if the edge does not already exist.
        """
        key = _check_pair(self._n, i, j)
        new = list(relationships) if relationships is not None else []
        if key not in self._rels:
            self._adj[i].add(j)
            self._adj[j].add(i)
            self._rels[key] = new if new else [Relationship()]
        elif new:
            self._rels[key].extend(new)

    def remove_friendship(self, i: int, j: int) -> None:
        key = _check_pair(self._n, i, j)
        if key not in self._rels:
            raise KeyError(f"no friendship between {i} and {j}")
        del self._rels[key]
        self._adj[i].discard(j)
        self._adj[j].discard(i)

    def are_adjacent(self, i: int, j: int) -> bool:
        _check_node(self._n, i)
        _check_node(self._n, j)
        return j in self._adj[i]

    def friends(self, i: int) -> frozenset[int]:
        _check_node(self._n, i)
        return frozenset(self._adj[i])

    def degree(self, i: int) -> int:
        _check_node(self._n, i)
        return len(self._adj[i])

    def relationships(self, i: int, j: int) -> tuple[Relationship, ...]:
        key = _check_pair(self._n, i, j)
        return tuple(self._rels.get(key, ()))

    def distance(self, i: int, j: int) -> int:
        """BFS hop distance between ``i`` and ``j`` (``UNREACHABLE`` if none)."""
        _check_node(self._n, i)
        _check_node(self._n, j)
        if i == j:
            return 0
        frontier = {i}
        seen = {i}
        hops = 0
        while frontier:
            hops += 1
            nxt: set[int] = set()
            for u in frontier:
                for v in self._adj[u]:
                    if v == j:
                        return hops
                    if v not in seen:
                        seen.add(v)
                        nxt.add(v)
            frontier = nxt
        return UNREACHABLE

    def path(self, i: int, j: int) -> list[int]:
        """One shortest path from ``i`` to ``j`` (BFS parents); [] if none."""
        _check_node(self._n, i)
        _check_node(self._n, j)
        if i == j:
            return [i]
        parent: dict[int, int] = {i: i}
        frontier = [i]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self._adj[u]:
                    if v in parent:
                        continue
                    parent[v] = u
                    if v == j:
                        out = [j]
                        while out[-1] != i:
                            out.append(parent[out[-1]])
                        out.reverse()
                        return out
                    nxt.append(v)
            frontier = nxt
        return []

    def edges(self) -> Iterable[tuple[int, int]]:
        return iter(self._rels.keys())

    def to_numpy_adjacency(self) -> np.ndarray:
        """Dense boolean adjacency matrix (n x n); useful for vectorised stats."""
        out = np.zeros((self._n, self._n), dtype=bool)
        for (a, b) in self._rels:
            out[a, b] = out[b, a] = True
        return out

    def adjacency_csr(self) -> "sparse.csr_matrix":
        """Boolean adjacency as a CSR matrix, built O(n + m) from the edge
        set (never densified — this is the 10^5-node entry point for the
        sparse coefficient backend)."""
        from scipy import sparse

        m = len(self._rels)
        rows = np.empty(2 * m, dtype=np.int64)
        cols = np.empty(2 * m, dtype=np.int64)
        for k, (a, b) in enumerate(self._rels):
            rows[2 * k], cols[2 * k] = a, b
            rows[2 * k + 1], cols[2 * k + 1] = b, a
        data = np.ones(2 * m, dtype=bool)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(self._n, self._n), dtype=bool
        )


class AssignedSocialNetwork:
    """A social network defined by an explicit pairwise distance matrix.

    The paper's evaluation *assigns* social distances (colluders at
    distance 1, all other pairs uniform over [1, 3]) instead of deriving
    them from edges.  This class stores that symmetric distance matrix and
    derives everything :class:`SocialView` requires from it:

    * adjacency  <=> assigned distance 1;
    * ``friends(i)``  = nodes at distance 1 from ``i``;
    * ``path(i, j)`` = BFS over the induced adjacency graph (used only by the
      min-over-path closeness fallback when no common friend exists).

    Relationship lists are attached per adjacent pair, defaulting to a
    configurable count drawn by the generators.
    """

    def __init__(self, distances: np.ndarray) -> None:
        d = np.asarray(distances)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ValueError(f"distance matrix must be square, got {d.shape}")
        if not np.array_equal(d, d.T):
            raise ValueError("distance matrix must be symmetric")
        if np.any(np.diag(d) != 0):
            raise ValueError("self-distances must be 0")
        off = d[~np.eye(d.shape[0], dtype=bool)]
        if np.any((off < 1) & (off != UNREACHABLE)):
            raise ValueError("off-diagonal distances must be >= 1 or UNREACHABLE")
        self._d = d.astype(np.int64, copy=True)
        self._n = d.shape[0]
        adjacency = self._d == 1
        self._friends = [
            frozenset(np.flatnonzero(adjacency[i]).tolist()) for i in range(self._n)
        ]
        self._rels: dict[tuple[int, int], list[Relationship]] = {}

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def distance_matrix(self) -> np.ndarray:
        """Read-only view of the assigned distance matrix."""
        view = self._d.view()
        view.flags.writeable = False
        return view

    def are_adjacent(self, i: int, j: int) -> bool:
        _check_node(self._n, i)
        _check_node(self._n, j)
        return bool(self._d[i, j] == 1)

    def friends(self, i: int) -> frozenset[int]:
        _check_node(self._n, i)
        return self._friends[i]

    def set_relationships(
        self, i: int, j: int, relationships: Iterable[Relationship]
    ) -> None:
        """Attach the relationship list for an *adjacent* pair."""
        key = _check_pair(self._n, i, j)
        if self._d[i, j] != 1:
            raise ValueError(
                f"pair ({i}, {j}) has distance {self._d[i, j]}; relationships "
                "can only be attached to adjacent (distance-1) pairs"
            )
        rels = list(relationships)
        if not rels:
            raise ValueError("relationship list must be non-empty")
        self._rels[key] = rels

    def relationships(self, i: int, j: int) -> tuple[Relationship, ...]:
        key = _check_pair(self._n, i, j)
        if self._d[i, j] != 1:
            return ()
        return tuple(self._rels.get(key, (Relationship(),)))

    def distance(self, i: int, j: int) -> int:
        _check_node(self._n, i)
        _check_node(self._n, j)
        return int(self._d[i, j])

    def adjacency_csr(self) -> "sparse.csr_matrix":
        """Boolean adjacency (assigned distance 1) as a CSR matrix."""
        from scipy import sparse

        return sparse.csr_matrix(self._d == 1)

    def path(self, i: int, j: int) -> list[int]:
        """Shortest path over the distance-1 adjacency graph; [] if none."""
        _check_node(self._n, i)
        _check_node(self._n, j)
        if i == j:
            return [i]
        parent: dict[int, int] = {i: i}
        frontier = [i]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for v in self._friends[u]:
                    if v in parent:
                        continue
                    parent[v] = u
                    if v == j:
                        out = [j]
                        while out[-1] != i:
                            out.append(parent[out[-1]])
                        out.reverse()
                        return out
                    nxt.append(v)
            frontier = nxt
        return []
