"""Synthetic social-topology builders.

Builders for the two social-network representations:

* :func:`paper_social_network` — the assigned-distance network of the
  paper's evaluation (Section 5.1): colluder pairs at distance 1 with 3-5
  same-weight relationships, all other pairs at a distance uniform over
  [1, 3] with 1-2 relationships when adjacent.
* :func:`preferential_attachment_graph` — a scale-free friendship graph for
  the Overstock trace substrate (social degree distributions are heavy
  tailed; Fig. 2 relies on friend counts varying over orders of magnitude).
* :func:`erdos_renyi_graph` — a plain random graph, mostly for tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.social.graph import AssignedSocialNetwork, Relationship, SocialGraph
from repro.utils.rng import RngStream

__all__ = [
    "assigned_distance_matrix",
    "paper_social_network",
    "preferential_attachment_graph",
    "erdos_renyi_graph",
]


def assigned_distance_matrix(
    n_nodes: int,
    rng: RngStream,
    *,
    distance_choices: Sequence[int] = (1, 2, 3),
    unit_distance_pairs: Sequence[tuple[int, int]] = (),
) -> np.ndarray:
    """Symmetric matrix of assigned pairwise distances.

    Every unordered pair receives a distance drawn uniformly from
    ``distance_choices``; pairs listed in ``unit_distance_pairs`` are then
    forced to distance 1 (the paper pins colluder pairs to distance 1).
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    choices = np.asarray(distance_choices, dtype=np.int64)
    if choices.size == 0 or np.any(choices < 1):
        raise ValueError("distance_choices must be non-empty and >= 1")
    d = np.zeros((n_nodes, n_nodes), dtype=np.int64)
    iu = np.triu_indices(n_nodes, k=1)
    draws = rng.choice(choices, size=iu[0].size)
    d[iu] = draws
    d.T[iu] = draws
    for i, j in unit_distance_pairs:
        d[i, j] = d[j, i] = 1
    return d


def paper_social_network(
    n_nodes: int,
    colluder_ids: Sequence[int],
    rng: RngStream,
    *,
    normal_relationship_range: tuple[int, int] = (1, 2),
    colluder_relationship_range: tuple[int, int] = (3, 5),
    relationship_weight: float = 1.0,
    colluder_distance: int = 1,
) -> AssignedSocialNetwork:
    """The social network of the paper's experimental setup.

    Colluder pairs sit at social distance ``colluder_distance`` (1 in the
    main experiments; Fig. 20 sweeps 1-3) and, when adjacent, carry 3-5
    relationships of identical weight; all other pairs get a distance
    uniform over [1, 3] and, when adjacent, 1-2 relationships.
    """
    if colluder_distance < 1:
        raise ValueError(f"colluder_distance must be >= 1, got {colluder_distance}")
    colluders = sorted(set(int(c) for c in colluder_ids))
    for c in colluders:
        if not 0 <= c < n_nodes:
            raise ValueError(f"colluder id {c} out of range [0, {n_nodes})")
    colluder_pairs = [
        (a, b) for ai, a in enumerate(colluders) for b in colluders[ai + 1 :]
    ]
    distances = assigned_distance_matrix(n_nodes, rng)
    for i, j in colluder_pairs:
        distances[i, j] = distances[j, i] = colluder_distance
    net = AssignedSocialNetwork(distances)
    colluder_set = set(colluders)
    lo_n, hi_n = normal_relationship_range
    lo_c, hi_c = colluder_relationship_range
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if distances[i, j] != 1:
                continue
            if i in colluder_set and j in colluder_set:
                count = int(rng.integers(lo_c, hi_c + 1))
            else:
                count = int(rng.integers(lo_n, hi_n + 1))
            net.set_relationships(
                i, j, [Relationship(weight=relationship_weight)] * count
            )
    return net


def preferential_attachment_graph(
    n_nodes: int,
    rng: RngStream,
    *,
    edges_per_node: int = 3,
) -> SocialGraph:
    """Barabási–Albert-style scale-free friendship graph.

    Each arriving node attaches to ``edges_per_node`` existing nodes chosen
    with probability proportional to their current degree (plus one, so
    isolated seeds remain reachable).
    """
    if edges_per_node < 1:
        raise ValueError(f"edges_per_node must be >= 1, got {edges_per_node}")
    if n_nodes <= edges_per_node:
        raise ValueError("n_nodes must exceed edges_per_node")
    g = SocialGraph(n_nodes)
    degrees = np.zeros(n_nodes, dtype=np.float64)
    # Seed clique keeps early attachment well defined.
    seed = edges_per_node + 1
    for i in range(seed):
        for j in range(i + 1, seed):
            g.add_friendship(i, j)
            degrees[i] += 1
            degrees[j] += 1
    for node in range(seed, n_nodes):
        weights = degrees[:node] + 1.0
        weights = weights / weights.sum()
        targets = rng.choice(node, size=edges_per_node, replace=False, p=weights)
        for t in targets:
            g.add_friendship(node, int(t))
            degrees[node] += 1
            degrees[t] += 1
    return g


def erdos_renyi_graph(n_nodes: int, edge_prob: float, rng: RngStream) -> SocialGraph:
    """G(n, p) friendship graph."""
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError(f"edge_prob must be in [0, 1], got {edge_prob}")
    g = SocialGraph(n_nodes)
    iu = np.triu_indices(n_nodes, k=1)
    mask = rng.random(iu[0].size) < edge_prob
    for a, b in zip(iu[0][mask], iu[1][mask]):
        g.add_friendship(int(a), int(b))
    return g
