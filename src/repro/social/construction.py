"""Incremental social-network construction — the paper's Section-4 plugin.

"If a P2P network already has a social network ... SocialTrust can directly
use the social network.  Otherwise, SocialTrust provides a plugin for the
social network construction.  It requires users to enter their interest
information and establish friend relationships ... SocialTrust maintains a
record of interactions among users."

:class:`SocialNetworkBuilder` is that plugin: an append-only event API a
live P2P application calls as things happen — users join, declare
interests, befriend each other, request resources, rate transactions —
which maintains exactly the three stores the SocialTrust stack consumes
(a :class:`~repro.social.graph.SocialGraph`, an
:class:`~repro.social.interactions.InteractionLedger`, an
:class:`~repro.social.interests.InterestProfiles`) plus a
:class:`~repro.reputation.ledger.RatingLedger` for the current reputation
interval.

Capacity grows on demand: node ids just need to be registered before use;
the fixed-size NumPy stores are re-allocated geometrically under the hood.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.reputation.base import Rating
from repro.reputation.ledger import RatingLedger
from repro.social.graph import Relationship, SocialGraph
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles

__all__ = ["SocialNetworkBuilder"]


class SocialNetworkBuilder:
    """Append-only event API building the SocialTrust input stores.

    Parameters
    ----------
    n_interests:
        Size of the interest-category universe.
    initial_capacity:
        Node slots pre-allocated; grows geometrically as users register.
    """

    def __init__(self, n_interests: int, *, initial_capacity: int = 16) -> None:
        if n_interests <= 0:
            raise ValueError(f"n_interests must be positive, got {n_interests}")
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self._k = int(n_interests)
        self._capacity = int(initial_capacity)
        self._n = 0
        self._graph = SocialGraph(self._capacity)
        self._interactions = InteractionLedger(self._capacity)
        self._profiles = InterestProfiles(self._capacity, self._k)
        self._ratings = RatingLedger(self._capacity)

    # -- registration ---------------------------------------------------------

    @property
    def n_users(self) -> int:
        return self._n

    def register_user(self, interests: Iterable[int]) -> int:
        """Add a user with its declared interests; returns the new user id."""
        user_id = self._n
        if user_id >= self._capacity:
            self._grow(max(self._capacity * 2, user_id + 1))
        self._n += 1
        self._profiles.set_declared(user_id, interests)
        return user_id

    def _grow(self, new_capacity: int) -> None:
        old_graph = self._graph
        old_interactions = self._interactions
        old_profiles = self._profiles
        old_ratings = self._ratings

        self._graph = SocialGraph(new_capacity)
        for a, b in old_graph.edges():
            self._graph.add_friendship(a, b, old_graph.relationships(a, b))

        self._interactions = InteractionLedger(new_capacity)
        counts = old_interactions.counts_matrix()
        nz = np.argwhere(counts > 0)
        for i, j in nz:
            self._interactions.record(int(i), int(j), float(counts[i, j]))

        self._profiles = InterestProfiles(new_capacity, self._k)
        for node in range(self._n):
            declared = old_profiles.declared(node)
            if declared:
                self._profiles.set_declared(node, declared)
            requests = old_profiles.request_counts(node)
            for interest in np.flatnonzero(requests > 0):
                self._profiles.record_request(
                    node, int(interest), float(requests[interest])
                )

        self._ratings = RatingLedger(new_capacity)
        pending = old_ratings.peek()
        for i, j in np.argwhere(pending.pos_counts + pending.neg_counts > 0):
            i, j = int(i), int(j)
            count = pending.pos_counts[i, j] + pending.neg_counts[i, j]
            value = pending.value_sum[i, j] / count
            self._ratings.record_batch(i, j, float(value), int(count))

        self._capacity = new_capacity

    def _check_user(self, user: int) -> int:
        if not 0 <= user < self._n:
            raise IndexError(f"unknown user {user}; register users first")
        return user

    # -- events -----------------------------------------------------------------

    def add_friendship(
        self, a: int, b: int, relationships: Iterable[Relationship] | None = None
    ) -> None:
        """Record an accepted friend invitation (optionally typed ties)."""
        self._check_user(a)
        self._check_user(b)
        self._graph.add_friendship(a, b, relationships)

    def record_request(self, requester: int, provider: int, interest: int) -> None:
        """Record a genuine resource request: interaction + interest trace."""
        self._check_user(requester)
        self._check_user(provider)
        self._interactions.record(requester, provider)
        self._profiles.record_request(requester, interest)

    def record_rating(
        self, rater: int, ratee: int, value: float, *, interest: int | None = None
    ) -> None:
        """Record a service rating (counts as an interaction, per the paper)."""
        self._check_user(rater)
        self._check_user(ratee)
        self._ratings.record(
            Rating(rater=rater, ratee=ratee, value=value, interest=interest)
        )
        self._interactions.record(rater, ratee)

    # -- consumption ---------------------------------------------------------

    @property
    def graph(self) -> SocialGraph:
        """The personal network built so far."""
        return self._graph

    @property
    def interactions(self) -> InteractionLedger:
        return self._interactions

    @property
    def profiles(self) -> InterestProfiles:
        return self._profiles

    def drain_interval(self):
        """Close the current reputation interval (for ``system.update``)."""
        return self._ratings.drain()

    def build_socialtrust(self, base_system, config=None):
        """Wrap ``base_system`` with SocialTrust over the built stores.

        The stores must be at their final capacity: register all expected
        users first (or over-provision ``initial_capacity``), because the
        SocialTrust wrapper holds references to the live store objects.
        """
        from repro.core import SocialTrust

        if base_system.n_nodes != self._capacity:
            raise ValueError(
                f"base system covers {base_system.n_nodes} nodes but the "
                f"builder's stores are sized {self._capacity}; construct "
                f"the base system with n_nodes={self._capacity}"
            )
        return SocialTrust(
            base_system, self._graph, self._interactions, self._profiles, config
        )
