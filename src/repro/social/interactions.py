"""Directed interaction-frequency ledger — the ``f(i,j)`` input of Eq. (2).

In a P2P network coupled to a social network, an *interaction* is one node
requesting a resource from (or rating) another.  SocialTrust's closeness
formula normalises the pairwise frequency by the rater's total outgoing
frequency, so colluders cannot raise their closeness to everyone at once:
pumping ``f(i,j)`` for one partner necessarily dilutes the share of every
other partner.

The ledger is a dense ``n x n`` ``float64`` matrix; recording is O(1) and
the share computation is a vectorised row normalisation.

Every mutation bumps a monotonically increasing version counter and stamps
the affected *rows* with it, so downstream consumers (the incremental
:class:`~repro.core.closeness.ClosenessComputer` cache) can ask which
rows' outgoing shares changed since a version they last saw and recompute
only those.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["InteractionLedger", "SparseInteractionLedger"]


class InteractionLedger:
    """Accumulates directed interaction counts between nodes."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._n = int(n_nodes)
        self._counts = np.zeros((self._n, self._n), dtype=np.float64)
        self._version = 0
        self._row_versions = np.zeros(self._n, dtype=np.int64)

    @property
    def n_nodes(self) -> int:
        return self._n

    # -- change tracking ------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation of the ledger."""
        return self._version

    def rows_changed_since(self, version: int) -> np.ndarray:
        """Ascending ids of rows mutated after ``version`` was current."""
        return np.flatnonzero(self._row_versions > version)

    def _touch_rows(self, rows: np.ndarray | list[int]) -> None:
        self._version += 1
        self._row_versions[rows] = self._version

    def record(self, i: int, j: int, count: float = 1.0) -> None:
        """Record ``count`` interactions initiated by ``i`` toward ``j``."""
        if i == j:
            raise ValueError("self-interactions are not meaningful")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._counts[i, j] += count
        self._touch_rows([i])

    def record_many(
        self,
        raters: np.ndarray,
        ratees: np.ndarray,
        counts: np.ndarray | float = 1.0,
    ) -> None:
        """Record a batch of interactions in one vectorised pass.

        Equivalent to ``record(raters[t], ratees[t], counts[t])`` for every
        ``t`` in order — and bit-identical to it: ``np.add.at`` applies the
        unbuffered increments sequentially in index order, and the hot-path
        increments are exact ``float64`` integers anyway.
        """
        i = np.asarray(raters, dtype=np.int64)
        j = np.asarray(ratees, dtype=np.int64)
        if i.shape != j.shape or i.ndim != 1:
            raise ValueError("raters and ratees must be 1-D arrays of equal length")
        if i.size == 0:
            return
        c = np.broadcast_to(np.asarray(counts, dtype=np.float64), i.shape)
        if np.any(i == j):
            raise ValueError("self-interactions are not meaningful")
        if np.any(c <= 0):
            raise ValueError("counts must be positive")
        np.add.at(self._counts, (i, j), c)
        self._touch_rows(np.unique(i))

    def frequency(self, i: int, j: int) -> float:
        """Raw interaction count from ``i`` to ``j``."""
        return float(self._counts[i, j])

    def total_out(self, i: int) -> float:
        """Total outgoing interactions of ``i`` — the Eq. (2) denominator."""
        return float(self._counts[i].sum())

    def row_totals(self) -> np.ndarray:
        """Per-node total outgoing interaction counts, shape ``(n,)``.

        Parity with :meth:`SparseInteractionLedger.row_totals`, so
        consumers (the service's flood instrumentation, reports) can take
        either ledger flavour.
        """
        return self._counts.sum(axis=1)

    def share(self, i: int, j: int) -> float:
        """``f(i,j) / sum_k f(i,k)``; 0 when ``i`` has no interactions."""
        total = self._counts[i].sum()
        if total == 0.0:
            return 0.0
        return float(self._counts[i, j] / total)

    def share_matrix(self) -> np.ndarray:
        """Row-normalised copy of the count matrix (rows with no data stay 0)."""
        totals = self._counts.sum(axis=1, keepdims=True)
        out = np.divide(
            self._counts,
            totals,
            out=np.zeros_like(self._counts),
            where=totals > 0,
        )
        return out

    def share_pairs(self, raters: np.ndarray, ratees: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`share` over pair arrays — the lookup the sparse
        coefficient backend uses so it never materialises the full share
        matrix."""
        i = np.asarray(raters, dtype=np.int64)
        j = np.asarray(ratees, dtype=np.int64)
        totals = self._counts[i].sum(axis=1)
        return np.divide(
            self._counts[i, j],
            totals,
            out=np.zeros(i.shape, dtype=np.float64),
            where=totals > 0,
        )

    def counts_matrix(self) -> np.ndarray:
        """Read-only view of the raw count matrix."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def counts_csr(self) -> sparse.csr_matrix:
        """CSR copy of the count matrix (interop with the sparse backend)."""
        return sparse.csr_matrix(self._counts)

    def decay_nodes(self, nodes: np.ndarray, factor: float) -> None:
        """Age out ``nodes``'s rows and columns by multiplying with ``factor``.

        Used by the churn-aware simulation: a departed peer's interaction
        history decays every cycle it stays offline, so a rejoining peer
        resumes with correspondingly weakened closeness evidence rather
        than stale full-strength history.  Pairs where *both* endpoints
        are offline decay by ``factor**2`` (both sides' evidence is aging).
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"factor must be in [0, 1], got {factor}")
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size == 0 or factor == 1.0:
            return
        # Column scaling shifts the share denominators of every row holding
        # evidence about a decayed node, so those rows are dirty too.
        touched = np.flatnonzero(self._counts[:, idx].any(axis=1))
        self._counts[idx, :] *= factor
        self._counts[:, idx] *= factor
        self._touch_rows(np.union1d(idx, touched))

    def reset(self) -> None:
        self._counts[:] = 0.0
        self._touch_rows(np.arange(self._n))

    def state_dict(self) -> dict:
        """Counts plus both version counters — the versions key the Ωc
        cache, so a checkpoint must carry them verbatim for the resumed
        run's cache hits/misses to replay identically."""
        return {
            "counts": self._counts.copy(),
            "version": self._version,
            "row_versions": self._row_versions.copy(),
        }

    def restore_state(self, state: dict) -> None:
        counts = np.asarray(state["counts"], dtype=np.float64)
        if counts.shape != self._counts.shape:
            raise ValueError(
                f"counts shape {counts.shape} != {self._counts.shape}"
            )
        self._counts = counts.copy()
        self._version = int(state["version"])
        self._row_versions = np.asarray(state["row_versions"], dtype=np.int64).copy()


class SparseInteractionLedger:
    """CSR-backed drop-in for :class:`InteractionLedger`.

    The dense ledger's ``n x n`` count matrix is the first structure to
    hit the memory wall (80 GB of float64 at ``n = 10^5``).  Real
    interaction graphs are sparse — a node interacts with its social
    neighbourhood, not with everyone — so this ledger keeps the counts in
    a CSR matrix plus a small append-only COO buffer that absorbs
    O(1)-ish ``record``/``record_many`` calls and is compacted into the
    CSR on the next read.

    The public surface mirrors :class:`InteractionLedger` (including the
    version / dirty-row protocol the incremental Ωc caches key on), with
    two additions the sparse coefficient backend uses directly:
    :meth:`counts_csr` and :meth:`share_pairs`.  ``share_matrix`` /
    ``counts_matrix`` densify and exist for small-n interop and tests —
    don't call them at 10^5 nodes.
    """

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._n = int(n_nodes)
        self._csr = sparse.csr_matrix((self._n, self._n), dtype=np.float64)
        self._pending_i: list[np.ndarray] = []
        self._pending_j: list[np.ndarray] = []
        self._pending_c: list[np.ndarray] = []
        self._version = 0
        self._row_versions = np.zeros(self._n, dtype=np.int64)

    @property
    def n_nodes(self) -> int:
        return self._n

    # -- change tracking ------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation of the ledger."""
        return self._version

    def rows_changed_since(self, version: int) -> np.ndarray:
        """Ascending ids of rows mutated after ``version`` was current."""
        return np.flatnonzero(self._row_versions > version)

    def _touch_rows(self, rows: np.ndarray | list[int]) -> None:
        self._version += 1
        self._row_versions[rows] = self._version

    def _compact(self) -> sparse.csr_matrix:
        """Fold the pending COO buffer into the CSR store."""
        if self._pending_i:
            i = np.concatenate(self._pending_i)
            j = np.concatenate(self._pending_j)
            c = np.concatenate(self._pending_c)
            self._pending_i, self._pending_j, self._pending_c = [], [], []
            delta = sparse.coo_matrix(
                (c, (i, j)), shape=(self._n, self._n), dtype=np.float64
            )
            self._csr = (self._csr + delta.tocsr()).tocsr()
        return self._csr

    # -- recording ------------------------------------------------------------

    def record(self, i: int, j: int, count: float = 1.0) -> None:
        """Record ``count`` interactions initiated by ``i`` toward ``j``."""
        if i == j:
            raise ValueError("self-interactions are not meaningful")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._pending_i.append(np.array([i], dtype=np.int64))
        self._pending_j.append(np.array([j], dtype=np.int64))
        self._pending_c.append(np.array([count], dtype=np.float64))
        self._touch_rows([i])

    def record_many(
        self,
        raters: np.ndarray,
        ratees: np.ndarray,
        counts: np.ndarray | float = 1.0,
    ) -> None:
        """Batched :meth:`record`; equivalent to the scalar loop."""
        i = np.asarray(raters, dtype=np.int64)
        j = np.asarray(ratees, dtype=np.int64)
        if i.shape != j.shape or i.ndim != 1:
            raise ValueError("raters and ratees must be 1-D arrays of equal length")
        if i.size == 0:
            return
        c = np.broadcast_to(np.asarray(counts, dtype=np.float64), i.shape)
        if np.any(i == j):
            raise ValueError("self-interactions are not meaningful")
        if np.any(c <= 0):
            raise ValueError("counts must be positive")
        self._pending_i.append(i.copy())
        self._pending_j.append(j.copy())
        self._pending_c.append(np.asarray(c, dtype=np.float64).copy())
        self._touch_rows(np.unique(i))

    # -- reads ----------------------------------------------------------------

    def frequency(self, i: int, j: int) -> float:
        """Raw interaction count from ``i`` to ``j``."""
        return float(self._compact()[i, j])

    def total_out(self, i: int) -> float:
        """Total outgoing interactions of ``i`` — the Eq. (2) denominator."""
        csr = self._compact()
        return float(csr.data[csr.indptr[i]:csr.indptr[i + 1]].sum())

    def share(self, i: int, j: int) -> float:
        """``f(i,j) / sum_k f(i,k)``; 0 when ``i`` has no interactions."""
        total = self.total_out(i)
        if total == 0.0:
            return 0.0
        return float(self._compact()[i, j] / total)

    def counts_csr(self) -> sparse.csr_matrix:
        """The compacted CSR count matrix (a copy; mutations don't leak)."""
        return self._compact().copy()

    def row_totals(self) -> np.ndarray:
        """Per-node total outgoing interaction counts, shape ``(n,)``."""
        return np.asarray(self._compact().sum(axis=1)).ravel()

    def share_csr(self) -> sparse.csr_matrix:
        """Row-normalised CSR copy of the counts (rows with no data stay 0)."""
        csr = self._compact().copy()
        totals = np.asarray(csr.sum(axis=1)).ravel()
        row_ids = np.repeat(np.arange(self._n), np.diff(csr.indptr))
        scale = np.divide(
            1.0, totals, out=np.zeros_like(totals), where=totals > 0
        )
        csr.data *= scale[row_ids]
        return csr

    def share_pairs(self, raters: np.ndarray, ratees: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`share` over pair arrays (CSR sampling)."""
        i = np.asarray(raters, dtype=np.int64)
        j = np.asarray(ratees, dtype=np.int64)
        if i.size == 0:
            return np.zeros(0, dtype=np.float64)
        csr = self._compact()
        totals = np.asarray(csr.sum(axis=1)).ravel()
        values = np.asarray(csr[i, j]).ravel()
        return np.divide(
            values,
            totals[i],
            out=np.zeros(i.shape, dtype=np.float64),
            where=totals[i] > 0,
        )

    def share_matrix(self) -> np.ndarray:
        """Dense row-normalised counts — small-n interop/tests only."""
        return self.share_csr().toarray()

    def counts_matrix(self) -> np.ndarray:
        """Dense copy of the counts — small-n interop/tests only."""
        return self._compact().toarray()

    # -- mutation -------------------------------------------------------------

    def decay_nodes(self, nodes: np.ndarray, factor: float) -> None:
        """Age out ``nodes``'s rows and columns by multiplying with ``factor``.

        Same contract as :meth:`InteractionLedger.decay_nodes`: pairs with
        both endpoints decayed scale by ``factor**2``, and every row
        holding evidence about a decayed node is marked dirty (column
        scaling shifts its share denominator).
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"factor must be in [0, 1], got {factor}")
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size == 0 or factor == 1.0:
            return
        csr = self._compact()
        row_ids = np.repeat(np.arange(self._n), np.diff(csr.indptr))
        in_cols = np.isin(csr.indices, idx)
        in_rows = np.isin(row_ids, idx)
        touched = np.unique(row_ids[in_cols])
        csr.data[in_rows] *= factor
        csr.data[in_cols] *= factor
        self._touch_rows(np.union1d(idx, touched))

    def reset(self) -> None:
        self._csr = sparse.csr_matrix((self._n, self._n), dtype=np.float64)
        self._pending_i, self._pending_j, self._pending_c = [], [], []
        self._touch_rows(np.arange(self._n))

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """Compacted counts plus both version counters (the versions key
        the Ωc cache exactly as in the dense ledger)."""
        csr = self._compact()
        return {
            "counts_csr": csr.copy(),
            "version": self._version,
            "row_versions": self._row_versions.copy(),
        }

    def restore_state(self, state: dict) -> None:
        csr = state["counts_csr"]
        if not sparse.issparse(csr):
            raise ValueError("sparse ledger state must carry a CSR counts matrix")
        csr = csr.tocsr()
        if csr.shape != (self._n, self._n):
            raise ValueError(
                f"counts shape {csr.shape} != {(self._n, self._n)}"
            )
        self._csr = csr.copy()
        self._pending_i, self._pending_j, self._pending_c = [], [], []
        self._version = int(state["version"])
        row_versions = np.asarray(state["row_versions"], dtype=np.int64)
        if row_versions.shape != (self._n,):
            raise ValueError(
                f"row_versions shape {row_versions.shape} != {(self._n,)}"
            )
        self._row_versions = row_versions.copy()
