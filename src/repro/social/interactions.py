"""Directed interaction-frequency ledger — the ``f(i,j)`` input of Eq. (2).

In a P2P network coupled to a social network, an *interaction* is one node
requesting a resource from (or rating) another.  SocialTrust's closeness
formula normalises the pairwise frequency by the rater's total outgoing
frequency, so colluders cannot raise their closeness to everyone at once:
pumping ``f(i,j)`` for one partner necessarily dilutes the share of every
other partner.

The ledger is a dense ``n x n`` ``float64`` matrix; recording is O(1) and
the share computation is a vectorised row normalisation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InteractionLedger"]


class InteractionLedger:
    """Accumulates directed interaction counts between nodes."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._n = int(n_nodes)
        self._counts = np.zeros((self._n, self._n), dtype=np.float64)

    @property
    def n_nodes(self) -> int:
        return self._n

    def record(self, i: int, j: int, count: float = 1.0) -> None:
        """Record ``count`` interactions initiated by ``i`` toward ``j``."""
        if i == j:
            raise ValueError("self-interactions are not meaningful")
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        self._counts[i, j] += count

    def frequency(self, i: int, j: int) -> float:
        """Raw interaction count from ``i`` to ``j``."""
        return float(self._counts[i, j])

    def total_out(self, i: int) -> float:
        """Total outgoing interactions of ``i`` — the Eq. (2) denominator."""
        return float(self._counts[i].sum())

    def share(self, i: int, j: int) -> float:
        """``f(i,j) / sum_k f(i,k)``; 0 when ``i`` has no interactions."""
        total = self._counts[i].sum()
        if total == 0.0:
            return 0.0
        return float(self._counts[i, j] / total)

    def share_matrix(self) -> np.ndarray:
        """Row-normalised copy of the count matrix (rows with no data stay 0)."""
        totals = self._counts.sum(axis=1, keepdims=True)
        out = np.divide(
            self._counts,
            totals,
            out=np.zeros_like(self._counts),
            where=totals > 0,
        )
        return out

    def counts_matrix(self) -> np.ndarray:
        """Read-only view of the raw count matrix."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def decay_nodes(self, nodes: np.ndarray, factor: float) -> None:
        """Age out ``nodes``'s rows and columns by multiplying with ``factor``.

        Used by the churn-aware simulation: a departed peer's interaction
        history decays every cycle it stays offline, so a rejoining peer
        resumes with correspondingly weakened closeness evidence rather
        than stale full-strength history.  Pairs where *both* endpoints
        are offline decay by ``factor**2`` (both sides' evidence is aging).
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"factor must be in [0, 1], got {factor}")
        idx = np.asarray(nodes, dtype=np.int64)
        if idx.size == 0 or factor == 1.0:
            return
        self._counts[idx, :] *= factor
        self._counts[:, idx] *= factor

    def reset(self) -> None:
        self._counts[:] = 0.0
