"""Graph-distance helpers shared by the trace analysis and closeness code.

These operate on any :class:`repro.social.graph.SocialView`; the functions
are deliberately small so they can also be applied to ad-hoc adjacency
structures in tests.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.social.graph import UNREACHABLE, SocialView

__all__ = ["bfs_distances", "common_friends", "shortest_path", "distance_histogram"]


def bfs_distances(view: SocialView, source: int, max_hops: int | None = None) -> dict[int, int]:
    """Hop distances from ``source`` to every reachable node.

    Parameters
    ----------
    view:
        Social network to traverse.
    source:
        Start node.
    max_hops:
        Optional traversal cutoff; nodes farther than this are omitted.

    Returns
    -------
    dict mapping node id -> hop count (``source`` maps to 0).
    """
    dist = {source: 0}
    frontier = [source]
    hops = 0
    while frontier and (max_hops is None or hops < max_hops):
        hops += 1
        nxt: list[int] = []
        for u in frontier:
            for v in view.friends(u):
                if v not in dist:
                    dist[v] = hops
                    nxt.append(v)
        frontier = nxt
    return dist


def common_friends(view: SocialView, i: int, j: int) -> frozenset[int]:
    """The friend-of-friend intermediaries ``S_i ∩ S_j`` of Eq. (3)."""
    return view.friends(i) & view.friends(j)


def shortest_path(view: SocialView, i: int, j: int) -> list[int]:
    """One shortest path between ``i`` and ``j`` (delegates to the view)."""
    return view.path(i, j)


def distance_histogram(
    view: SocialView, pairs: Sequence[tuple[int, int]]
) -> Mapping[int, int]:
    """Count the hop distance of each pair; ``UNREACHABLE`` pairs keyed as -1.

    Used by the trace analysis to bucket transactions by rater-ratee social
    distance (Fig. 3).
    """
    counts: dict[int, int] = {}
    for a, b in pairs:
        d = view.distance(a, b)
        counts[d] = counts.get(d, 0) + 1
    return counts


def pairwise_distance_matrix(view: SocialView) -> np.ndarray:
    """Dense all-pairs hop-distance matrix via repeated BFS.

    O(n * (n + m)); fine for the paper-scale networks (hundreds of nodes).
    Unreachable pairs hold :data:`repro.social.graph.UNREACHABLE`.
    """
    n = view.n_nodes
    out = np.full((n, n), UNREACHABLE, dtype=np.int64)
    for s in range(n):
        for node, d in bfs_distances(view, s).items():
            out[s, node] = d
    return out
