"""Interest similarity ``Ωs`` — Eq. (7) (plain) and Eq. (11) (hardened).

Plain mode is the overlap coefficient over *declared* interest sets:

    Ωs(i,j) = |V_i ∩ V_j| / min(|V_i|, |V_j|)

Hardened mode (Section 4.4) weights each shared interest by both nodes'
behavioural request shares:

    Ωs(i,j) = sum_l w_s(i,l) * w_s(j,l) / min(|V_i|, |V_j|)

so a colluder that pads its profile with interests it never actually
requests gains (almost) nothing, and one that *removes* declared interests
is still exposed by its request stream.  To capture the latter, the
hardened interest set of a node is the union of its declared profile and
the interests it has actually requested.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.config import SocialTrustConfig
from repro.core.gaussian import RaterBand
from repro.social.interests import InterestProfiles

__all__ = ["overlap_similarity", "SimilarityComputer"]


def overlap_similarity(a: Iterable[int], b: Iterable[int]) -> float:
    """Eq. (7): overlap coefficient of two interest sets; 0 if either empty."""
    sa = frozenset(a)
    sb = frozenset(b)
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / min(len(sa), len(sb))


class SimilarityComputer:
    """Computes ``Ωs`` values against the interest-profile store."""

    def __init__(
        self,
        profiles: InterestProfiles,
        config: SocialTrustConfig | None = None,
    ) -> None:
        self._profiles = profiles
        self._config = config or SocialTrustConfig()
        # Value cache keyed on the profile store's declared/request epochs.
        self._cached_matrix: np.ndarray | None = None
        self._cached_numer: np.ndarray | None = None
        self._cached_req_version = -1
        self._cached_decl_version = -1

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """The value cache and its version keys (serialized alongside the
        Ωc caches so a resumed run replays cache hits and incremental
        updates exactly as the uninterrupted run would)."""

        def _copy(a: np.ndarray | None) -> np.ndarray | None:
            return None if a is None else a.copy()

        return {
            "matrix": _copy(self._cached_matrix),
            "numer": _copy(self._cached_numer),
            "req_version": self._cached_req_version,
            "decl_version": self._cached_decl_version,
        }

    def restore_state(self, state: dict) -> None:
        n = self.n_nodes

        def _arr(value, name: str) -> np.ndarray | None:
            if value is None:
                return None
            arr = np.asarray(value, dtype=np.float64).copy()
            if arr.shape != (n, n):
                raise ValueError(
                    f"similarity cache {name!r} has shape {arr.shape}, but "
                    f"this computer covers {n} nodes (expected {(n, n)}) — is "
                    f"the checkpoint from a different network size?"
                )
            return arr

        matrix = _arr(state["matrix"], "matrix")
        if matrix is not None:
            matrix.flags.writeable = False  # the live cache is read-only
        self._cached_matrix = matrix
        self._cached_numer = _arr(state["numer"], "numer")
        self._cached_req_version = int(state["req_version"])
        self._cached_decl_version = int(state["decl_version"])

    @property
    def n_nodes(self) -> int:
        return self._profiles.n_nodes

    @property
    def profiles(self) -> InterestProfiles:
        """The interest-profile store the coefficients are computed against."""
        return self._profiles

    @property
    def config(self) -> SocialTrustConfig:
        return self._config

    def _effective_set(self, node: int) -> frozenset[int]:
        """Declared ∪ behavioural interests (hardened-mode interest set)."""
        return self._profiles.declared(node) | self._profiles.behavioural_interests(node)

    def similarity(self, i: int, j: int) -> float:
        """``Ωs(i,j)`` under the configured mode."""
        if i == j:
            raise ValueError("similarity of a node to itself is undefined")
        profiles = self._profiles
        if not self._config.hardened:
            return overlap_similarity(profiles.declared(i), profiles.declared(j))
        vi = self._effective_set(i)
        vj = self._effective_set(j)
        if not vi or not vj:
            return 0.0
        shared = vi & vj
        if not shared:
            return 0.0
        wi = profiles.request_weights(i)
        wj = profiles.request_weights(j)
        total = 0.0
        for interest in shared:
            total += wi[interest] * wj[interest]
        return total / min(len(vi), len(vj))

    def similarity_matrix(self) -> np.ndarray:
        """All-pairs ``Ωs`` matrix (diagonal zero); agrees with :meth:`similarity`.

        Plain mode: with ``D`` the boolean declared-membership matrix,
        intersections are ``D @ D.T`` and the denominator the outer minimum
        of set sizes.  Hardened mode: the numerator is ``W @ W.T`` over
        request-weight rows (weights are zero outside a node's behavioural
        interests, so the product automatically restricts to shared
        interests) over the outer minimum of effective-set sizes.

        The result is cached against the profile store's mutation epochs.
        Plain mode only depends on the declared sets, so it survives any
        amount of request traffic.  Hardened mode recomputes the
        ``W @ W.T`` rows (and mirrored columns) of nodes whose request
        counters changed when few rows are dirty, and falls back to a full
        rebuild — bit-identical to the seed path — when most are.  The
        returned array is read-only (it is the live cache).
        """
        profiles = self._profiles
        n = profiles.n_nodes
        decl_version = profiles.declared_version
        req_version = profiles.version
        if self._cached_matrix is not None and self._cached_decl_version == decl_version:
            if not self._config.hardened:
                return self._cached_matrix
            if self._cached_req_version == req_version:
                return self._cached_matrix
        if not self._config.hardened:
            d = profiles.declared_matrix().astype(np.float64)
            inter = d @ d.T
            sizes = d.sum(axis=1)
            denom = np.minimum.outer(sizes, sizes)
            out = np.divide(inter, denom, out=np.zeros((n, n)), where=denom > 0)
            self._cached_numer = None
        else:
            w = profiles.request_weight_matrix()
            dirty = (
                profiles.rows_changed_since(self._cached_req_version)
                if self._cached_numer is not None
                and self._cached_decl_version == decl_version
                else None
            )
            if dirty is None or dirty.size > n // 2:
                self._cached_numer = w @ w.T
            elif dirty.size:
                # Each numerator entry is a full dot product, so row-wise
                # recomputation stays exact; symmetry mirrors the columns.
                rows = w[dirty] @ w.T
                self._cached_numer[dirty, :] = rows
                self._cached_numer[:, dirty] = rows.T
            numer = self._cached_numer
            sizes = np.array(
                [len(self._effective_set(i)) for i in range(n)], dtype=np.float64
            )
            denom = np.minimum.outer(sizes, sizes)
            out = np.divide(numer, denom, out=np.zeros((n, n)), where=denom > 0)
        np.fill_diagonal(out, 0.0)
        out.flags.writeable = False
        self._cached_matrix = out
        self._cached_decl_version = decl_version
        self._cached_req_version = req_version
        return out

    def pair_values(self, a, b) -> np.ndarray:
        """``Ωs`` over pair arrays — same gather API as the sparse backend
        (reads from the cached matrix)."""
        matrix = self.similarity_matrix()
        i = np.asarray(a, dtype=np.int64)
        j = np.asarray(b, dtype=np.int64)
        return np.asarray(matrix[i, j], dtype=np.float64)

    def rater_band(self, rater: int, rated: frozenset[int] | set[int]) -> RaterBand | None:
        """Band over the rater's similarity to every node it has rated.

        Reads from :meth:`similarity_matrix`, so the band always reflects
        the same cached state the detector consumes.
        """
        matrix = self.similarity_matrix()
        values = [float(matrix[rater, j]) for j in rated if j != rater]
        if not values:
            return None
        return RaterBand.from_values(values)

    def global_band(self, pairs: list[tuple[int, int]]) -> RaterBand | None:
        """Band over the similarity of arbitrary transaction pairs (read
        from the cached matrix, same consistency guarantee as
        :meth:`rater_band`)."""
        matrix = self.similarity_matrix()
        values = [float(matrix[i, j]) for i, j in pairs if i != j]
        if not values:
            return None
        return RaterBand.from_values(values)
