"""The Gaussian reputation filter — Eqs. (5), (6), (8) and (9).

A rating from ``i`` to ``j`` whose social coefficient deviates from the
rater's normal band is damped by the bell curve

    w = alpha * exp( -(x - b)^2 / (2 c^2) )

with ``b`` the band centre (the rater's mean coefficient over nodes it has
rated, or the system-wide mean) and ``c`` the band width
(``|max - min|`` of the same set).  Eq. (9) multiplies the closeness and
similarity bells by summing their exponents.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["RaterBand", "weight_exponent", "gaussian_weight", "combined_weight"]


@dataclass(frozen=True)
class RaterBand:
    """Centre/width summary of a rater's observed coefficients.

    ``center`` plays ``b`` and ``spread`` plays ``c`` in Eq. (5); ``size``
    records how many distinct observations back the band (the AUTO centring
    policy falls back to the global band below
    :attr:`~repro.core.config.SocialTrustConfig.min_band_size`).
    """

    center: float
    spread: float
    size: int

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "RaterBand":
        """Band over a non-empty collection of coefficient observations."""
        vals = [float(v) for v in values]
        if not vals:
            raise ValueError("cannot build a band from zero observations")
        lo = min(vals)
        hi = max(vals)
        return cls(
            center=sum(vals) / len(vals),
            spread=abs(hi - lo),
            size=len(vals),
        )


def weight_exponent(
    x: float,
    band: RaterBand,
    *,
    spread_floor: float = 1e-3,
) -> float:
    """The bell exponent ``(x - b)^2 / (2 c^2)`` of one dimension.

    This is the quantity the detector audit log lets you reconstruct per
    pair: a damping weight is ``alpha * exp(-sum of per-dimension
    exponents)``, so the exponent says *how far outside* the rater's
    normal band a coefficient sat.
    """
    c = max(float(band.spread), float(spread_floor))
    d = float(x) - float(band.center)
    return (d * d) / (2.0 * c * c)


def gaussian_weight(
    x: float,
    band: RaterBand,
    *,
    alpha: float = 1.0,
    spread_floor: float = 1e-3,
) -> float:
    """One-dimensional damping weight — Eq. (6)/(8).

    ``spread_floor`` bounds the bell width from below: a degenerate band
    (every observation identical) would otherwise send any deviation to
    weight zero and exact agreement to weight ``alpha``, making the filter
    a brittle equality test.
    """
    # Clamp below the float64 underflow knee so a damped weight stays
    # strictly positive (damping, not annihilation).
    exponent = weight_exponent(x, band, spread_floor=spread_floor)
    return float(alpha) * math.exp(-min(exponent, 700.0))


def combined_weight(
    closeness: float | None,
    closeness_band: RaterBand | None,
    similarity: float | None,
    similarity_band: RaterBand | None,
    *,
    alpha: float = 1.0,
    spread_floor: float = 1e-3,
) -> float:
    """Two-dimensional damping weight — Eq. (9).

    Either dimension may be disabled by passing ``None`` for its value/band
    pair, in which case the formula degenerates to the one-dimensional
    Eq. (6) or (8).  Disabling both is an error (there would be nothing to
    filter on).
    """
    exponent = 0.0
    used = False
    for x, band in ((closeness, closeness_band), (similarity, similarity_band)):
        if x is None or band is None:
            continue
        used = True
        exponent += weight_exponent(x, band, spread_floor=spread_floor)
    if not used:
        raise ValueError("at least one coefficient dimension must be provided")
    return float(alpha) * math.exp(-min(exponent, 700.0))
