"""Suspicious-behaviour detection — Section 4.3's trigger logic.

Per reputation-update interval the detector:

1. derives the frequency thresholds ``T+_t`` / ``T-_t`` (``theta * F`` over
   the interval's observed mean positive/negative rating frequency unless
   the configuration pins absolute values);
2. flags rater→ratee pairs whose positive (negative) rating count exceeds
   the threshold;
3. classifies each flagged pair against the trace-mined behaviours:

   * **B1** — high-frequency positive ratings at *low* social closeness
     (strangers praising each other);
   * **B2** — high-frequency positive ratings at *high* closeness toward a
     *low-reputed* ratee (friends pumping a bad node);
   * **B3** — high-frequency positive ratings at *low* interest similarity
     (no plausible transaction relationship);
   * **B4** — high-frequency *negative* ratings at *high* interest
     similarity (competitor badmouthing);

4. damps the matched pairs' rating influence with the Gaussian filter of
   Eq. (9), centred on each rater's own coefficient band (falling back to
   the system-wide band for raters with too few rated peers — the AUTO
   centring policy).

Everything is evaluated on dense ``n x n`` matrices so an interval costs a
handful of vectorised passes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.closeness import ClosenessComputer
from repro.core.config import CoefficientBackend, GaussianCenter, SocialTrustConfig
from repro.core.similarity import SimilarityComputer
from repro.core.sparse import SparseClosenessComputer, SparseSimilarityComputer
from repro.obs import Observability
from repro.reputation.base import IntervalRatings

__all__ = [
    "SuspicionReason",
    "Finding",
    "DerivedThresholds",
    "DetectionResult",
    "SparseDetectionResult",
    "CollusionDetector",
]


class SuspicionReason(enum.Flag):
    """Which trace-mined behaviour pattern(s) a flagged pair matched."""

    B1 = enum.auto()
    B2 = enum.auto()
    B3 = enum.auto()
    B4 = enum.auto()


@dataclass(frozen=True)
class Finding:
    """One adjusted rater→ratee pair with its evidence."""

    rater: int
    ratee: int
    reasons: SuspicionReason
    closeness: float
    similarity: float
    weight: float


@dataclass(frozen=True)
class DerivedThresholds:
    """The thresholds actually used for one interval (after derivation)."""

    pos_frequency: float
    neg_frequency: float
    low_reputation: float
    closeness_low: float
    closeness_high: float
    similarity_low: float
    similarity_high: float


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one interval's analysis."""

    #: Multiplicative damping weights, 1.0 everywhere except adjusted pairs.
    weights: np.ndarray
    findings: tuple[Finding, ...]
    thresholds: DerivedThresholds

    @property
    def n_adjusted(self) -> int:
        return len(self.findings)


@dataclass(frozen=True)
class SparseDetectionResult:
    """Outcome of one interval's sparse analysis — per-pair, never ``n x n``.

    Only the adjusted pairs are materialised; every unlisted pair has
    implicit weight 1.0.  :meth:`weights_dense` scatters into a dense
    matrix for small-n interop with the dense engine path.
    """

    #: Adjusted rater→ratee pairs, shape ``(m, 2)``, row-major order.
    pairs: np.ndarray
    #: Damping weights for exactly those pairs, shape ``(m,)``.
    pair_weights: np.ndarray
    findings: tuple[Finding, ...]
    thresholds: DerivedThresholds
    n_nodes: int

    @property
    def n_adjusted(self) -> int:
        return len(self.findings)

    def weights_dense(self) -> np.ndarray:
        """Dense weight matrix (1.0 except at the adjusted pairs)."""
        out = np.ones((self.n_nodes, self.n_nodes), dtype=np.float64)
        if self.pairs.size:
            out[self.pairs[:, 0], self.pairs[:, 1]] = self.pair_weights
        return out


def _band_arrays(
    coeffs: np.ndarray,
    rated_mask: np.ndarray,
    global_values: np.ndarray,
    config: SocialTrustConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair (center, spread) matrices under the configured centring policy.

    ``coeffs`` is the all-pairs coefficient matrix, ``rated_mask[i, j]``
    marks nodes ``j`` that rater ``i`` has rated, and ``global_values`` are
    the coefficients observed over transaction pairs system-wide.

    The band judging pair ``(i, j)`` is computed over the *other* nodes
    ``i`` has rated — Eq. (6)'s exponent is "the deviation of Ωc(i,j) from
    the normal social closeness of n_i to other nodes it has rated".  The
    leave-one-out matters: including the judged pair would let an extreme
    coefficient inflate its own band spread and mask itself.  Everything is
    vectorised; sorting each row once yields the leave-one-out extrema
    (removing the row maximum exposes the second-largest value, and
    duplicates take care of themselves because the sorted runner-up equals
    the maximum then).
    """
    n = coeffs.shape[0]
    if global_values.size:
        g_center = float(global_values.mean())
        g_spread = float(global_values.max() - global_values.min())
    else:
        g_center, g_spread = 0.0, 0.0
    centers = np.full((n, n), g_center)
    spreads = np.full((n, n), g_spread)
    if config.center is GaussianCenter.GLOBAL:
        return centers, spreads
    sizes = rated_mask.sum(axis=1, keepdims=True)
    loo_sizes = sizes - rated_mask
    has = loo_sizes > 0
    if np.any(has):
        masked = np.where(rated_mask, coeffs, 0.0)
        loo_sum = masked.sum(axis=1, keepdims=True) - masked
        loo_center = np.divide(loo_sum, loo_sizes, out=np.zeros((n, n)), where=has)
        hi_sorted = np.sort(np.where(rated_mask, coeffs, -np.inf), axis=1)
        lo_sorted = np.sort(np.where(rated_mask, coeffs, np.inf), axis=1)
        row_max = hi_sorted[:, -1:]
        row_2nd_max = hi_sorted[:, -2:-1] if n >= 2 else row_max
        row_min = lo_sorted[:, :1]
        row_2nd_min = lo_sorted[:, 1:2] if n >= 2 else row_min
        is_max = rated_mask & (coeffs == row_max)
        is_min = rated_mask & (coeffs == row_min)
        loo_max = np.where(is_max, row_2nd_max, row_max)
        loo_min = np.where(is_min, row_2nd_min, row_min)
        loo_spread = np.where(has, loo_max - loo_min, 0.0)
        if config.center is GaussianCenter.RATER:
            use = has
        else:  # AUTO
            use = loo_sizes >= config.min_band_size
        centers = np.where(use, loo_center, centers)
        spreads = np.where(use, loo_spread, spreads)
    return centers, spreads


class CollusionDetector:
    """Flags suspicious rating pairs and computes their damping weights."""

    def __init__(
        self,
        closeness: ClosenessComputer | SparseClosenessComputer,
        similarity: SimilarityComputer | SparseSimilarityComputer,
        config: SocialTrustConfig | None = None,
        *,
        observability: Observability | None = None,
    ) -> None:
        if closeness.n_nodes != similarity.n_nodes:
            raise ValueError(
                "closeness and similarity computers disagree on network size"
            )
        self._closeness = closeness
        self._similarity = similarity
        self._config = config or SocialTrustConfig()
        self._obs = observability
        self._interval_index = 0

    @property
    def n_nodes(self) -> int:
        return self._closeness.n_nodes

    @property
    def observability(self) -> Observability | None:
        return self._obs

    def reset(self) -> None:
        """Rewind the audit interval counter (audit/metric stores are
        owned by the :class:`~repro.obs.Observability` bundle and are
        cleared there, not here)."""
        self._interval_index = 0

    @property
    def last_interval_index(self) -> int | None:
        """Index of the most recently analyzed interval (``None`` before
        the first :meth:`analyze`) — what follow-up audit events emitted
        by the manager layer should stamp themselves with."""
        if self._interval_index == 0:
            return None
        return self._interval_index - 1

    def state_dict(self) -> dict:
        return {"interval_index": self._interval_index}

    def restore_state(self, state: dict) -> None:
        self._interval_index = int(state["interval_index"])

    def _frequency_thresholds(self, interval: IntervalRatings) -> tuple[float, float]:
        """Derive ``T+_t`` / ``T-_t`` as ``theta * F``.

        ``F`` is the *median* per-pair rating frequency, not the mean: a
        mass rating campaign inflates the mean and thereby raises the very
        bar meant to catch it, while the median stays anchored to the
        organic majority of pairs.  (The paper takes F from trace
        empirics — 2.2 ratings/month — which is likewise an
        attack-free baseline.)
        """
        cfg = self._config
        pos_thr = cfg.pos_frequency_threshold
        if pos_thr is None:
            observed = interval.pos_counts[interval.pos_counts > 0]
            pos_thr = (
                cfg.theta * float(np.median(observed)) if observed.size else np.inf
            )
        neg_thr = cfg.neg_frequency_threshold
        if neg_thr is None:
            observed = interval.neg_counts[interval.neg_counts > 0]
            neg_thr = (
                cfg.theta * float(np.median(observed)) if observed.size else np.inf
            )
        return float(pos_thr), float(neg_thr)

    def _pinned_band_defaults(self) -> tuple[float, float, float, float]:
        """Band thresholds reported when no pair was examined this interval.

        Pinned configuration values are in force whether or not any pair
        trips a frequency threshold, so the early-return thresholds must
        echo them; only the *derived* thresholds (which need observed
        coefficients to exist) fall back to the never-fires sentinels
        ``(0.0, inf)``.
        """
        cfg = self._config
        return (
            cfg.closeness_low if cfg.closeness_low is not None else 0.0,
            cfg.closeness_high if cfg.closeness_high is not None else np.inf,
            cfg.similarity_low if cfg.similarity_low is not None else 0.0,
            cfg.similarity_high if cfg.similarity_high is not None else np.inf,
        )

    @staticmethod
    def _band_thresholds(
        values: np.ndarray, low: float | None, high: float | None
    ) -> tuple[float, float]:
        """Derive (T_low, T_high) as the 25th/75th percentile of the
        *positive* observed coefficients.

        Zeros are excluded from the derivation deliberately: a pair rating
        at high frequency with literally zero social closeness or interest
        overlap is the textbook B1/B3 pattern, so the low threshold must
        sit strictly above zero for the strict ``<`` comparison to fire.
        """
        if low is not None and high is not None:
            return low, high
        positive = values[values > 0]
        if positive.size:
            d_low, d_high = np.percentile(positive, [25.0, 75.0])
        else:
            d_low, d_high = 0.0, np.inf
        return (
            float(low) if low is not None else float(d_low),
            float(high) if high is not None else float(d_high),
        )

    def analyze(
        self,
        interval: IntervalRatings,
        reputations: np.ndarray,
        rated_mask: np.ndarray,
        flag_counts: np.ndarray | None = None,
    ) -> DetectionResult:
        """Analyse one interval.

        Parameters
        ----------
        interval:
            The interval's rating aggregates.
        reputations:
            Global reputation vector *before* this interval is ingested
            (behaviour B2 tests the ratee's current standing).
        rated_mask:
            Cumulative boolean matrix, ``rated_mask[i, j]`` true when ``i``
            has rated ``j`` in any past interval.  The current interval is
            unioned in before band computation ("the nodes that n_i has
            rated").
        flag_counts:
            Number of *earlier* intervals each pair was flagged in; drives
            the recidivism escalation.  ``None`` means no history.
        """
        if self._config.coefficient_backend is CoefficientBackend.SPARSE:
            # Dense-input interop path: the engine still hands dense
            # interval matrices at moderate n; the analysis itself runs
            # over the flagged pair set only.
            result = self.analyze_sparse(
                sparse.csr_matrix(interval.pos_counts),
                sparse.csr_matrix(interval.neg_counts),
                reputations,
                sparse.csr_matrix(rated_mask),
                sparse.csr_matrix(flag_counts) if flag_counts is not None else None,
            )
            return DetectionResult(
                result.weights_dense(), result.findings, result.thresholds
            )
        n = self.n_nodes
        cfg = self._config
        obs = self._obs
        interval_index = self._interval_index
        self._interval_index += 1
        if obs is not None:
            obs.metrics.counter("detector.intervals").inc()
        counts = interval.counts
        pos_thr, neg_thr = self._frequency_thresholds(interval)
        flagged_pos = interval.pos_counts > pos_thr
        flagged_neg = interval.neg_counts > neg_thr
        ones = np.ones((n, n), dtype=np.float64)
        if not (flagged_pos.any() or flagged_neg.any()):
            thresholds = DerivedThresholds(
                pos_thr, neg_thr, self._low_reputation(),
                *self._pinned_band_defaults(),
            )
            return DetectionResult(ones, (), thresholds)

        active = counts > 0
        np.fill_diagonal(active, False)
        full_mask = rated_mask | active

        closeness = self._closeness.closeness_matrix()
        similarity = self._similarity.similarity_matrix()
        observed_c = closeness[active]
        observed_s = similarity[active]

        t_cl, t_ch = self._band_thresholds(
            observed_c, cfg.closeness_low, cfg.closeness_high
        )
        t_sl, t_sh = self._band_thresholds(
            observed_s, cfg.similarity_low, cfg.similarity_high
        )
        t_r = self._low_reputation()

        low_rep_ratee = np.broadcast_to(reputations < t_r, (n, n))
        b1 = flagged_pos & (closeness < t_cl) if cfg.use_closeness else np.zeros_like(flagged_pos)
        b2 = (
            flagged_pos & (closeness > t_ch) & low_rep_ratee
            if cfg.use_closeness
            else np.zeros_like(flagged_pos)
        )
        b3 = flagged_pos & (similarity < t_sl) if cfg.use_similarity else np.zeros_like(flagged_pos)
        b4 = flagged_neg & (similarity > t_sh) if cfg.use_similarity else np.zeros_like(flagged_neg)
        adjust = b1 | b2 | b3 | b4
        np.fill_diagonal(adjust, False)

        thresholds = DerivedThresholds(pos_thr, neg_thr, t_r, t_cl, t_ch, t_sl, t_sh)
        if not adjust.any():
            if obs is not None:
                self._emit_audit(
                    interval_index, interval, reputations, thresholds,
                    flagged_pos, flagged_neg, closeness, similarity,
                    b1, b2, b3, b4, ones,
                )
            return DetectionResult(ones, (), thresholds)

        exponent = np.zeros((n, n), dtype=np.float64)
        if cfg.use_closeness:
            centers, spreads = _band_arrays(closeness, full_mask, observed_c, cfg)
            c = np.maximum(spreads, cfg.spread_floor)
            exponent += (closeness - centers) ** 2 / (2.0 * c * c)
        if cfg.use_similarity:
            centers, spreads = _band_arrays(similarity, full_mask, observed_s, cfg)
            c = np.maximum(spreads, cfg.spread_floor)
            exponent += (similarity - centers) ** 2 / (2.0 * c * c)
        # Clamp the exponent below the float64 underflow knee: a degenerate
        # band (spread at the floor) with a large deviation would otherwise
        # drive exp() to exactly 0.0 and annihilate the rating instead of
        # damping it.
        damping = cfg.alpha * np.exp(-np.minimum(exponent, 700.0))
        if cfg.cap_flagged_frequency:
            # A flagged pair contributes at most a normal-frequency pair's
            # rating mass: scale by T_t / observed frequency on the side
            # (positive/negative) that tripped the threshold.
            pos_cap = np.where(
                flagged_pos,
                np.minimum(1.0, pos_thr / np.maximum(interval.pos_counts, 1.0)),
                1.0,
            )
            neg_cap = np.where(
                flagged_neg,
                np.minimum(1.0, neg_thr / np.maximum(interval.neg_counts, 1.0)),
                1.0,
            )
            damping = damping * pos_cap * neg_cap
        if flag_counts is not None and cfg.recidivism_decay < 1.0:
            damping = damping * np.power(cfg.recidivism_decay, flag_counts)
        weights = np.where(adjust, damping, 1.0)

        findings = []
        for i, j in np.argwhere(adjust):
            i, j = int(i), int(j)
            reasons = SuspicionReason(0)
            if b1[i, j]:
                reasons |= SuspicionReason.B1
            if b2[i, j]:
                reasons |= SuspicionReason.B2
            if b3[i, j]:
                reasons |= SuspicionReason.B3
            if b4[i, j]:
                reasons |= SuspicionReason.B4
            findings.append(
                Finding(
                    rater=i,
                    ratee=j,
                    reasons=reasons,
                    closeness=float(closeness[i, j]),
                    similarity=float(similarity[i, j]),
                    weight=float(weights[i, j]),
                )
            )
        if obs is not None:
            self._emit_audit(
                interval_index, interval, reputations, thresholds,
                flagged_pos, flagged_neg, closeness, similarity,
                b1, b2, b3, b4, weights,
            )
        return DetectionResult(weights, tuple(findings), thresholds)

    @staticmethod
    def _nonzero_row_ids(mat: sparse.csr_matrix, row: int) -> np.ndarray:
        """Column ids of a CSR row's genuinely nonzero entries."""
        lo, hi = mat.indptr[row], mat.indptr[row + 1]
        idx = mat.indices[lo:hi]
        return np.asarray(idx[mat.data[lo:hi] != 0], dtype=np.int64)

    def analyze_sparse(
        self,
        pos_counts: sparse.spmatrix,
        neg_counts: sparse.spmatrix,
        reputations: np.ndarray,
        rated: sparse.spmatrix,
        flag_counts: sparse.spmatrix | None = None,
    ) -> SparseDetectionResult:
        """Analyse one interval without materialising any ``n x n`` array.

        Mirrors :meth:`analyze` over CSR inputs: ``pos_counts`` /
        ``neg_counts`` are the interval's rating-count matrices, ``rated``
        the cumulative rated mask, ``flag_counts`` the recidivism history.
        Thresholds, behaviours B1–B4, leave-one-out bands and the Gaussian
        damping are all evaluated only over the frequency-flagged pair set
        (plus, for bands, the flagged raters' rated neighbourhoods), which
        is what makes a ``10^5``-node interval tractable.  All pair
        enumeration is row-major, so findings come out in the same order
        as the dense pass.
        """
        n = self.n_nodes
        cfg = self._config
        obs = self._obs
        interval_index = self._interval_index
        self._interval_index += 1
        if obs is not None:
            obs.metrics.counter("detector.intervals").inc()
        pos = pos_counts.tocsr()
        pos.sort_indices()
        neg = neg_counts.tocsr()
        neg.sort_indices()

        pos_thr = cfg.pos_frequency_threshold
        if pos_thr is None:
            observed = pos.data[pos.data > 0]
            pos_thr = (
                cfg.theta * float(np.median(observed)) if observed.size else np.inf
            )
        neg_thr = cfg.neg_frequency_threshold
        if neg_thr is None:
            observed = neg.data[neg.data > 0]
            neg_thr = (
                cfg.theta * float(np.median(observed)) if observed.size else np.inf
            )
        pos_thr, neg_thr = float(pos_thr), float(neg_thr)

        pos_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(pos.indptr))
        neg_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(neg.indptr))
        keys_pos = (pos_rows * np.int64(n) + pos.indices.astype(np.int64))[
            pos.data > pos_thr
        ]
        keys_neg = (neg_rows * np.int64(n) + neg.indices.astype(np.int64))[
            neg.data > neg_thr
        ]
        no_pairs = np.empty((0, 2), dtype=np.int64)
        if keys_pos.size == 0 and keys_neg.size == 0:
            thresholds = DerivedThresholds(
                pos_thr, neg_thr, self._low_reputation(),
                *self._pinned_band_defaults(),
            )
            return SparseDetectionResult(
                no_pairs, np.empty(0, dtype=np.float64), (), thresholds, n
            )

        # Active transaction pairs (counts > 0, off-diagonal), row-major —
        # the population the derived band thresholds and global band see.
        total = (pos + neg).tocsr()
        total.sort_indices()
        act_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(total.indptr))
        act_cols = total.indices.astype(np.int64)
        act_keep = (total.data > 0) & (act_rows != act_cols)
        act_i, act_j = act_rows[act_keep], act_cols[act_keep]
        observed_c = self._closeness.pair_values(act_i, act_j)
        observed_s = self._similarity.pair_values(act_i, act_j)

        t_cl, t_ch = self._band_thresholds(
            observed_c, cfg.closeness_low, cfg.closeness_high
        )
        t_sl, t_sh = self._band_thresholds(
            observed_s, cfg.similarity_low, cfg.similarity_high
        )
        t_r = self._low_reputation()

        # The flagged pair set, row-major with per-pair flag provenance.
        keys = np.union1d(keys_pos, keys_neg)
        fi = keys // n
        fj = keys % n
        off_diag = fi != fj
        keys, fi, fj = keys[off_diag], fi[off_diag], fj[off_diag]
        flag_pos = np.isin(keys, keys_pos)
        flag_neg = np.isin(keys, keys_neg)
        m = keys.size
        pos_cnt = np.asarray(pos[fi, fj], dtype=np.float64).ravel()
        neg_cnt = np.asarray(neg[fi, fj], dtype=np.float64).ravel()
        omega_c = self._closeness.pair_values(fi, fj)
        omega_s = self._similarity.pair_values(fi, fj)

        false_col = np.zeros(m, dtype=bool)
        low_rep = np.asarray(reputations, dtype=np.float64)[fj] < t_r
        b1 = flag_pos & (omega_c < t_cl) if cfg.use_closeness else false_col
        b2 = flag_pos & (omega_c > t_ch) & low_rep if cfg.use_closeness else false_col
        b3 = flag_pos & (omega_s < t_sl) if cfg.use_similarity else false_col
        b4 = flag_neg & (omega_s > t_sh) if cfg.use_similarity else false_col
        adjust = b1 | b2 | b3 | b4

        thresholds = DerivedThresholds(pos_thr, neg_thr, t_r, t_cl, t_ch, t_sl, t_sh)
        if not adjust.any():
            if obs is not None:
                self._emit_audit_sparse(
                    interval_index, reputations, thresholds, fi, fj,
                    flag_pos, flag_neg, pos_cnt, neg_cnt, omega_c, omega_s,
                    b1, b2, b3, b4, np.ones(m, dtype=np.float64),
                )
            return SparseDetectionResult(
                no_pairs, np.empty(0, dtype=np.float64), (), thresholds, n
            )

        exponent = np.zeros(m, dtype=np.float64)
        rated_csr = rated.tocsr()
        rated_csr.sort_indices()
        for use_dim, computer, omega, observed in (
            (cfg.use_closeness, self._closeness, omega_c, observed_c),
            (cfg.use_similarity, self._similarity, omega_s, observed_s),
        ):
            if not use_dim:
                continue
            centers, spreads = self._sparse_bands(
                fi, fj, omega, observed, computer, rated_csr, total
            )
            c = np.maximum(spreads, cfg.spread_floor)
            exponent += (omega - centers) ** 2 / (2.0 * c * c)
        damping = cfg.alpha * np.exp(-np.minimum(exponent, 700.0))
        if cfg.cap_flagged_frequency:
            pos_cap = np.where(
                flag_pos,
                np.minimum(1.0, pos_thr / np.maximum(pos_cnt, 1.0)),
                1.0,
            )
            neg_cap = np.where(
                flag_neg,
                np.minimum(1.0, neg_thr / np.maximum(neg_cnt, 1.0)),
                1.0,
            )
            damping = damping * pos_cap * neg_cap
        if flag_counts is not None and cfg.recidivism_decay < 1.0:
            history = np.asarray(
                flag_counts.tocsr()[fi, fj], dtype=np.float64
            ).ravel()
            damping = damping * np.power(cfg.recidivism_decay, history)
        weights = np.where(adjust, damping, 1.0)

        findings = []
        for t in np.flatnonzero(adjust):
            reasons = SuspicionReason(0)
            if b1[t]:
                reasons |= SuspicionReason.B1
            if b2[t]:
                reasons |= SuspicionReason.B2
            if b3[t]:
                reasons |= SuspicionReason.B3
            if b4[t]:
                reasons |= SuspicionReason.B4
            findings.append(
                Finding(
                    rater=int(fi[t]),
                    ratee=int(fj[t]),
                    reasons=reasons,
                    closeness=float(omega_c[t]),
                    similarity=float(omega_s[t]),
                    weight=float(weights[t]),
                )
            )
        if obs is not None:
            self._emit_audit_sparse(
                interval_index, reputations, thresholds, fi, fj,
                flag_pos, flag_neg, pos_cnt, neg_cnt, omega_c, omega_s,
                b1, b2, b3, b4, weights,
            )
        pairs = np.stack([fi[adjust], fj[adjust]], axis=1)
        return SparseDetectionResult(
            pairs, weights[adjust], tuple(findings), thresholds, n
        )

    def _sparse_bands(
        self,
        fi: np.ndarray,
        fj: np.ndarray,
        omega: np.ndarray,
        observed: np.ndarray,
        computer,
        rated_csr: sparse.csr_matrix,
        total_csr: sparse.csr_matrix,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-flagged-pair (center, spread) under the centring policy.

        Leave-one-out semantics identical to the dense ``_band_arrays``:
        the band for pair ``(i, j)`` covers the other nodes ``i`` has
        rated (cumulative ∪ this interval's active partners, which always
        contain ``j``); removing the judged value exposes the runner-up
        extrema, with duplicates self-consistent.  Only the flagged
        raters' neighbourhoods are ever gathered.
        """
        cfg = self._config
        if observed.size:
            g_center = float(observed.mean())
            g_spread = float(observed.max() - observed.min())
        else:
            g_center, g_spread = 0.0, 0.0
        m = fi.size
        centers = np.full(m, g_center)
        spreads = np.full(m, g_spread)
        if cfg.center is GaussianCenter.GLOBAL:
            return centers, spreads
        # Per-rater band statistics (sum, extrema and runner-up extrema),
        # gathered once per distinct flagged rater.
        stats: dict[int, tuple[int, float, float, float, float, float]] = {}
        for rater in np.unique(fi):
            rater = int(rater)
            ids = np.union1d(
                self._nonzero_row_ids(rated_csr, rater),
                self._nonzero_row_ids(total_csr, rater),
            )
            ids = ids[ids != rater]
            if ids.size == 0:
                continue
            values = computer.pair_values(
                np.full(ids.size, rater, dtype=np.int64), ids
            )
            vmax = float(values.max())
            vmin = float(values.min())
            if values.size >= 2:
                vmax2 = float(np.partition(values, -2)[-2])
                vmin2 = float(np.partition(values, 1)[1])
            else:
                vmax2, vmin2 = vmax, vmin
            stats[rater] = (
                int(values.size), float(values.sum()), vmax, vmax2, vmin, vmin2
            )
        for t in range(m):
            entry = stats.get(int(fi[t]))
            if entry is None:
                continue
            size, vsum, vmax, vmax2, vmin, vmin2 = entry
            loo_size = size - 1  # the judged ratee is always in the set
            if loo_size <= 0:
                continue
            if cfg.center is GaussianCenter.AUTO and loo_size < cfg.min_band_size:
                continue
            x = omega[t]
            centers[t] = (vsum - x) / loo_size
            loo_max = vmax2 if x == vmax else vmax
            loo_min = vmin2 if x == vmin else vmin
            spreads[t] = loo_max - loo_min
        return centers, spreads

    def _emit_audit_sparse(
        self,
        interval_index: int,
        reputations: np.ndarray,
        thresholds: DerivedThresholds,
        fi: np.ndarray,
        fj: np.ndarray,
        flag_pos: np.ndarray,
        flag_neg: np.ndarray,
        pos_cnt: np.ndarray,
        neg_cnt: np.ndarray,
        omega_c: np.ndarray,
        omega_s: np.ndarray,
        b1: np.ndarray,
        b2: np.ndarray,
        b3: np.ndarray,
        b4: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Sparse mirror of :meth:`_emit_audit`: one event per flagged pair."""
        from repro.obs import AuditEvent

        assert self._obs is not None
        audit = self._obs.audit
        metrics = self._obs.metrics
        cfg = self._config
        threshold_values = {
            "T+": float(thresholds.pos_frequency),
            "T-": float(thresholds.neg_frequency),
            "TR": float(thresholds.low_reputation),
            "Tcl": float(thresholds.closeness_low),
            "Tch": float(thresholds.closeness_high),
            "Tsl": float(thresholds.similarity_low),
            "Tsh": float(thresholds.similarity_high),
        }
        n_damped = 0
        for t in range(fi.size):
            i, j = int(fi[t]), int(fj[t])
            fired = []
            if flag_pos[t]:
                fired.append("T+")
            if flag_neg[t]:
                fired.append("T-")
            if float(reputations[j]) < thresholds.low_reputation:
                fired.append("TR")
            if cfg.use_closeness:
                if omega_c[t] < thresholds.closeness_low:
                    fired.append("Tcl")
                if omega_c[t] > thresholds.closeness_high:
                    fired.append("Tch")
            if cfg.use_similarity:
                if omega_s[t] < thresholds.similarity_low:
                    fired.append("Tsl")
                if omega_s[t] > thresholds.similarity_high:
                    fired.append("Tsh")
            behaviors = []
            if b1[t]:
                behaviors.append("B1")
            if b2[t]:
                behaviors.append("B2")
            if b3[t]:
                behaviors.append("B3")
            if b4[t]:
                behaviors.append("B4")
            damped = bool(behaviors)
            n_damped += damped
            audit.record(
                AuditEvent(
                    interval=interval_index,
                    rater=i,
                    ratee=j,
                    decision="damped" if damped else "accepted",
                    behaviors=tuple(behaviors),
                    fired=tuple(fired),
                    closeness=float(omega_c[t]),
                    similarity=float(omega_s[t]),
                    weight=float(weights[t]) if damped else 1.0,
                    pos_count=float(pos_cnt[t]),
                    neg_count=float(neg_cnt[t]),
                    thresholds=threshold_values,
                )
            )
        metrics.counter("detector.pairs_examined").inc(int(fi.size))
        metrics.counter("detector.pairs_damped").inc(n_damped)

    def _emit_audit(
        self,
        interval_index: int,
        interval: IntervalRatings,
        reputations: np.ndarray,
        thresholds: DerivedThresholds,
        flagged_pos: np.ndarray,
        flagged_neg: np.ndarray,
        closeness: np.ndarray,
        similarity: np.ndarray,
        b1: np.ndarray,
        b2: np.ndarray,
        b3: np.ndarray,
        b4: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """One audit event per frequency-flagged pair: damped or accepted."""
        from repro.obs import AuditEvent

        assert self._obs is not None
        audit = self._obs.audit
        metrics = self._obs.metrics
        cfg = self._config
        threshold_values = {
            "T+": float(thresholds.pos_frequency),
            "T-": float(thresholds.neg_frequency),
            "TR": float(thresholds.low_reputation),
            "Tcl": float(thresholds.closeness_low),
            "Tch": float(thresholds.closeness_high),
            "Tsl": float(thresholds.similarity_low),
            "Tsh": float(thresholds.similarity_high),
        }
        examined = flagged_pos | flagged_neg
        np.fill_diagonal(examined, False)
        n_damped = 0
        for i, j in np.argwhere(examined):
            i, j = int(i), int(j)
            omega_c = float(closeness[i, j])
            omega_s = float(similarity[i, j])
            fired = []
            if flagged_pos[i, j]:
                fired.append("T+")
            if flagged_neg[i, j]:
                fired.append("T-")
            if float(reputations[j]) < thresholds.low_reputation:
                fired.append("TR")
            if cfg.use_closeness:
                if omega_c < thresholds.closeness_low:
                    fired.append("Tcl")
                if omega_c > thresholds.closeness_high:
                    fired.append("Tch")
            if cfg.use_similarity:
                if omega_s < thresholds.similarity_low:
                    fired.append("Tsl")
                if omega_s > thresholds.similarity_high:
                    fired.append("Tsh")
            behaviors = []
            if b1[i, j]:
                behaviors.append("B1")
            if b2[i, j]:
                behaviors.append("B2")
            if b3[i, j]:
                behaviors.append("B3")
            if b4[i, j]:
                behaviors.append("B4")
            damped = bool(behaviors)
            n_damped += damped
            audit.record(
                AuditEvent(
                    interval=interval_index,
                    rater=i,
                    ratee=j,
                    decision="damped" if damped else "accepted",
                    behaviors=tuple(behaviors),
                    fired=tuple(fired),
                    closeness=omega_c,
                    similarity=omega_s,
                    weight=float(weights[i, j]) if damped else 1.0,
                    pos_count=float(interval.pos_counts[i, j]),
                    neg_count=float(interval.neg_counts[i, j]),
                    thresholds=threshold_values,
                )
            )
        metrics.counter("detector.pairs_examined").inc(int(examined.sum()))
        metrics.counter("detector.pairs_damped").inc(n_damped)

    def _low_reputation(self) -> float:
        """The B2 low-reputation bar ``T_R``.

        Defaults to twice the uniform share — the paper's ``T_R = 0.01``
        at 200 nodes, generalised to other network sizes.
        """
        if self._config.low_reputation_threshold is not None:
            return self._config.low_reputation_threshold
        return 2.0 / self.n_nodes
