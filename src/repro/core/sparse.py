"""Sparse CSR coefficient backend — the ``n ~ 10^5`` Ωc/Ωs core.

The dense computers materialise all-pairs ``n x n`` matrices, which caps
the detector near a few thousand nodes (80 GB of float64 per matrix at
``n = 10^5``).  This module rebuilds the same quantities on SciPy CSR
structures, exploiting what is true of real reputation graphs: adjacency
is sparse, so the Eq. (4)/(10) closeness is structurally zero outside the
union of the adjacency support and the two-hop (common-friend) support.
Pairs off that union are either path-fallback pairs (rare; walked exactly
on demand) or genuinely zero.

Value layout.  All per-entry arithmetic happens on *aligned data arrays*
over one static union pattern ``Pu = pattern(F @ F) ∪ pattern(F)`` (with
``F`` the float adjacency CSR).  SciPy's binary ops prune explicit zeros,
so alignment is done by construction instead: each CSR's entries are
scattered onto ``Pu`` by searchsorted over row-major ``(row, col)`` keys.
The cached Eq. (3) terms ``A`` (adjacent closeness), ``T1 = A @ F`` and
``T2 = F @ A`` all have patterns contained in ``Pu`` by construction, and
the containment is asserted on every alignment.

Incremental updates mirror the dense cache contract: keyed on the
interaction ledger's version, dirty rows of ``A``/``T1`` are recomputed
exactly and embedded back, ``T2`` takes the low-rank correction
``F[:, D] @ ΔA[D]`` — sharing the dense path's drift bound: after
``SocialTrustConfig.cache_rebuild_interval`` consecutive corrections the
next evaluation rebuilds from scratch.

The sparse path agrees with the dense oracle within floating-point
tolerance (summation order inside sparse matmuls differs), never bitwise;
the QA differential runner compares the two in tolerance mode.  With
``SocialTrustConfig.sparse_top_k`` set, each node's coefficient row is
additionally truncated to its ``k`` strongest entries — truncated pairs
read as coefficient 0, which is the documented approximation (they sit
below ``T_cl`` anyway, so they contribute nothing to a band or to the
Gaussian damping).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.config import CommonFriendAggregate, SocialTrustConfig
from repro.core.gaussian import RaterBand
from repro.social.graph import SocialView, relationship_factor

__all__ = [
    "SparseClosenessComputer",
    "SparseSimilarityComputer",
    "embed_rows",
]

#: Densifying helpers refuse above this many nodes: a float64 ``n x n``
#: matrix at the next power of two would already cost multiple GiB.
_DENSIFY_LIMIT = 8192


def embed_rows(
    block: sparse.csr_matrix, rows: np.ndarray, n: int
) -> sparse.csr_matrix:
    """Embed a ``len(rows) x n`` CSR block into an ``n x n`` CSR.

    Row ``k`` of the block lands at row ``rows[k]``; every other row is
    empty.  ``rows`` must be ascending (which is what the ledgers'
    ``rows_changed_since`` returns), so the block's data can be reused
    verbatim.  This is the O(nnz) primitive behind the incremental cache
    updates: ``cache += embed_rows(new_rows - old_rows, dirty, n)``.
    """
    block = block.tocsr()
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size != block.shape[0]:
        raise ValueError(
            f"block has {block.shape[0]} rows but {rows.size} positions given"
        )
    if rows.size > 1 and np.any(np.diff(rows) <= 0):
        raise ValueError("row positions must be strictly ascending")
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[rows + 1] = np.diff(block.indptr)
    np.cumsum(indptr, out=indptr)
    return sparse.csr_matrix(
        (block.data.copy(), block.indices.copy(), indptr), shape=(n, n)
    )


def _row_major_keys(mat: sparse.csr_matrix, n: int) -> np.ndarray:
    """Row-major ``row * n + col`` keys of a canonical CSR's entries."""
    rows = np.repeat(
        np.arange(mat.shape[0], dtype=np.int64), np.diff(mat.indptr)
    )
    return rows * np.int64(n) + mat.indices.astype(np.int64)


class SparseClosenessComputer:
    """CSR drop-in for :class:`~repro.core.closeness.ClosenessComputer`.

    Same constructor signature and coefficient semantics; the all-pairs
    dense matrix is replaced by :meth:`matrix_csr` plus :meth:`pair_values`
    (the detector's sparse pass only ever asks for flagged pairs and band
    neighbourhoods).  :meth:`closeness_matrix` densifies for small-n
    interop and testing.
    """

    def __init__(
        self,
        view: SocialView,
        interactions,
        config: SocialTrustConfig | None = None,
    ) -> None:
        if view.n_nodes != interactions.n_nodes:
            raise ValueError(
                f"social view has {view.n_nodes} nodes but interaction ledger "
                f"has {interactions.n_nodes}"
            )
        self._view = view
        self._interactions = interactions
        self._config = config or SocialTrustConfig()
        # Static structure (lazy; the social view is static per experiment).
        self._F: sparse.csr_matrix | None = None
        self._factors: sparse.csr_matrix | None = None
        self._pu: sparse.csr_matrix | None = None
        self._pu_keys: np.ndarray | None = None
        self._pu_is_adj: np.ndarray | None = None
        self._pu_common: np.ndarray | None = None
        self._pu_diag: np.ndarray | None = None
        # Value caches keyed on the interaction ledger's mutation version.
        self._a: sparse.csr_matrix | None = None
        self._t1: sparse.csr_matrix | None = None
        self._t2: sparse.csr_matrix | None = None
        self._cached_matrix: sparse.csr_matrix | None = None
        self._cached_version = -1
        # Consecutive low-rank T2 corrections since the last exact rebuild
        # (same drift bound as the dense computer).
        self._t2_updates = 0
        # Optional instruments (see bind_metrics); None keeps the hot
        # path free of registry lookups when observability is absent.
        self._m_drift = None
        self._m_rebuilds = None
        self._m_patches = None

    def bind_metrics(self, registry) -> None:
        """Publish cache health into a :class:`repro.obs.MetricsRegistry`:
        ``sparse.cache.drift`` (consecutive low-rank corrections since the
        last exact rebuild — the quantity ``cache_rebuild_interval``
        bounds), ``sparse.cache.rebuilds`` and ``sparse.cache.patches``.
        """
        self._m_drift = registry.gauge("sparse.cache.drift")
        self._m_rebuilds = registry.counter("sparse.cache.rebuilds")
        self._m_patches = registry.counter("sparse.cache.patches")
        self._m_drift.set(float(self._t2_updates))

    @property
    def n_nodes(self) -> int:
        return self._view.n_nodes

    @property
    def view(self) -> SocialView:
        return self._view

    @property
    def interactions(self):
        return self._interactions

    @property
    def config(self) -> SocialTrustConfig:
        return self._config

    def invalidate_cache(self) -> None:
        """Drop the static structure after mutating the social view."""
        self._F = None
        self._factors = None
        self._pu = None
        self._pu_keys = None
        self._pu_is_adj = None
        self._pu_common = None
        self._pu_diag = None
        self._drop_value_cache()

    def _drop_value_cache(self) -> None:
        self._a = None
        self._t1 = None
        self._t2 = None
        self._cached_matrix = None
        self._cached_version = -1
        self._t2_updates = 0

    # -- static structure ------------------------------------------------------

    def _adjacency_csr(self) -> sparse.csr_matrix:
        view = self._view
        builder = getattr(view, "adjacency_csr", None)
        if builder is not None:
            return builder().tocsr()
        # Generic SocialView: one pass over the friend sets, O(n + m).
        rows: list[int] = []
        cols: list[int] = []
        for i in range(view.n_nodes):
            for j in view.friends(i):
                rows.append(i)
                cols.append(j)
        return sparse.csr_matrix(
            (np.ones(len(rows), dtype=bool), (rows, cols)),
            shape=(view.n_nodes, view.n_nodes),
        )

    def _structure(self) -> None:
        """Build the CSR adjacency, relationship factors, and the static
        union pattern ``Pu`` with its per-entry masks."""
        if self._F is not None:
            return
        n = self.n_nodes
        view = self._view
        cfg = self._config
        adj = self._adjacency_csr()
        adj.sort_indices()
        arows = np.repeat(np.arange(n, dtype=np.int64), np.diff(adj.indptr))
        factor_data = np.empty(adj.nnz, dtype=np.float64)
        factor_of: dict[tuple[int, int], float] = {}
        for k in range(adj.nnz):
            i = int(arows[k])
            j = int(adj.indices[k])
            key = (i, j) if i < j else (j, i)
            value = factor_of.get(key)
            if value is None:
                value = relationship_factor(
                    view.relationships(i, j),
                    hardened=cfg.hardened,
                    lambda_scaling=cfg.lambda_scaling,
                )
                factor_of[key] = value
            factor_data[k] = value
        self._factors = sparse.csr_matrix(
            (factor_data, adj.indices.copy(), adj.indptr.copy()), shape=(n, n)
        )
        f = sparse.csr_matrix(
            (np.ones(adj.nnz, dtype=np.float64), adj.indices.copy(), adj.indptr.copy()),
            shape=(n, n),
        )
        self._F = f
        # Common-friend counts: every structural entry of F @ F sums 1*1
        # terms, so its data is >= 1 and the union F@F + F never loses
        # entries to zero-pruning.
        p2 = (f @ f).tocsr()
        pu = (p2 + f).tocsr()
        pu.sort_indices()
        self._pu = pu
        self._pu_keys = _row_major_keys(pu, n)
        self._pu_common = self._align(p2)
        self._pu_is_adj = self._align(f) > 0.0
        pu_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(pu.indptr))
        self._pu_diag = pu_rows == pu.indices

    def _align(self, mat: sparse.spmatrix) -> np.ndarray:
        """Scatter ``mat``'s entries onto the union pattern's data layout.

        Returns a flat float64 array parallel to ``Pu``'s entries, zero
        wherever ``mat`` has no entry.  ``pattern(mat) ⊆ Pu`` is asserted
        (it holds by construction for everything this class aligns).
        """
        mat = mat.tocsr()
        mat.sort_indices()
        keys = _row_major_keys(mat, self.n_nodes)
        out = np.zeros(self._pu_keys.size, dtype=np.float64)
        if keys.size:
            pos = np.searchsorted(self._pu_keys, keys)
            if np.any(pos >= self._pu_keys.size) or np.any(
                self._pu_keys[pos] != keys
            ):
                raise AssertionError(
                    "sparse cache pattern escaped the static union support"
                )
            out[pos] = mat.data
        return out

    # -- scalar reference path -------------------------------------------------

    def adjacent(self, i: int, j: int) -> float:
        """Eq. (2) / Eq. (10) first branch — identical to the dense scalar."""
        factor = relationship_factor(
            self._view.relationships(i, j),
            hardened=self._config.hardened,
            lambda_scaling=self._config.lambda_scaling,
        )
        if factor == 0.0:
            return 0.0
        return factor * self._interactions.share(i, j)

    def _path_min(self, i: int, j: int) -> float:
        path = self._view.path(i, j)
        if len(path) < 2:
            return 0.0
        return min(
            self.adjacent(path[step], path[step + 1])
            for step in range(len(path) - 1)
        )

    def closeness(self, i: int, j: int) -> float:
        """Scalar ``Ωc(i, j)`` read through the sparse machinery."""
        if i == j:
            raise ValueError("closeness of a node to itself is undefined")
        return float(self.pair_values(np.array([i]), np.array([j]))[0])

    # -- cached value path -----------------------------------------------------

    def matrix_csr(self) -> sparse.csr_matrix:
        """The Ωc coefficient CSR over the union support, cached
        incrementally against the interaction ledger's version.

        Path-fallback pairs (non-adjacent, zero common friends, but
        connected) are *not* in the support; :meth:`pair_values` walks
        them exactly on demand when ``sparse_top_k`` is unset.
        """
        self._structure()
        version = self._interactions.version
        if self._cached_matrix is not None and self._cached_version == version:
            return self._cached_matrix
        n = self.n_nodes
        f = self._F
        factors = self._factors
        dirty = (
            self._interactions.rows_changed_since(self._cached_version)
            if self._a is not None
            else None
        )
        if (
            dirty is None
            or dirty.size > n // 2
            or self._t2_updates >= self._config.cache_rebuild_interval
        ):
            rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(factors.indptr))
            shares = self._interactions.share_pairs(rows, factors.indices)
            self._a = sparse.csr_matrix(
                (factors.data * shares, factors.indices.copy(), factors.indptr.copy()),
                shape=(n, n),
            )
            self._t1 = (self._a @ f).tocsr()
            self._t2 = (f @ self._a).tocsr()
            self._t2_updates = 0
            if self._m_rebuilds is not None:
                self._m_rebuilds.inc()
        elif dirty.size:
            sub = factors[dirty].tocsr()
            row_of = dirty[
                np.repeat(np.arange(dirty.size), np.diff(sub.indptr))
            ]
            new = sparse.csr_matrix(
                (
                    sub.data * self._interactions.share_pairs(row_of, sub.indices),
                    sub.indices.copy(),
                    sub.indptr.copy(),
                ),
                shape=(dirty.size, n),
            )
            delta = (new - self._a[dirty]).tocsr()
            self._a = (self._a + embed_rows(delta, dirty, n)).tocsr()
            # T1 rows only depend on the matching A rows: exact recompute.
            t1_delta = ((new @ f) - self._t1[dirty]).tocsr()
            self._t1 = (self._t1 + embed_rows(t1_delta, dirty, n)).tocsr()
            # T2 takes the low-rank correction F[:, D] @ ΔA[D].
            self._t2 = (self._t2 + f[:, dirty] @ delta).tocsr()
            self._t2_updates += 1
            if self._m_patches is not None:
                self._m_patches.inc()
        if self._m_drift is not None:
            self._m_drift.set(float(self._t2_updates))
        self._cached_matrix = self._assemble()
        self._cached_version = version
        return self._cached_matrix

    def _assemble(self) -> sparse.csr_matrix:
        """Combine the cached terms on the union pattern — the sparse
        analogue of the dense ``_assemble``."""
        s_al = self._align(self._t1) + self._align(self._t2)
        s_al *= 0.5
        if self._config.common_friend_aggregate is CommonFriendAggregate.MEAN:
            s_al = np.divide(
                s_al,
                self._pu_common,
                out=np.zeros_like(s_al),
                where=self._pu_common > 0,
            )
        data = np.where(
            self._pu_is_adj,
            self._align(self._a),
            np.where(self._pu_common > 0, s_al, 0.0),
        )
        data[self._pu_diag] = 0.0
        pu = self._pu
        out = sparse.csr_matrix(
            (data, pu.indices.copy(), pu.indptr.copy()), shape=pu.shape
        )
        k = self._config.sparse_top_k
        if k is not None:
            out = _truncate_top_k(out, k)
        return out

    def pair_values(self, raters, ratees) -> np.ndarray:
        """``Ωc`` over pair arrays — the detector's gather primitive.

        Exact mode (``sparse_top_k`` unset): pairs off the union support
        are walked through the shortest-path fallback, matching the dense
        matrix entry for entry.  Truncated mode: off-support (and
        truncated) pairs read as 0.
        """
        i = np.asarray(raters, dtype=np.int64)
        j = np.asarray(ratees, dtype=np.int64)
        if i.size == 0:
            return np.zeros(0, dtype=np.float64)
        mat = self.matrix_csr()
        values = np.asarray(mat[i, j], dtype=np.float64).ravel().copy()
        if self._config.sparse_top_k is None:
            keys = i * np.int64(self.n_nodes) + j
            if self._pu_keys.size:
                pos = np.minimum(
                    np.searchsorted(self._pu_keys, keys), self._pu_keys.size - 1
                )
                off = self._pu_keys[pos] != keys
            else:
                off = np.ones(keys.shape, dtype=bool)
            for t in np.flatnonzero(off):
                if i[t] != j[t]:
                    values[t] = self._path_min(int(i[t]), int(j[t]))
        return values

    def closeness_matrix(self) -> np.ndarray:
        """Densified all-pairs matrix — small-n interop and tests only."""
        n = self.n_nodes
        if n > _DENSIFY_LIMIT:
            raise ValueError(
                f"refusing to densify a {n}x{n} coefficient matrix; use "
                "matrix_csr() / pair_values() at this scale"
            )
        out = self.matrix_csr().toarray()
        if self._config.sparse_top_k is None:
            adj = self._F.toarray() > 0
            common = (self._F @ self._F).toarray()
            need = (~adj) & (common == 0)
            np.fill_diagonal(need, False)
            for i, j in np.argwhere(need):
                out[i, j] = self._path_min(int(i), int(j))
        np.fill_diagonal(out, 0.0)
        out.flags.writeable = False
        return out

    # -- band summaries --------------------------------------------------------

    def rater_band(
        self, rater: int, rated: frozenset[int] | set[int]
    ) -> RaterBand | None:
        js = np.array(sorted(j for j in rated if j != rater), dtype=np.int64)
        if js.size == 0:
            return None
        values = self.pair_values(np.full(js.size, rater, dtype=np.int64), js)
        return RaterBand.from_values([float(v) for v in values])

    def global_band(self, pairs: list[tuple[int, int]]) -> RaterBand | None:
        keep = [(i, j) for i, j in pairs if i != j]
        if not keep:
            return None
        arr = np.asarray(keep, dtype=np.int64)
        values = self.pair_values(arr[:, 0], arr[:, 1])
        return RaterBand.from_values([float(v) for v in values])

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """The incrementally-maintained CSR value caches.

        Same contract as the dense computer: the low-rank T2 update is not
        bitwise equal to a fresh rebuild, so the caches must travel with a
        checkpoint for a resumed run to replay exactly.
        """

        def _copy(mat: sparse.csr_matrix | None) -> sparse.csr_matrix | None:
            return None if mat is None else mat.copy()

        return {
            "a": _copy(self._a),
            "t1": _copy(self._t1),
            "t2": _copy(self._t2),
            "version": self._cached_version,
            "t2_updates": self._t2_updates,
        }

    def restore_state(self, state: dict) -> None:
        n = self.n_nodes

        def _mat(value, name: str) -> sparse.csr_matrix | None:
            if value is None:
                return None
            if not sparse.issparse(value):
                raise ValueError(
                    f"sparse closeness cache {name!r} must be a sparse matrix"
                )
            mat = value.tocsr()
            if mat.shape != (n, n):
                raise ValueError(
                    f"closeness cache {name!r} has shape {mat.shape}, but this "
                    f"computer covers {n} nodes (expected {(n, n)}) — is the "
                    f"checkpoint from a different network size?"
                )
            return mat.copy()

        self._a = _mat(state["a"], "a")
        self._t1 = _mat(state["t1"], "t1")
        self._t2 = _mat(state["t2"], "t2")
        self._cached_matrix = None  # reassembled on demand from a/t1/t2
        self._cached_version = int(state["version"])
        self._t2_updates = int(state.get("t2_updates", 0))


def _truncate_top_k(mat: sparse.csr_matrix, k: int) -> sparse.csr_matrix:
    """Keep each row's ``k`` largest entries; drop the rest (read as 0).

    Ties at the cut are broken arbitrarily (argpartition order) — callers
    opted into an approximation by setting ``sparse_top_k`` at all.
    """
    counts = np.diff(mat.indptr)
    for row in np.flatnonzero(counts > k):
        start, end = mat.indptr[row], mat.indptr[row + 1]
        values = mat.data[start:end]
        drop = np.argpartition(values, values.size - k)[: values.size - k]
        values[drop] = 0.0
    mat.eliminate_zeros()
    return mat


class SparseSimilarityComputer:
    """Row-wise drop-in for :class:`~repro.core.similarity.SimilarityComputer`.

    The interest dimension ``k`` is small, so no sparse matrices are
    needed: the all-pairs ``n x n`` product is simply never formed.
    :meth:`pair_values` computes Eq. (7)/(11) for requested pairs from the
    ``n x k`` declared/request-weight rows, and bands gather the same way.
    Every value is a k-length dot product, a pure function of the profile
    store — so unlike Ωc there is no drift-prone incremental state and
    checkpoints carry nothing but a size check.
    """

    def __init__(
        self,
        profiles,
        config: SocialTrustConfig | None = None,
    ) -> None:
        self._profiles = profiles
        self._config = config or SocialTrustConfig()
        self._weights: np.ndarray | None = None
        self._weights_version = -1
        self._declared: np.ndarray | None = None
        self._declared_cached_version = -1
        self._sizes: np.ndarray | None = None
        self._sizes_decl_version = -1
        self._sizes_req_version = -1

    @property
    def n_nodes(self) -> int:
        return self._profiles.n_nodes

    @property
    def profiles(self):
        return self._profiles

    @property
    def config(self) -> SocialTrustConfig:
        return self._config

    def _weight_rows(self) -> np.ndarray:
        p = self._profiles
        if self._weights is None or self._weights_version != p.version:
            self._weights = p.request_weight_matrix()
            self._weights_version = p.version
        return self._weights

    def _declared_rows(self) -> np.ndarray:
        p = self._profiles
        if self._declared is None or self._declared_cached_version != p.declared_version:
            self._declared = p.declared_matrix()
            self._declared_cached_version = p.declared_version
        return self._declared

    def _set_sizes(self) -> np.ndarray:
        """Per-node interest-set sizes: |declared| in plain mode,
        |declared ∪ behavioural| in hardened mode."""
        p = self._profiles
        decl_v = p.declared_version
        req_v = p.version if self._config.hardened else -1
        if (
            self._sizes is None
            or self._sizes_decl_version != decl_v
            or self._sizes_req_version != req_v
        ):
            declared = self._declared_rows()
            if self._config.hardened:
                effective = declared | (self._weight_rows() > 0)
                self._sizes = effective.sum(axis=1).astype(np.float64)
            else:
                self._sizes = declared.sum(axis=1).astype(np.float64)
            self._sizes_decl_version = decl_v
            self._sizes_req_version = req_v
        return self._sizes

    def similarity(self, i: int, j: int) -> float:
        if i == j:
            raise ValueError("similarity of a node to itself is undefined")
        return float(self.pair_values(np.array([i]), np.array([j]))[0])

    def pair_values(self, a, b) -> np.ndarray:
        """``Ωs`` over pair arrays (Eq. (7) plain / Eq. (11) hardened)."""
        i = np.asarray(a, dtype=np.int64)
        j = np.asarray(b, dtype=np.int64)
        if i.size == 0:
            return np.zeros(0, dtype=np.float64)
        sizes = self._set_sizes()
        if self._config.hardened:
            w = self._weight_rows()
            numer = np.einsum("ij,ij->i", w[i], w[j])
        else:
            d = self._declared_rows()
            numer = (d[i] & d[j]).sum(axis=1).astype(np.float64)
        denom = np.minimum(sizes[i], sizes[j])
        out = np.divide(
            numer, denom, out=np.zeros(i.shape, dtype=np.float64), where=denom > 0
        )
        out[i == j] = 0.0
        return out

    def similarity_matrix(self) -> np.ndarray:
        """Densified all-pairs matrix — small-n interop and tests only."""
        n = self.n_nodes
        if n > _DENSIFY_LIMIT:
            raise ValueError(
                f"refusing to densify a {n}x{n} coefficient matrix; use "
                "pair_values() at this scale"
            )
        if self._config.hardened:
            w = self._weight_rows()
            numer = w @ w.T
        else:
            d = self._declared_rows().astype(np.float64)
            numer = d @ d.T
        sizes = self._set_sizes()
        denom = np.minimum.outer(sizes, sizes)
        out = np.divide(numer, denom, out=np.zeros((n, n)), where=denom > 0)
        np.fill_diagonal(out, 0.0)
        out.flags.writeable = False
        return out

    def rater_band(
        self, rater: int, rated: frozenset[int] | set[int]
    ) -> RaterBand | None:
        js = np.array(sorted(j for j in rated if j != rater), dtype=np.int64)
        if js.size == 0:
            return None
        values = self.pair_values(np.full(js.size, rater, dtype=np.int64), js)
        return RaterBand.from_values([float(v) for v in values])

    def global_band(self, pairs: list[tuple[int, int]]) -> RaterBand | None:
        keep = [(i, j) for i, j in pairs if i != j]
        if not keep:
            return None
        arr = np.asarray(keep, dtype=np.int64)
        values = self.pair_values(arr[:, 0], arr[:, 1])
        return RaterBand.from_values([float(v) for v in values])

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Every Ωs value is recomputed on demand from the profile store,
        so nothing but a size check needs to travel with a checkpoint."""
        return {"n_nodes": self.n_nodes}

    def restore_state(self, state: dict) -> None:
        n = int(state["n_nodes"])
        if n != self.n_nodes:
            raise ValueError(
                f"similarity checkpoint covers {n} nodes, but this computer "
                f"covers {self.n_nodes} — is the checkpoint from a different "
                "network size?"
            )
        self._weights = None
        self._weights_version = -1
        self._declared = None
        self._declared_cached_version = -1
        self._sizes = None
        self._sizes_decl_version = -1
        self._sizes_req_version = -1
