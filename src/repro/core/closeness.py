"""Social closeness ``Ωc`` — Eqs. (2), (3), (4) and the hardened Eq. (10).

The closeness between a rater ``i`` and ratee ``j`` is:

* **adjacent** (distance 1):
  ``relationship_factor(i,j) * f(i,j) / sum_k f(i,k)`` — relationship count
  ``m(i,j)`` in plain mode (Eq. (2)), the ``sum_l lambda^(l-1) w_dl``
  weighted sum in hardened mode (Eq. (10));
* **non-adjacent with common friends**:
  ``sum over common friends k of (Ωc(i,k) + Ωc(k,j)) / 2`` (Eq. (3));
* **non-adjacent without common friends**:
  the minimum adjacent closeness along one shortest social path, 0 when no
  path exists.

Because the adjacent closeness normalises by the rater's *total* outgoing
interaction frequency, a colluder cannot raise its closeness to a partner
without draining closeness from everyone else it interacts with — the
lightweight anti-gaming property Section 4.1 argues for.

Two evaluation paths are provided and tested to agree:

* :meth:`ClosenessComputer.closeness` — scalar, follows the piecewise
  definition literally (readable reference implementation);
* :meth:`ClosenessComputer.closeness_matrix` — all-pairs, vectorised.
  With ``A`` the adjacent-closeness matrix and ``M`` the boolean adjacency
  matrix, Eq. (3) for every pair at once is ``(A@M + M@A) / 2`` restricted
  to non-adjacent pairs with at least one common friend (``A`` is zero off
  the adjacency support, so the products only pick up common-friend terms).
  The rare no-common-friend pairs fall back to the scalar path walk.

The relationship-factor matrix is cached (relationship structure is static
within an experiment); call :meth:`ClosenessComputer.invalidate_cache`
after mutating relationships.

The all-pairs matrix itself is cached too, keyed on the interaction
ledger's mutation version.  When only a few rows' outgoing shares changed
since the last evaluation (rating bursts, churn decay), the update is
incremental: with ``A`` the adjacent-closeness matrix and ``F`` the float
adjacency, the Eq. (3) terms are ``T1 = A@F`` (rows of dirty raters are
recomputed exactly) and ``T2 = F@A`` (updated with the low-rank correction
``F[:, D] @ ΔA[D]``).  When more than half the rows are dirty — the normal
case between reputation intervals — the cache falls back to a full exact
rebuild, which is both faster than the correction and bit-identical to the
seed path.  The low-rank correction is exact in exact arithmetic but not
bitwise, so its float drift would grow without bound across long
churn-heavy runs; an update counter forces an exact rebuild after every
``SocialTrustConfig.cache_rebuild_interval`` consecutive corrections,
which pins the worst-case drift to what ``cache_rebuild_interval``
applications can accumulate (the ``cache_audit`` regression test asserts
that bound over thousands of updates).  :meth:`ClosenessComputer.rater_band` and
:meth:`ClosenessComputer.global_band` read from the cached matrix, so they
can never diverge from :meth:`ClosenessComputer.closeness_matrix` after
``decay_nodes`` the way the per-pair scalar walk silently could.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CommonFriendAggregate, SocialTrustConfig
from repro.core.gaussian import RaterBand
from repro.social.graph import SocialView, relationship_factor
from repro.social.interactions import InteractionLedger

__all__ = ["ClosenessComputer"]


class ClosenessComputer:
    """Computes ``Ωc`` values against a social view + interaction ledger."""

    def __init__(
        self,
        view: SocialView,
        interactions: InteractionLedger,
        config: SocialTrustConfig | None = None,
    ) -> None:
        if view.n_nodes != interactions.n_nodes:
            raise ValueError(
                f"social view has {view.n_nodes} nodes but interaction ledger "
                f"has {interactions.n_nodes}"
            )
        self._view = view
        self._interactions = interactions
        self._config = config or SocialTrustConfig()
        self._rel_factors: np.ndarray | None = None
        self._adjacency: np.ndarray | None = None
        self._adj_float: np.ndarray | None = None
        self._common_counts: np.ndarray | None = None
        self._fallback_pairs: np.ndarray | None = None
        # Value cache keyed on the interaction ledger's mutation version.
        self._cached_matrix: np.ndarray | None = None
        self._cached_adj_close: np.ndarray | None = None
        self._cached_t1: np.ndarray | None = None
        self._cached_t2: np.ndarray | None = None
        self._cached_version = -1
        # Consecutive low-rank T2 corrections since the last exact rebuild.
        # The correction is exact in exact arithmetic but accumulates float
        # drift; after ``config.cache_rebuild_interval`` applications the
        # next evaluation rebuilds T2 (and T1/A) from scratch so the drift
        # stays bounded over arbitrarily long churn-heavy runs.
        self._t2_updates = 0

    @property
    def n_nodes(self) -> int:
        return self._view.n_nodes

    @property
    def view(self) -> SocialView:
        """The social view the coefficients are computed against."""
        return self._view

    @property
    def interactions(self) -> InteractionLedger:
        """The interaction ledger feeding Eq. (2)'s frequency shares."""
        return self._interactions

    @property
    def config(self) -> SocialTrustConfig:
        return self._config

    def invalidate_cache(self) -> None:
        """Drop cached relationship factors after mutating the social view."""
        self._rel_factors = None
        self._adjacency = None
        self._adj_float = None
        self._common_counts = None
        self._fallback_pairs = None
        self._drop_value_cache()

    def _drop_value_cache(self) -> None:
        self._cached_matrix = None
        self._cached_adj_close = None
        self._cached_t1 = None
        self._cached_t2 = None
        self._cached_version = -1
        self._t2_updates = 0

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """The incrementally-maintained value caches.

        The structure caches (relationship factors, adjacency) rebuild
        deterministically from the static social view and are not
        serialized.  The value caches MUST travel with a checkpoint: the
        low-rank T2 update is exact but not bitwise equal to a fresh
        rebuild, so resuming with a cold cache would diverge from the
        uninterrupted run at the last-bit level.
        """

        def _copy(a: np.ndarray | None) -> np.ndarray | None:
            return None if a is None else a.copy()

        return {
            "matrix": _copy(self._cached_matrix),
            "adj_close": _copy(self._cached_adj_close),
            "t1": _copy(self._cached_t1),
            "t2": _copy(self._cached_t2),
            "version": self._cached_version,
            "t2_updates": self._t2_updates,
        }

    def restore_state(self, state: dict) -> None:
        n = self.n_nodes

        def _arr(value, name: str) -> np.ndarray | None:
            if value is None:
                return None
            arr = np.asarray(value, dtype=np.float64).copy()
            if arr.shape != (n, n):
                raise ValueError(
                    f"closeness cache {name!r} has shape {arr.shape}, but this "
                    f"computer covers {n} nodes (expected {(n, n)}) — is the "
                    f"checkpoint from a different network size?"
                )
            return arr

        matrix = _arr(state["matrix"], "matrix")
        if matrix is not None:
            matrix.flags.writeable = False  # the live cache is read-only
        self._cached_matrix = matrix
        self._cached_adj_close = _arr(state["adj_close"], "adj_close")
        self._cached_t1 = _arr(state["t1"], "t1")
        self._cached_t2 = _arr(state["t2"], "t2")
        self._cached_version = int(state["version"])
        # Absent in pre-drift-fix checkpoints; 0 re-arms the rebuild clock.
        self._t2_updates = int(state.get("t2_updates", 0))

    def _structure(self) -> tuple[np.ndarray, np.ndarray]:
        """(relationship-factor matrix, boolean adjacency matrix), cached."""
        if self._rel_factors is None or self._adjacency is None:
            n = self.n_nodes
            factors = np.zeros((n, n), dtype=np.float64)
            adjacency = np.zeros((n, n), dtype=bool)
            view = self._view
            cfg = self._config
            for i in range(n):
                for j in view.friends(i):
                    adjacency[i, j] = True
                    if factors[i, j] == 0.0:
                        value = relationship_factor(
                            view.relationships(i, j),
                            hardened=cfg.hardened,
                            lambda_scaling=cfg.lambda_scaling,
                        )
                        factors[i, j] = factors[j, i] = value
            self._rel_factors = factors
            self._adjacency = adjacency
        return self._rel_factors, self._adjacency

    # -- scalar reference path ------------------------------------------------

    def adjacent(self, i: int, j: int) -> float:
        """Eq. (2) (plain) / Eq. (10) first branch (hardened)."""
        factor = relationship_factor(
            self._view.relationships(i, j),
            hardened=self._config.hardened,
            lambda_scaling=self._config.lambda_scaling,
        )
        if factor == 0.0:
            return 0.0
        return factor * self._interactions.share(i, j)

    def closeness(self, i: int, j: int) -> float:
        """Full piecewise ``Ωc(i,j)`` — Eq. (4) / Eq. (10)."""
        if i == j:
            raise ValueError("closeness of a node to itself is undefined")
        view = self._view
        if view.are_adjacent(i, j):
            return self.adjacent(i, j)
        common = view.friends(i) & view.friends(j)
        if common:
            total = 0.0
            for k in common:
                total += (self.adjacent(i, k) + self.adjacent(k, j)) / 2.0
            if self._config.common_friend_aggregate is CommonFriendAggregate.MEAN:
                total /= len(common)
            return total
        return self._path_min(i, j)

    def _path_min(self, i: int, j: int) -> float:
        path = self._view.path(i, j)
        if len(path) < 2:
            return 0.0
        return min(
            self.adjacent(path[step], path[step + 1])
            for step in range(len(path) - 1)
        )

    # -- vectorised all-pairs path --------------------------------------------

    def _structure_extras(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(float adjacency, common-friend counts, fallback pairs) — all
        static given the adjacency structure, so cached alongside it."""
        if self._adj_float is None:
            _, adjacency = self._structure()
            adj_f = adjacency.astype(np.float64)
            common_counts = adj_f @ adj_f
            need_fallback = (~adjacency) & (common_counts == 0)
            np.fill_diagonal(need_fallback, False)
            if need_fallback.any():
                # Pairs in different connected components have no path, so
                # their fallback value is the 0 the matrix already holds —
                # skip the per-pair BFS for them (pure speedup, the values
                # are bit-identical).  On community-structured graphs this
                # is the difference between O(n + m) and O(n^2) BFS walks.
                from scipy.sparse import csgraph, csr_matrix

                _, labels = csgraph.connected_components(
                    csr_matrix(adjacency), directed=False
                )
                need_fallback &= labels[:, None] == labels[None, :]
            self._adj_float = adj_f
            self._common_counts = common_counts
            self._fallback_pairs = np.argwhere(need_fallback)
        return self._adj_float, self._common_counts, self._fallback_pairs

    def _assemble(self) -> np.ndarray:
        """Build the final matrix from the cached Eq. (3) terms."""
        _, adjacency = self._structure()
        adj_f, common_counts, fallback_pairs = self._structure_extras()
        adj_close = self._cached_adj_close
        # Eq. (3): combine, over common friends, the mean of the two legs.
        common_sum = 0.5 * (self._cached_t1 + self._cached_t2)
        if self._config.common_friend_aggregate is CommonFriendAggregate.MEAN:
            common_sum = np.divide(
                common_sum,
                common_counts,
                out=np.zeros_like(common_sum),
                where=common_counts > 0,
            )
        out = np.where(adjacency, adj_close, np.where(common_counts > 0, common_sum, 0.0))
        np.fill_diagonal(out, 0.0)
        # Fallback: non-adjacent pairs with zero common friends but a path.
        # Interaction shares are directed, so each direction is walked
        # separately; these pairs are rare in practice.
        for i, j in fallback_pairs:
            out[i, j] = self._path_min(int(i), int(j))
        return out

    def closeness_matrix(self) -> np.ndarray:
        """All-pairs ``Ωc`` matrix (diagonal zero), cached incrementally.

        Agrees entry-wise with :meth:`closeness`; used by the detector so
        each reputation-update interval costs O(n^2) NumPy work instead of
        O(n^2) Python-level graph walks.  The result is keyed on the
        interaction ledger's version: unchanged ledger → cache hit; a few
        dirty rows → row-wise update of the matmul terms; mostly-dirty
        ledger → full exact rebuild (see the module docstring).  The
        returned array is read-only (it is the live cache).
        """
        factors, adjacency = self._structure()
        version = self._interactions.version
        if self._cached_matrix is not None and self._cached_version == version:
            return self._cached_matrix
        adj_f, _, _ = self._structure_extras()
        shares = self._interactions.share_matrix()
        dirty = (
            self._interactions.rows_changed_since(self._cached_version)
            if self._cached_matrix is not None
            else None
        )
        if (
            dirty is None
            or dirty.size > self.n_nodes // 2
            or self._t2_updates >= self._config.cache_rebuild_interval
        ):
            adj_close = factors * shares * adjacency
            self._cached_adj_close = adj_close
            self._cached_t1 = adj_close @ adj_f
            self._cached_t2 = adj_f @ adj_close
            self._t2_updates = 0
        elif dirty.size:
            new_rows = factors[dirty] * shares[dirty] * adjacency[dirty]
            delta = new_rows - self._cached_adj_close[dirty]
            self._cached_adj_close[dirty] = new_rows
            # T1 rows only depend on the matching A rows: exact recompute.
            self._cached_t1[dirty] = new_rows @ adj_f
            # T2 takes the low-rank correction F[:, D] @ ΔA[D].
            self._cached_t2 += adj_f[:, dirty] @ delta
            self._t2_updates += 1
        out = self._assemble()
        out.flags.writeable = False
        self._cached_matrix = out
        self._cached_version = version
        return out

    def pair_values(self, raters, ratees) -> np.ndarray:
        """``Ωc`` over pair arrays — same gather API as the sparse backend
        (reads from the cached matrix)."""
        matrix = self.closeness_matrix()
        i = np.asarray(raters, dtype=np.int64)
        j = np.asarray(ratees, dtype=np.int64)
        return np.asarray(matrix[i, j], dtype=np.float64)

    # -- band summaries ---------------------------------------------------------

    def rater_band(self, rater: int, rated: frozenset[int] | set[int]) -> RaterBand | None:
        """Band over the rater's closeness to every node it has rated.

        Reads from :meth:`closeness_matrix`, so the band always reflects
        the current ledger state (including ``decay_nodes`` aging) instead
        of silently diverging from the matrix the detector sees.
        """
        matrix = self.closeness_matrix()
        values = [float(matrix[rater, j]) for j in rated if j != rater]
        if not values:
            return None
        return RaterBand.from_values(values)

    def global_band(self, pairs: list[tuple[int, int]]) -> RaterBand | None:
        """Band over the closeness of arbitrary transaction pairs (read from
        the cached matrix, same consistency guarantee as :meth:`rater_band`)."""
        matrix = self.closeness_matrix()
        values = [float(matrix[i, j]) for i, j in pairs if i != j]
        if not values:
            return None
        return RaterBand.from_values(values)
