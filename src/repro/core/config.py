"""SocialTrust configuration.

All thresholds and switches of Section 4 live here so that every design
choice the paper mentions is an explicit, ablatable knob:

* frequency thresholds ``T+_t`` / ``T-_t`` — absolute values, or derived as
  ``theta * F`` from the observed mean rating frequency (Section 4.1);
* the low-reputation threshold ``T_R`` of behaviour B2;
* the closeness / similarity band thresholds ``T_ch``, ``T_cl``, ``T_sh``,
  ``T_sl`` — absolute values, or derived per update as percentiles of the
  observed coefficient distribution (the paper sets them "from empirical
  experience"; percentiles make that reproducible);
* Gaussian centring — at the rater's own mean coefficient or at the
  system-wide mean ("we also can replace Ω̄ci with the average Ωc of a pair
  of transaction peers in the system");
* plain vs hardened coefficient formulas (Eqs. (4)/(7) vs (10)/(11));
* per-dimension toggles for the closeness-only / similarity-only ablations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "CoefficientBackend",
    "CommonFriendAggregate",
    "GaussianCenter",
    "SocialTrustConfig",
]


class CoefficientBackend(enum.Enum):
    """Numerical backend for the Ωc/Ωs coefficient computations.

    DENSE is the seed path: all-pairs ``n x n`` NumPy matrices, bit-stable
    against the checked-in goldens, practical up to a few thousand nodes.
    SPARSE rebuilds the same quantities on SciPy CSR structures and
    evaluates the detector only over the frequency-flagged pair set, which
    is what pushes the detector interval from ``n ~ 10^3`` to ``10^5``;
    it agrees with DENSE within floating-point tolerance (summation order
    differs), and exactly-optionally truncates each node's coefficient
    neighbourhood to its top-k entries (see
    :attr:`SocialTrustConfig.sparse_top_k`).
    """

    DENSE = "dense"
    SPARSE = "sparse"


class CommonFriendAggregate(enum.Enum):
    """How Eq. (3) combines the per-common-friend closeness terms.

    The paper's Eq. (3) is written as a *sum* over common friends, but its
    prose says the closeness through a common friend "is calculated by
    averaging" — and the sum makes closeness grow with the number of
    common friends, which lets one inflated leg (e.g. a colluder's pumped
    closeness to its partner) leak into the rater's closeness to every
    node that shares a friend with that partner, widening the rater's
    normal band and masking the very outlier the filter should catch.
    MEAN is therefore the default; SUM retains the literal formula.
    """

    MEAN = "mean"
    SUM = "sum"


class GaussianCenter(enum.Enum):
    """Where the Gaussian reputation filter is centred."""

    #: Centre at the rater's own mean coefficient over nodes it has rated.
    RATER = "rater"
    #: Centre at the system-wide mean coefficient over transaction pairs.
    GLOBAL = "global"
    #: Rater band when the rater has rated enough distinct nodes
    #: (``min_band_size``), otherwise the global band.  This closes the
    #: loophole where a colluder who only ever rates one partner has zero
    #: deviation from its own mean.
    AUTO = "auto"


@dataclass(frozen=True)
class SocialTrustConfig:
    """Parameter bundle for SocialTrust.

    Defaults follow the paper's evaluation setup where stated (``alpha=1``)
    and its trace-derived empirics elsewhere.
    """

    #: Gaussian peak height ``a`` in Eq. (5); the paper sets 1.
    alpha: float = 1.0
    #: Scaling factor ``theta > 1`` applied to the observed mean rating
    #: frequency ``F`` to obtain frequency thresholds when the explicit
    #: thresholds below are ``None``.
    theta: float = 2.0
    #: Absolute positive-rating-frequency threshold ``T+_t`` per interval;
    #: ``None`` derives ``theta * mean positive frequency`` per update.
    pos_frequency_threshold: float | None = None
    #: Absolute negative-rating-frequency threshold ``T-_t`` per interval.
    neg_frequency_threshold: float | None = None
    #: Low-reputation threshold ``T_R`` used by behaviour B2; ``None``
    #: derives twice the uniform share ``2 / n_nodes`` at update time
    #: (the paper's 0.01 at 200 nodes).
    low_reputation_threshold: float | None = None
    #: Closeness band thresholds ``T_cl`` / ``T_ch``.  ``None`` derives the
    #: 25th / 75th percentile of the positive observed closenesses.
    closeness_low: float | None = None
    closeness_high: float | None = None
    #: Similarity band thresholds ``T_sl`` / ``T_sh``; same convention.
    similarity_low: float | None = None
    similarity_high: float | None = None
    #: Eq. (3) aggregation over common friends (see
    #: :class:`CommonFriendAggregate`).
    common_friend_aggregate: CommonFriendAggregate = CommonFriendAggregate.MEAN
    #: Gaussian centring policy.
    center: GaussianCenter = GaussianCenter.AUTO
    #: Minimum number of distinct rated nodes before AUTO trusts the
    #: rater's own band.
    min_band_size: int = 3
    #: Use the hardened coefficient formulas (Eqs. (10) and (11)).
    hardened: bool = True
    #: Relationship scaling weight ``lambda`` of Eq. (10); in [0.5, 1].
    lambda_scaling: float = 0.75
    #: Ablation toggles for the two Gaussian dimensions of Eq. (9).
    use_closeness: bool = True
    use_similarity: bool = True
    #: Additionally scale a flagged pair's rating influence by
    #: ``T_t / observed frequency`` so a suspicious pair contributes at
    #: most a normal-frequency pair's worth of rating mass per interval.
    #: This closes the gap Eq. (9) leaves for colluders whose coefficients
    #: *look* normal (e.g. a pair keeping social distance 2-3: their
    #: pumped frequency dilutes their own closeness everywhere, so the
    #: Gaussian deviation is small) — without it, Fig. 20's containment at
    #: moderate distances is not reproducible.  Documented as a
    #: reproduction decision in DESIGN.md §5.
    cap_flagged_frequency: bool = True
    #: Geometric escalation against repeat offenders: a pair flagged in
    #: ``k`` earlier intervals has its weight multiplied by ``decay**k``.
    #: A one-off anomaly (possible false positive) keeps the mild
    #: single-interval treatment; a sustained rating campaign — the only
    #: way collusion pays — is driven to zero.  1.0 disables escalation.
    recidivism_decay: float = 0.5
    #: Damping weight a distributed manager applies to a *suspected* pair
    #: whose social information stayed unreachable after retries (manager
    #: down with no live successor, or every ``info_request`` lost).  The
    #: conservative middle ground: neither trusting the suspect rating at
    #: full weight (1.0) nor erasing it on unverified suspicion (0.0).
    #: Only the fault-injected execution path ever uses it.
    neutral_damping: float = 0.5
    #: Lower bound on the Gaussian spread ``c`` to avoid division by zero
    #: when a band has max == min.
    spread_floor: float = 1e-3
    #: Numerical backend for the coefficient computations (see
    #: :class:`CoefficientBackend`); accepts the enum or its string value.
    coefficient_backend: CoefficientBackend = CoefficientBackend.DENSE
    #: Sparse backend only: keep at most this many Ωc entries per node
    #: (the strongest ones) when materialising the coefficient matrix.
    #: Truncated pairs read as coefficient 0 — they sit below ``T_cl`` /
    #: ``T_sl`` anyway, so they contribute nothing to a rater's band or to
    #: the Gaussian damping and are simply never materialised.  ``None``
    #: (default) disables truncation: the sparse path is then exact up to
    #: float summation order.
    sparse_top_k: int | None = None
    #: Force an exact from-scratch rebuild of the incrementally-maintained
    #: Ωc ``T2`` term after this many consecutive low-rank corrections.
    #: The correction is mathematically exact but accumulates float drift
    #: (it is "exact but not bitwise"), so churn-heavy runs that stay on
    #: the incremental path for thousands of updates would otherwise let
    #: the drift grow without bound.
    cache_rebuild_interval: int = 64

    def __post_init__(self) -> None:
        # String spellings keep the config JSON-round-trippable (golden /
        # checkpoint headers store configs as plain dicts).
        for name, enum_type in (
            ("common_friend_aggregate", CommonFriendAggregate),
            ("center", GaussianCenter),
            ("coefficient_backend", CoefficientBackend),
        ):
            value = getattr(self, name)
            if not isinstance(value, enum_type):
                object.__setattr__(self, name, enum_type(value))
        check_positive("alpha", self.alpha)
        if self.theta <= 1.0:
            raise ValueError(f"theta must be > 1, got {self.theta}")
        for name in ("pos_frequency_threshold", "neg_frequency_threshold"):
            value = getattr(self, name)
            if value is not None:
                check_positive(name, value)
        if self.low_reputation_threshold is not None:
            check_probability("low_reputation_threshold", self.low_reputation_threshold)
        for name in (
            "closeness_low",
            "closeness_high",
            "similarity_low",
            "similarity_high",
        ):
            value = getattr(self, name)
            if value is not None:
                check_probability(name, min(value, 1.0)) if value <= 1.0 else None
                if value < 0:
                    raise ValueError(f"{name} must be >= 0, got {value}")
        if (
            self.closeness_low is not None
            and self.closeness_high is not None
            and self.closeness_low > self.closeness_high
        ):
            raise ValueError("closeness_low must not exceed closeness_high")
        if (
            self.similarity_low is not None
            and self.similarity_high is not None
            and self.similarity_low > self.similarity_high
        ):
            raise ValueError("similarity_low must not exceed similarity_high")
        if not 0.5 <= self.lambda_scaling <= 1.0:
            raise ValueError(
                f"lambda_scaling must be in [0.5, 1], got {self.lambda_scaling}"
            )
        if self.min_band_size < 1:
            raise ValueError(f"min_band_size must be >= 1, got {self.min_band_size}")
        check_probability("neutral_damping", self.neutral_damping)
        check_fraction("spread_floor", self.spread_floor)
        check_fraction("recidivism_decay", self.recidivism_decay)
        if self.sparse_top_k is not None and self.sparse_top_k < 1:
            raise ValueError(
                f"sparse_top_k must be >= 1 or None, got {self.sparse_top_k}"
            )
        if self.cache_rebuild_interval < 1:
            raise ValueError(
                "cache_rebuild_interval must be >= 1, got "
                f"{self.cache_rebuild_interval}"
            )
        if not (self.use_closeness or self.use_similarity):
            raise ValueError(
                "at least one of use_closeness / use_similarity must be enabled"
            )

    def to_dict(self) -> dict:
        """JSON-friendly dict (enums as their string values); the inverse
        of ``SocialTrustConfig(**d)``, used by golden/checkpoint headers."""
        from dataclasses import fields as dc_fields

        out = {}
        for f in dc_fields(self):
            value = getattr(self, f.name)
            out[f.name] = value.value if isinstance(value, enum.Enum) else value
        return out
