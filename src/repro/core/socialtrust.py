"""The SocialTrust wrapper — centralised execution path.

``SocialTrust`` decorates any base :class:`~repro.reputation.base.ReputationSystem`.
Each reputation-update interval it runs the collusion detector over the
interval's rating aggregates, scales the flagged rater→ratee rating sums by
the Gaussian damping weights, and forwards the adjusted interval to the
wrapped system.  The base system's own aggregation (EigenTrust power
iteration, eBay accumulation, ...) is untouched — exactly the layering the
paper describes ("SocialTrust is built upon the reputation system of the
P2P network and re-scales node reputation values").
"""

from __future__ import annotations

import numpy as np

from repro.core.closeness import ClosenessComputer
from repro.core.config import CoefficientBackend, SocialTrustConfig
from repro.core.detector import CollusionDetector, DetectionResult
from repro.core.similarity import SimilarityComputer
from repro.core.sparse import SparseClosenessComputer, SparseSimilarityComputer
from repro.obs import NULL_TRACER, Observability
from repro.reputation.base import IntervalRatings, ReputationSystem
from repro.social.graph import SocialView
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles

__all__ = ["SocialTrust"]


class SocialTrust(ReputationSystem):
    """Collusion-resilient wrapper around a base reputation system.

    Parameters
    ----------
    inner:
        The base reputation system whose ratings are filtered.
    social_view:
        The social network (friendships, relationships, distances).
    interactions:
        Directed interaction-frequency ledger (fed by the simulator; the
        paper equates interaction frequency with rating frequency).
    profiles:
        Declared interest sets plus behavioural request counters.
    config:
        Thresholds and switches; defaults follow the paper.
    """

    def __init__(
        self,
        inner: ReputationSystem,
        social_view: SocialView,
        interactions: InteractionLedger,
        profiles: InterestProfiles,
        config: SocialTrustConfig | None = None,
        *,
        observability: Observability | None = None,
    ) -> None:
        super().__init__(inner.n_nodes)
        for other, label in (
            (social_view.n_nodes, "social view"),
            (interactions.n_nodes, "interaction ledger"),
            (profiles.n_nodes, "interest profiles"),
        ):
            if other != inner.n_nodes:
                raise ValueError(
                    f"{label} covers {other} nodes but the base system has "
                    f"{inner.n_nodes}"
                )
        self._inner = inner
        self._config = config or SocialTrustConfig()
        self._obs = observability
        self._tracer = observability.tracer if observability is not None else NULL_TRACER
        if self._config.coefficient_backend is CoefficientBackend.SPARSE:
            self._closeness = SparseClosenessComputer(
                social_view, interactions, self._config
            )
            self._similarity = SparseSimilarityComputer(profiles, self._config)
            if observability is not None:
                self._closeness.bind_metrics(observability.metrics)
        else:
            self._closeness = ClosenessComputer(
                social_view, interactions, self._config
            )
            self._similarity = SimilarityComputer(profiles, self._config)
        self._detector = CollusionDetector(
            self._closeness, self._similarity, self._config,
            observability=observability,
        )
        self._rated_mask = np.zeros((inner.n_nodes, inner.n_nodes), dtype=bool)
        self._flag_counts = np.zeros((inner.n_nodes, inner.n_nodes), dtype=np.int64)
        self._last_result: DetectionResult | None = None

    @property
    def name(self) -> str:
        return f"{self._inner.name}+SocialTrust"

    @property
    def inner(self) -> ReputationSystem:
        return self._inner

    @property
    def config(self) -> SocialTrustConfig:
        return self._config

    @property
    def closeness_computer(self) -> ClosenessComputer | SparseClosenessComputer:
        return self._closeness

    @property
    def similarity_computer(self) -> SimilarityComputer | SparseSimilarityComputer:
        return self._similarity

    @property
    def last_detection(self) -> DetectionResult | None:
        """Detector output of the most recent :meth:`update` (None before any)."""
        return self._last_result

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        with self._tracer.span("detector.analyze") as span:
            result = self._detector.analyze(
                interval, self._inner.reputations, self._rated_mask,
                self._flag_counts,
            )
            span.set("findings", result.n_adjusted)
        self._last_result = result
        self._rated_mask |= interval.counts > 0
        np.fill_diagonal(self._rated_mask, False)
        for finding in result.findings:
            self._flag_counts[finding.rater, finding.ratee] += 1
        adjusted = interval.scaled(result.weights)
        with self._tracer.span("reputation.inner_update", system=self._inner.name):
            return self._inner.update(adjusted)

    @property
    def reputations(self) -> np.ndarray:
        return self._inner.reputations

    def pair_weight(self, rater: int, ratee: int) -> float:
        """Live Gaussian damping weight for one rater→ratee pair.

        Reads the most recent detector result without recomputing
        anything — the streaming service's damping-query path.  1.0 when
        the pair was not adjusted last interval (or before any update).
        """
        if not (0 <= rater < self.n_nodes and 0 <= ratee < self.n_nodes):
            raise ValueError(
                f"pair ({rater}, {ratee}) out of range [0, {self.n_nodes})"
            )
        if self._last_result is None:
            return 1.0
        return float(self._last_result.weights[rater, ratee])

    @property
    def flag_counts(self) -> np.ndarray:
        """Read-only per-pair count of intervals each pair was flagged in."""
        view = self._flag_counts.view()
        view.flags.writeable = False
        return view

    def reset(self) -> None:
        self._inner.reset()
        self._detector.reset()
        self._rated_mask[:] = False
        self._flag_counts[:] = 0
        self._last_result = None

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Inner system, detector interval counter, recidivism
        bookkeeping, and the Ωc/Ωs value caches (whose incremental
        updates are not bitwise equal to a fresh rebuild)."""
        return {
            "inner": self._inner.state_dict(),
            "detector": self._detector.state_dict(),
            "rated_mask": self._rated_mask.copy(),
            "flag_counts": self._flag_counts.copy(),
            "closeness": self._closeness.state_dict(),
            "similarity": self._similarity.state_dict(),
        }

    def restore_state(self, state: dict) -> None:
        self._inner.restore_state(state["inner"])
        self._detector.restore_state(state["detector"])
        self._rated_mask = np.asarray(state["rated_mask"], dtype=bool).copy()
        self._flag_counts = np.asarray(state["flag_counts"], dtype=np.int64).copy()
        self._last_result = None
        self._closeness.restore_state(state["closeness"])
        self._similarity.restore_state(state["similarity"])
