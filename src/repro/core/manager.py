"""Distributed SocialTrust — the resource-manager protocol of Section 4.3.

In a large decentralised P2P network no single party holds all ratings and
social information.  The paper assigns each node a *resource manager* that
collects the ratings for the nodes it manages, tracks per-rater rating
frequencies, and — when a rater trips a frequency threshold — contacts the
rater's own manager for the social information (friend list, interest set)
needed to judge the pair and adjust the rating.

This module emulates that protocol faithfully at the information-flow
level:

* node → manager assignment is explicit and configurable;
* per interval, each ratee-side manager reports incoming ratings to the
  corresponding rater-side managers (one batched ``rating_report`` message
  per manager pair that actually exchanged ratings);
* each suspected pair whose rater and ratee live under *different*
  managers costs one ``info_request`` / ``info_response`` round trip;
* the numerical judgement each rater-side manager performs is exactly the
  centralised detector's — so :class:`DistributedSocialTrust` provably
  produces reputations identical to :class:`~repro.core.socialtrust.SocialTrust`
  while exposing the message-complexity of the distributed execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.closeness import ClosenessComputer
from repro.core.config import SocialTrustConfig
from repro.core.detector import CollusionDetector, DetectionResult
from repro.core.similarity import SimilarityComputer
from repro.reputation.base import IntervalRatings, ReputationSystem
from repro.social.graph import SocialView
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles

__all__ = ["ResourceManager", "DistributedSocialTrust"]


@dataclass
class ResourceManager:
    """One trustworthy manager node responsible for a subset of peers."""

    manager_id: int
    managed: frozenset[int]
    #: Messages sent by this manager, keyed by message kind.
    messages_sent: Counter = field(default_factory=Counter)

    def record_message(self, kind: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError("message count must be non-negative")
        self.messages_sent[kind] += count

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())


class DistributedSocialTrust(ReputationSystem):
    """SocialTrust executed across a set of resource managers.

    Parameters mirror :class:`~repro.core.socialtrust.SocialTrust`, plus
    ``n_managers`` (nodes are assigned round-robin) or an explicit
    ``assignment`` array mapping node id → manager id.
    """

    def __init__(
        self,
        inner: ReputationSystem,
        social_view: SocialView,
        interactions: InteractionLedger,
        profiles: InterestProfiles,
        config: SocialTrustConfig | None = None,
        *,
        n_managers: int = 4,
        assignment: Sequence[int] | None = None,
    ) -> None:
        super().__init__(inner.n_nodes)
        n = inner.n_nodes
        if assignment is not None:
            assign = np.asarray(assignment, dtype=np.int64)
            if assign.shape != (n,):
                raise ValueError(
                    f"assignment must have one entry per node ({n}), got "
                    f"shape {assign.shape}"
                )
            if assign.min() < 0:
                raise ValueError("manager ids must be non-negative")
        else:
            if n_managers < 1:
                raise ValueError(f"n_managers must be >= 1, got {n_managers}")
            assign = np.arange(n, dtype=np.int64) % n_managers
        self._assignment = assign
        manager_ids = sorted(set(int(m) for m in assign))
        self._managers = {
            m: ResourceManager(
                manager_id=m,
                managed=frozenset(int(x) for x in np.flatnonzero(assign == m)),
            )
            for m in manager_ids
        }
        self._inner = inner
        self._config = config or SocialTrustConfig()
        self._closeness = ClosenessComputer(social_view, interactions, self._config)
        self._similarity = SimilarityComputer(profiles, self._config)
        self._detector = CollusionDetector(
            self._closeness, self._similarity, self._config
        )
        self._rated_mask = np.zeros((n, n), dtype=bool)
        self._flag_counts = np.zeros((n, n), dtype=np.int64)
        self._last_result: DetectionResult | None = None

    @property
    def name(self) -> str:
        return f"{self._inner.name}+SocialTrust(distributed)"

    @property
    def inner(self) -> ReputationSystem:
        return self._inner

    @property
    def managers(self) -> tuple[ResourceManager, ...]:
        return tuple(self._managers.values())

    @property
    def last_detection(self) -> DetectionResult | None:
        return self._last_result

    def manager_of(self, node: int) -> ResourceManager:
        return self._managers[int(self._assignment[node])]

    @property
    def total_messages(self) -> int:
        return sum(m.total_messages for m in self._managers.values())

    def _account_messages(
        self, interval: IntervalRatings, result: DetectionResult
    ) -> None:
        """Charge the protocol's message costs to the sending managers."""
        assign = self._assignment
        # Rating reports: the ratee's manager batches "your node n_i rated
        # n_j k times (value v)" notices to each distinct rater-side manager.
        rater_idx, ratee_idx = np.nonzero(interval.counts)
        if rater_idx.size:
            pair_managers = set(
                zip(assign[ratee_idx].tolist(), assign[rater_idx].tolist())
            )
            for ratee_mgr, rater_mgr in pair_managers:
                if ratee_mgr != rater_mgr:
                    self._managers[ratee_mgr].record_message("rating_report")
        # Info round trips: judging a suspected pair whose endpoints live
        # under different managers needs the ratee-side social information.
        for finding in result.findings:
            rater_mgr = int(assign[finding.rater])
            ratee_mgr = int(assign[finding.ratee])
            if rater_mgr != ratee_mgr:
                self._managers[rater_mgr].record_message("info_request")
                self._managers[ratee_mgr].record_message("info_response")

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        result = self._detector.analyze(
            interval, self._inner.reputations, self._rated_mask, self._flag_counts
        )
        self._last_result = result
        self._account_messages(interval, result)
        self._rated_mask |= interval.counts > 0
        np.fill_diagonal(self._rated_mask, False)
        for finding in result.findings:
            self._flag_counts[finding.rater, finding.ratee] += 1
        # Each rater-side manager applies the adjustment to its own nodes'
        # outgoing ratings; composing the row slices reproduces the full
        # weight matrix exactly.
        weights = np.ones_like(result.weights)
        for manager in self._managers.values():
            rows = sorted(manager.managed)
            weights[rows, :] = result.weights[rows, :]
        adjusted = interval.scaled(weights)
        return self._inner.update(adjusted)

    @property
    def reputations(self) -> np.ndarray:
        return self._inner.reputations

    def reset(self) -> None:
        self._inner.reset()
        self._rated_mask[:] = False
        self._flag_counts[:] = 0
        self._last_result = None
        for manager in self._managers.values():
            manager.messages_sent.clear()
