"""Distributed SocialTrust — the resource-manager protocol of Section 4.3.

In a large decentralised P2P network no single party holds all ratings and
social information.  The paper assigns each node a *resource manager* that
collects the ratings for the nodes it manages, tracks per-rater rating
frequencies, and — when a rater trips a frequency threshold — contacts the
rater's own manager for the social information (friend list, interest set)
needed to judge the pair and adjust the rating.

This module emulates that protocol faithfully at the information-flow
level:

* node → manager assignment is explicit and configurable;
* per interval, each ratee-side manager reports incoming ratings to the
  corresponding rater-side managers (one batched ``rating_report`` message
  per manager pair that actually exchanged ratings);
* each suspected pair whose rater and ratee live under *different*
  managers costs one ``info_request`` / ``info_response`` round trip;
* the numerical judgement each rater-side manager performs is exactly the
  centralised detector's — so :class:`DistributedSocialTrust` provably
  produces reputations identical to :class:`~repro.core.socialtrust.SocialTrust`
  while exposing the message-complexity of the distributed execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.closeness import ClosenessComputer
from repro.core.config import CoefficientBackend, SocialTrustConfig
from repro.core.detector import CollusionDetector, DetectionResult, Finding
from repro.core.similarity import SimilarityComputer
from repro.core.sparse import SparseClosenessComputer, SparseSimilarityComputer
from repro.faults.injector import FaultInjector
from repro.obs import NULL_TRACER, Observability
from repro.p2p.dht import ChordRing
from repro.reputation.base import IntervalRatings, ReputationSystem
from repro.social.graph import SocialView
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles

__all__ = ["MESSAGE_KINDS", "ResourceManager", "DistributedSocialTrust"]


#: The protocol's message vocabulary (Section 4.3): batched rating
#: notices plus the social-information round trip.
MESSAGE_KINDS = frozenset({"rating_report", "info_request", "info_response"})


@dataclass
class ResourceManager:
    """One trustworthy manager node responsible for a subset of peers."""

    manager_id: int
    managed: frozenset[int]
    #: Messages sent by this manager, keyed by message kind.
    messages_sent: Counter = field(default_factory=Counter)

    def record_message(self, kind: str, count: int = 1) -> None:
        if kind not in MESSAGE_KINDS:
            raise ValueError(
                f"unknown message kind {kind!r}; expected one of "
                f"{sorted(MESSAGE_KINDS)}"
            )
        if count < 0:
            raise ValueError("message count must be non-negative")
        if count == 0:
            # Recording zero messages must not materialise a zero-count
            # Counter row — that would skew message-kind enumeration in
            # reports built from ``messages_sent`` keys.
            return
        self.messages_sent[kind] += count

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())


class DistributedSocialTrust(ReputationSystem):
    """SocialTrust executed across a set of resource managers.

    Parameters mirror :class:`~repro.core.socialtrust.SocialTrust`, plus
    ``n_managers`` (nodes are assigned round-robin) or an explicit
    ``assignment`` array mapping node id → manager id.
    """

    def __init__(
        self,
        inner: ReputationSystem,
        social_view: SocialView,
        interactions: InteractionLedger,
        profiles: InterestProfiles,
        config: SocialTrustConfig | None = None,
        *,
        n_managers: int = 4,
        assignment: Sequence[int] | None = None,
        ring: "ChordRing | None" = None,
        injector: "FaultInjector | None" = None,
        observability: Observability | None = None,
    ) -> None:
        super().__init__(inner.n_nodes)
        n = inner.n_nodes
        if assignment is not None:
            assign = np.asarray(assignment, dtype=np.int64)
            if assign.shape != (n,):
                raise ValueError(
                    f"assignment must have one entry per node ({n}), got "
                    f"shape {assign.shape}"
                )
            if assign.min() < 0:
                raise ValueError("manager ids must be non-negative")
        else:
            if n_managers < 1:
                raise ValueError(f"n_managers must be >= 1, got {n_managers}")
            assign = np.arange(n, dtype=np.int64) % n_managers
        self._assignment = assign
        assigned_ids = set(int(m) for m in assign)
        if ring is not None and not assigned_ids <= set(ring.managers):
            missing = sorted(assigned_ids - set(ring.managers))
            raise ValueError(f"assignment uses managers not on the ring: {missing}")
        self._ring = ring
        # Every ring participant gets a ResourceManager (possibly with no
        # managed nodes) so failover targets can be charged for messages.
        manager_ids = sorted(assigned_ids | set(ring.managers if ring else ()))
        self._managers = {
            m: ResourceManager(
                manager_id=m,
                managed=frozenset(int(x) for x in np.flatnonzero(assign == m)),
            )
            for m in manager_ids
        }
        self._injector = injector
        if injector is not None:
            if injector.n_nodes != n:
                raise ValueError(
                    f"fault injector covers {injector.n_nodes} nodes, "
                    f"system has {n}"
                )
            injector.register_managers(manager_ids)
            if self._ring is None:
                # Failover needs a ring to agree on crash successors.
                self._ring = ChordRing(manager_ids)
        self._inner = inner
        self._config = config or SocialTrustConfig()
        self._obs = observability
        self._tracer = (
            observability.tracer if observability is not None else NULL_TRACER
        )
        if self._config.coefficient_backend is CoefficientBackend.SPARSE:
            self._closeness = SparseClosenessComputer(
                social_view, interactions, self._config
            )
            self._similarity = SparseSimilarityComputer(profiles, self._config)
            if observability is not None:
                self._closeness.bind_metrics(observability.metrics)
        else:
            self._closeness = ClosenessComputer(
                social_view, interactions, self._config
            )
            self._similarity = SimilarityComputer(profiles, self._config)
        self._detector = CollusionDetector(
            self._closeness, self._similarity, self._config,
            observability=observability,
        )
        self._rated_mask = np.zeros((n, n), dtype=bool)
        self._flag_counts = np.zeros((n, n), dtype=np.int64)
        self._last_result: DetectionResult | None = None
        #: Weights applied in the previous interval — what a Byzantine
        #: manager in ``"stale"`` mode replays for its rows.
        self._last_weights: np.ndarray | None = None

    @property
    def name(self) -> str:
        return f"{self._inner.name}+SocialTrust(distributed)"

    @property
    def inner(self) -> ReputationSystem:
        return self._inner

    @property
    def managers(self) -> tuple[ResourceManager, ...]:
        return tuple(self._managers.values())

    @property
    def last_detection(self) -> DetectionResult | None:
        return self._last_result

    @property
    def closeness_computer(self) -> ClosenessComputer | SparseClosenessComputer:
        return self._closeness

    @property
    def similarity_computer(self) -> SimilarityComputer | SparseSimilarityComputer:
        return self._similarity

    def manager_of(self, node: int) -> ResourceManager:
        return self._managers[int(self._assignment[node])]

    @property
    def ring(self) -> "ChordRing | None":
        return self._ring

    @property
    def injector(self) -> "FaultInjector | None":
        return self._injector

    def effective_manager_of(self, node: int) -> ResourceManager | None:
        """The manager currently serving ``node`` — its home manager, or
        the Chord-ring failover successor while the home manager is down;
        ``None`` only when every manager is down."""
        serving = self._serving_managers()
        mid = serving[int(self._assignment[node])]
        return self._managers[mid] if mid is not None else None

    @property
    def total_messages(self) -> int:
        return sum(m.total_messages for m in self._managers.values())

    def _serving_managers(self) -> dict[int, int | None]:
        """home manager id → id of the manager currently serving its nodes.

        Fault-free (no injector, or nothing down) this is the identity.
        A down manager's nodes are re-assigned to its first live ring
        successor — a deterministic, coordination-free rule every
        surviving manager can evaluate locally.  ``None`` marks a home
        whose entire ring is down.
        """
        if self._injector is None:
            return {mid: mid for mid in self._managers}
        down = self._injector.down_managers() & set(self._managers)
        if not down:
            return {mid: mid for mid in self._managers}
        ring = self._ring
        assert ring is not None  # always built when an injector is attached
        serving: dict[int, int | None] = {}
        for mid in self._managers:
            if mid not in down:
                serving[mid] = mid
                continue
            successor: int | None = mid
            for _ in range(len(self._managers)):
                successor = ring.successor_of(successor)
                if successor not in down:
                    break
            else:
                successor = None
            serving[mid] = successor
        return serving

    def _account_rating_reports(
        self, interval: IntervalRatings, serving: dict[int, int | None]
    ) -> None:
        """Charge the interval's batched rating reports to their senders.

        The ratee's manager batches "your node n_i rated n_j k times
        (value v)" notices to each distinct rater-side manager.  Reports
        ride the lossy transport when a fault injector is attached; a lost
        report is retried with backoff and — failing that — re-batched
        into the next interval's report, so loss costs retries and
        latency, never rating information (the emulation keeps the
        information flow eventually consistent).
        """
        rater_idx, ratee_idx = np.nonzero(interval.counts)
        if not rater_idx.size:
            return
        assign = self._assignment
        transport = self._injector.transport if self._injector is not None else None
        pair_managers = set(
            zip(assign[ratee_idx].tolist(), assign[rater_idx].tolist())
        )
        injector = self._injector
        for ratee_home, rater_home in pair_managers:
            sender = serving[ratee_home]
            receiver = serving[rater_home]
            if sender is None or receiver is None or sender == receiver:
                continue
            if (
                injector is not None
                and injector.partition_active
                and injector.manager_side(sender) != injector.manager_side(receiver)
            ):
                # Opposite sides of an active partition: the report cannot
                # cross; it stays queued and is re-batched after heal.
                injector.metrics.record_partition_block()
                continue
            self._managers[sender].record_message("rating_report")
            if transport is not None:
                transport.send("rating_report")

    def _successor_replica(
        self, manager_id: int, rater_mgr: int
    ) -> int | None:
        """First live ring successor of ``manager_id`` reachable from
        ``rater_mgr`` (same partition side), or ``None``.

        The degradation ladder's second rung: the ring successor holds a
        replica of its predecessor's social information (the standard
        Chord successor-list recipe), so a failed primary round trip is
        retried once against it before giving up.
        """
        ring = self._ring
        injector = self._injector
        if ring is None:
            return None
        down = injector.down_managers() if injector is not None else frozenset()
        successor = int(manager_id)
        for _ in range(len(self._managers)):
            successor = ring.successor_of(successor)
            if successor == manager_id:
                return None
            if successor in down:
                continue
            if injector is not None and injector.partition_active:
                if injector.manager_side(successor) != injector.manager_side(
                    rater_mgr
                ):
                    continue
            return successor
        return None

    def _audit_degradation(
        self,
        finding: Finding,
        decision: str,
        weight: float,
        interval: IntervalRatings,
        result: DetectionResult,
    ) -> None:
        """Record one degradation-ladder outcome in the detector audit
        log, stamped with the interval the detector just analyzed."""
        if self._obs is None:
            return
        from repro.obs import AuditEvent

        interval_index = self._detector.last_interval_index
        if interval_index is None:
            return
        t = result.thresholds
        behaviors = tuple(
            name
            for name in ("B1", "B2", "B3", "B4")
            if getattr(type(finding.reasons), name) in finding.reasons
        )
        self._obs.audit.record(
            AuditEvent(
                interval=interval_index,
                rater=finding.rater,
                ratee=finding.ratee,
                decision=decision,
                behaviors=behaviors,
                fired=(),
                closeness=float(finding.closeness),
                similarity=float(finding.similarity),
                weight=float(weight),
                pos_count=float(interval.pos_counts[finding.rater, finding.ratee]),
                neg_count=float(interval.neg_counts[finding.rater, finding.ratee]),
                thresholds={
                    "T+": float(t.pos_frequency),
                    "T-": float(t.neg_frequency),
                    "TR": float(t.low_reputation),
                    "Tcl": float(t.closeness_low),
                    "Tch": float(t.closeness_high),
                    "Tsl": float(t.similarity_low),
                    "Tsh": float(t.similarity_high),
                },
            )
        )
        self._obs.metrics.counter(f"manager.degraded.{decision}").inc()
        # Roll-up across decisions — what the degradation-ladder SLO
        # rule reads without enumerating decision names.
        self._obs.metrics.counter("manager.degraded.total").inc()

    def _corrupt_byzantine_rows(
        self,
        weights: np.ndarray,
        interval: IntervalRatings,
        serving: dict[int, int | None],
    ) -> None:
        """Overwrite the rows served by Byzantine managers in place.

        A Byzantine manager keeps answering the protocol but lies about
        the damping weights for its nodes' outgoing ratings:
        ``"suppress"`` reports no damping at all, ``"stale"`` replays the
        weights it applied in the previous interval, and ``"corrupt"``
        dampens every rated pair in its rows indiscriminately.
        """
        injector = self._injector
        if injector is None:
            return
        bad = injector.byzantine_managers() & set(self._managers)
        if not bad:
            return
        mode = injector.config.byzantine_mode
        neutral = self._config.neutral_damping
        corrupted_rows = 0
        for mid in sorted(bad):
            manager = self._managers[mid]
            if not manager.managed or serving.get(mid) != mid:
                continue
            rows = sorted(manager.managed)
            if mode == "suppress":
                weights[rows, :] = 1.0
            elif mode == "stale":
                if self._last_weights is not None:
                    weights[rows, :] = self._last_weights[rows, :]
                else:
                    weights[rows, :] = 1.0
            else:  # "corrupt"
                sub = weights[rows, :]
                sub[interval.counts[rows, :] > 0] = neutral
                weights[rows, :] = sub
            corrupted_rows += len(rows)
        if corrupted_rows:
            injector.metrics.record_byzantine_corruption(corrupted_rows)

    def _failover_weights(
        self, result: DetectionResult, interval: IntervalRatings
    ) -> np.ndarray:
        """Compose the damping weights the managers actually apply.

        Fault-free this reproduces the centralised weight matrix exactly:
        each rater-side manager applies the detector's adjustment to its
        own nodes' outgoing ratings, and the row slices compose the full
        matrix.  Under faults, a down manager's rows are applied by its
        ring successor (same numbers — the judgement is deterministic
        given the social information), counted as reassignments, and each
        suspected cross-manager pair walks the explicit
        :class:`~repro.faults.policy.DegradationTier` ladder for its
        ``info_request`` / ``info_response`` round trip:

        1. **retry** — the transport retries the primary route under the
           unified :class:`~repro.faults.policy.RetryPolicy`;
        2. **successor** — a failed primary is retried once against the
           ratee-side manager's first live ring successor (its replica);
        3. **neutral damping** — both routes failed (or no live manager
           holds the information): the pair gets the conservative
           ``neutral_damping`` weight, recorded as a fallback and as a
           ``degraded_neutral`` audit event;
        4. **skip** — the ratee-side manager sits across an active
           network partition, so it is provably unreachable until heal:
           the judgement is deferred (the rating passes undamped this
           interval), counted as a partition block and audited as
           ``skipped``.

        Finally, any Byzantine manager's rows are overwritten with its
        lie (see :meth:`_corrupt_byzantine_rows`).
        """
        serving = self._serving_managers()
        weights = np.ones_like(result.weights)
        injector = self._injector
        metrics = injector.metrics if injector is not None else None
        neutral = self._config.neutral_damping
        all_down = all(mid is None for mid in serving.values())
        if all_down:
            for finding in result.findings:
                weights[finding.rater, finding.ratee] = neutral
                assert metrics is not None
                metrics.record_fallback()
                self._audit_degradation(
                    finding, "degraded_neutral", neutral, interval, result
                )
            self._last_weights = weights.copy()
            return weights
        for home, manager in self._managers.items():
            if not manager.managed:
                continue
            rows = sorted(manager.managed)
            weights[rows, :] = result.weights[rows, :]
            if serving[home] != home and metrics is not None:
                metrics.record_reassignment(len(rows))
        transport = injector.transport if injector is not None else None
        for finding in result.findings:
            rater_mgr = serving[int(self._assignment[finding.rater])]
            ratee_mgr = serving[int(self._assignment[finding.ratee])]
            if rater_mgr == ratee_mgr and rater_mgr is not None:
                continue  # social information is local to the manager
            if rater_mgr is None or ratee_mgr is None:
                weights[finding.rater, finding.ratee] = neutral
                assert metrics is not None
                metrics.record_fallback()
                self._audit_degradation(
                    finding, "degraded_neutral", neutral, interval, result
                )
                continue
            if (
                injector is not None
                and injector.partition_active
                and injector.manager_side(rater_mgr)
                != injector.manager_side(ratee_mgr)
            ):
                # Tier 4: provably unreachable until the partition heals —
                # defer the judgement instead of damping on local evidence.
                weights[finding.rater, finding.ratee] = 1.0
                assert metrics is not None
                metrics.record_partition_block()
                self._audit_degradation(finding, "skipped", 1.0, interval, result)
                continue
            if transport is None or transport.send("info_request").delivered:
                # Tier 1: primary route (with transport-level retries).
                self._managers[rater_mgr].record_message("info_request")
                self._managers[ratee_mgr].record_message("info_response")
                continue
            replica = self._successor_replica(ratee_mgr, rater_mgr)
            if (
                replica is not None
                and transport is not None
                and transport.send("info_request").delivered
            ):
                # Tier 2: the ratee-side manager's replica answered.
                self._managers[rater_mgr].record_message("info_request")
                self._managers[replica].record_message("info_response")
                continue
            # Tier 3: neutral damping.
            weights[finding.rater, finding.ratee] = neutral
            assert metrics is not None
            metrics.record_fallback()
            self._audit_degradation(
                finding, "degraded_neutral", neutral, interval, result
            )
        self._corrupt_byzantine_rows(weights, interval, serving)
        self._last_weights = weights.copy()
        return weights

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        with self._tracer.span("detector.analyze") as span:
            result = self._detector.analyze(
                interval, self._inner.reputations, self._rated_mask,
                self._flag_counts,
            )
            span.set("findings", result.n_adjusted)
        self._last_result = result
        self._account_rating_reports(interval, self._serving_managers())
        self._rated_mask |= interval.counts > 0
        np.fill_diagonal(self._rated_mask, False)
        for finding in result.findings:
            self._flag_counts[finding.rater, finding.ratee] += 1
        with self._tracer.span("manager.failover_weights"):
            weights = self._failover_weights(result, interval)
        self._publish_manager_metrics()
        adjusted = interval.scaled(weights)
        with self._tracer.span("reputation.inner_update", system=self._inner.name):
            return self._inner.update(adjusted)

    def _publish_manager_metrics(self) -> None:
        """Mirror cumulative manager/fault counters into the registry.

        Gauges, because the underlying counters (``messages_sent``, the
        shared :class:`~repro.faults.metrics.FaultMetrics`) are already
        cumulative over the run.
        """
        if self._obs is None:
            return
        registry = self._obs.metrics
        registry.gauge("manager.messages_total").set(self.total_messages)
        kinds: Counter = Counter()
        for manager in self._managers.values():
            kinds.update(manager.messages_sent)
        for kind, count in kinds.items():
            registry.gauge(f"manager.messages.{kind}").set(count)
        if self._injector is not None:
            faults = self._injector.metrics
            registry.gauge("manager.fallbacks").set(faults.fallbacks)
            registry.gauge("manager.reassignments").set(faults.reassignments)
            registry.gauge("manager.partition_blocks").set(faults.partition_blocks)
            registry.gauge("manager.byzantine_corruptions").set(
                faults.byzantine_corruptions
            )

    @property
    def reputations(self) -> np.ndarray:
        return self._inner.reputations

    def reset(self) -> None:
        self._inner.reset()
        self._detector.reset()
        self._rated_mask[:] = False
        self._flag_counts[:] = 0
        self._last_result = None
        self._last_weights = None
        for manager in self._managers.values():
            manager.messages_sent.clear()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Mutable system state for cycle-boundary checkpoints.

        Covers the inner reputation system, the detector's interval
        counter, the recidivism bookkeeping, the previous interval's
        applied weights, the per-manager message counters, and the Ωc/Ωs
        value caches (whose incremental updates are not bitwise equal to
        a fresh rebuild, so a bit-identical resume must carry them).
        """
        return {
            "inner": self._inner.state_dict(),
            "detector": self._detector.state_dict(),
            "rated_mask": self._rated_mask.copy(),
            "flag_counts": self._flag_counts.copy(),
            "last_weights": (
                None if self._last_weights is None else self._last_weights.copy()
            ),
            "messages": [
                [mid, dict(manager.messages_sent)]
                for mid, manager in sorted(self._managers.items())
            ],
            "closeness": self._closeness.state_dict(),
            "similarity": self._similarity.state_dict(),
        }

    def restore_state(self, state: dict) -> None:
        self._inner.restore_state(state["inner"])
        self._detector.restore_state(state["detector"])
        self._rated_mask = np.asarray(state["rated_mask"], dtype=bool).copy()
        self._flag_counts = np.asarray(state["flag_counts"], dtype=np.int64).copy()
        lw = state["last_weights"]
        self._last_weights = (
            None if lw is None else np.asarray(lw, dtype=np.float64).copy()
        )
        self._last_result = None
        for manager in self._managers.values():
            manager.messages_sent.clear()
        for mid, counts in state["messages"]:
            self._managers[int(mid)].messages_sent.update(counts)
        self._closeness.restore_state(state["closeness"])
        self._similarity.restore_state(state["similarity"])
