"""Distributed SocialTrust — the resource-manager protocol of Section 4.3.

In a large decentralised P2P network no single party holds all ratings and
social information.  The paper assigns each node a *resource manager* that
collects the ratings for the nodes it manages, tracks per-rater rating
frequencies, and — when a rater trips a frequency threshold — contacts the
rater's own manager for the social information (friend list, interest set)
needed to judge the pair and adjust the rating.

This module emulates that protocol faithfully at the information-flow
level:

* node → manager assignment is explicit and configurable;
* per interval, each ratee-side manager reports incoming ratings to the
  corresponding rater-side managers (one batched ``rating_report`` message
  per manager pair that actually exchanged ratings);
* each suspected pair whose rater and ratee live under *different*
  managers costs one ``info_request`` / ``info_response`` round trip;
* the numerical judgement each rater-side manager performs is exactly the
  centralised detector's — so :class:`DistributedSocialTrust` provably
  produces reputations identical to :class:`~repro.core.socialtrust.SocialTrust`
  while exposing the message-complexity of the distributed execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.closeness import ClosenessComputer
from repro.core.config import SocialTrustConfig
from repro.core.detector import CollusionDetector, DetectionResult
from repro.core.similarity import SimilarityComputer
from repro.faults.injector import FaultInjector
from repro.obs import NULL_TRACER, Observability
from repro.p2p.dht import ChordRing
from repro.reputation.base import IntervalRatings, ReputationSystem
from repro.social.graph import SocialView
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles

__all__ = ["ResourceManager", "DistributedSocialTrust"]


@dataclass
class ResourceManager:
    """One trustworthy manager node responsible for a subset of peers."""

    manager_id: int
    managed: frozenset[int]
    #: Messages sent by this manager, keyed by message kind.
    messages_sent: Counter = field(default_factory=Counter)

    def record_message(self, kind: str, count: int = 1) -> None:
        if count < 0:
            raise ValueError("message count must be non-negative")
        if count == 0:
            # Recording zero messages must not materialise a zero-count
            # Counter row — that would skew message-kind enumeration in
            # reports built from ``messages_sent`` keys.
            return
        self.messages_sent[kind] += count

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())


class DistributedSocialTrust(ReputationSystem):
    """SocialTrust executed across a set of resource managers.

    Parameters mirror :class:`~repro.core.socialtrust.SocialTrust`, plus
    ``n_managers`` (nodes are assigned round-robin) or an explicit
    ``assignment`` array mapping node id → manager id.
    """

    def __init__(
        self,
        inner: ReputationSystem,
        social_view: SocialView,
        interactions: InteractionLedger,
        profiles: InterestProfiles,
        config: SocialTrustConfig | None = None,
        *,
        n_managers: int = 4,
        assignment: Sequence[int] | None = None,
        ring: "ChordRing | None" = None,
        injector: "FaultInjector | None" = None,
        observability: Observability | None = None,
    ) -> None:
        super().__init__(inner.n_nodes)
        n = inner.n_nodes
        if assignment is not None:
            assign = np.asarray(assignment, dtype=np.int64)
            if assign.shape != (n,):
                raise ValueError(
                    f"assignment must have one entry per node ({n}), got "
                    f"shape {assign.shape}"
                )
            if assign.min() < 0:
                raise ValueError("manager ids must be non-negative")
        else:
            if n_managers < 1:
                raise ValueError(f"n_managers must be >= 1, got {n_managers}")
            assign = np.arange(n, dtype=np.int64) % n_managers
        self._assignment = assign
        assigned_ids = set(int(m) for m in assign)
        if ring is not None and not assigned_ids <= set(ring.managers):
            missing = sorted(assigned_ids - set(ring.managers))
            raise ValueError(f"assignment uses managers not on the ring: {missing}")
        self._ring = ring
        # Every ring participant gets a ResourceManager (possibly with no
        # managed nodes) so failover targets can be charged for messages.
        manager_ids = sorted(assigned_ids | set(ring.managers if ring else ()))
        self._managers = {
            m: ResourceManager(
                manager_id=m,
                managed=frozenset(int(x) for x in np.flatnonzero(assign == m)),
            )
            for m in manager_ids
        }
        self._injector = injector
        if injector is not None:
            if injector.n_nodes != n:
                raise ValueError(
                    f"fault injector covers {injector.n_nodes} nodes, "
                    f"system has {n}"
                )
            injector.register_managers(manager_ids)
            if self._ring is None:
                # Failover needs a ring to agree on crash successors.
                self._ring = ChordRing(manager_ids)
        self._inner = inner
        self._config = config or SocialTrustConfig()
        self._obs = observability
        self._tracer = (
            observability.tracer if observability is not None else NULL_TRACER
        )
        self._closeness = ClosenessComputer(social_view, interactions, self._config)
        self._similarity = SimilarityComputer(profiles, self._config)
        self._detector = CollusionDetector(
            self._closeness, self._similarity, self._config,
            observability=observability,
        )
        self._rated_mask = np.zeros((n, n), dtype=bool)
        self._flag_counts = np.zeros((n, n), dtype=np.int64)
        self._last_result: DetectionResult | None = None

    @property
    def name(self) -> str:
        return f"{self._inner.name}+SocialTrust(distributed)"

    @property
    def inner(self) -> ReputationSystem:
        return self._inner

    @property
    def managers(self) -> tuple[ResourceManager, ...]:
        return tuple(self._managers.values())

    @property
    def last_detection(self) -> DetectionResult | None:
        return self._last_result

    @property
    def closeness_computer(self) -> ClosenessComputer:
        return self._closeness

    @property
    def similarity_computer(self) -> SimilarityComputer:
        return self._similarity

    def manager_of(self, node: int) -> ResourceManager:
        return self._managers[int(self._assignment[node])]

    @property
    def ring(self) -> "ChordRing | None":
        return self._ring

    @property
    def injector(self) -> "FaultInjector | None":
        return self._injector

    def effective_manager_of(self, node: int) -> ResourceManager | None:
        """The manager currently serving ``node`` — its home manager, or
        the Chord-ring failover successor while the home manager is down;
        ``None`` only when every manager is down."""
        serving = self._serving_managers()
        mid = serving[int(self._assignment[node])]
        return self._managers[mid] if mid is not None else None

    @property
    def total_messages(self) -> int:
        return sum(m.total_messages for m in self._managers.values())

    def _serving_managers(self) -> dict[int, int | None]:
        """home manager id → id of the manager currently serving its nodes.

        Fault-free (no injector, or nothing down) this is the identity.
        A down manager's nodes are re-assigned to its first live ring
        successor — a deterministic, coordination-free rule every
        surviving manager can evaluate locally.  ``None`` marks a home
        whose entire ring is down.
        """
        if self._injector is None:
            return {mid: mid for mid in self._managers}
        down = self._injector.down_managers() & set(self._managers)
        if not down:
            return {mid: mid for mid in self._managers}
        ring = self._ring
        assert ring is not None  # always built when an injector is attached
        serving: dict[int, int | None] = {}
        for mid in self._managers:
            if mid not in down:
                serving[mid] = mid
                continue
            successor: int | None = mid
            for _ in range(len(self._managers)):
                successor = ring.successor_of(successor)
                if successor not in down:
                    break
            else:
                successor = None
            serving[mid] = successor
        return serving

    def _account_rating_reports(
        self, interval: IntervalRatings, serving: dict[int, int | None]
    ) -> None:
        """Charge the interval's batched rating reports to their senders.

        The ratee's manager batches "your node n_i rated n_j k times
        (value v)" notices to each distinct rater-side manager.  Reports
        ride the lossy transport when a fault injector is attached; a lost
        report is retried with backoff and — failing that — re-batched
        into the next interval's report, so loss costs retries and
        latency, never rating information (the emulation keeps the
        information flow eventually consistent).
        """
        rater_idx, ratee_idx = np.nonzero(interval.counts)
        if not rater_idx.size:
            return
        assign = self._assignment
        transport = self._injector.transport if self._injector is not None else None
        pair_managers = set(
            zip(assign[ratee_idx].tolist(), assign[rater_idx].tolist())
        )
        for ratee_home, rater_home in pair_managers:
            sender = serving[ratee_home]
            receiver = serving[rater_home]
            if sender is None or receiver is None or sender == receiver:
                continue
            self._managers[sender].record_message("rating_report")
            if transport is not None:
                transport.send("rating_report")

    def _failover_weights(self, result: DetectionResult) -> np.ndarray:
        """Compose the damping weights the managers actually apply.

        Fault-free this reproduces the centralised weight matrix exactly:
        each rater-side manager applies the detector's adjustment to its
        own nodes' outgoing ratings, and the row slices compose the full
        matrix.  Under faults:

        * a down manager's rows are applied by its ring successor (same
          numbers — the judgement is deterministic given the social
          information), counted as reassignments;
        * a suspected cross-manager pair needs an ``info_request`` /
          ``info_response`` round trip for the ratee-side social
          information; when the round trip fails after capped-backoff
          retries (or no live manager holds the information), the pair
          falls back to the conservative ``neutral_damping`` weight —
          the rating is neither trusted at full weight nor erased on
          unverified suspicion;
        * with *every* manager down, nobody can fetch social information,
          so every suspected pair gets the neutral fallback and all other
          ratings pass through unadjusted.
        """
        serving = self._serving_managers()
        weights = np.ones_like(result.weights)
        injector = self._injector
        metrics = injector.metrics if injector is not None else None
        neutral = self._config.neutral_damping
        all_down = all(mid is None for mid in serving.values())
        if all_down:
            for finding in result.findings:
                weights[finding.rater, finding.ratee] = neutral
                assert metrics is not None
                metrics.record_fallback()
            return weights
        for home, manager in self._managers.items():
            if not manager.managed:
                continue
            rows = sorted(manager.managed)
            weights[rows, :] = result.weights[rows, :]
            if serving[home] != home and metrics is not None:
                metrics.record_reassignment(len(rows))
        transport = injector.transport if injector is not None else None
        for finding in result.findings:
            rater_mgr = serving[int(self._assignment[finding.rater])]
            ratee_mgr = serving[int(self._assignment[finding.ratee])]
            if rater_mgr == ratee_mgr and rater_mgr is not None:
                continue  # social information is local to the manager
            if rater_mgr is None or ratee_mgr is None:
                weights[finding.rater, finding.ratee] = neutral
                assert metrics is not None
                metrics.record_fallback()
                continue
            if transport is not None and not transport.send("info_request").delivered:
                weights[finding.rater, finding.ratee] = neutral
                assert metrics is not None
                metrics.record_fallback()
                continue
            self._managers[rater_mgr].record_message("info_request")
            self._managers[ratee_mgr].record_message("info_response")
        return weights

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        with self._tracer.span("detector.analyze") as span:
            result = self._detector.analyze(
                interval, self._inner.reputations, self._rated_mask,
                self._flag_counts,
            )
            span.set("findings", result.n_adjusted)
        self._last_result = result
        self._account_rating_reports(interval, self._serving_managers())
        self._rated_mask |= interval.counts > 0
        np.fill_diagonal(self._rated_mask, False)
        for finding in result.findings:
            self._flag_counts[finding.rater, finding.ratee] += 1
        with self._tracer.span("manager.failover_weights"):
            weights = self._failover_weights(result)
        self._publish_manager_metrics()
        adjusted = interval.scaled(weights)
        with self._tracer.span("reputation.inner_update", system=self._inner.name):
            return self._inner.update(adjusted)

    def _publish_manager_metrics(self) -> None:
        """Mirror cumulative manager/fault counters into the registry.

        Gauges, because the underlying counters (``messages_sent``, the
        shared :class:`~repro.faults.metrics.FaultMetrics`) are already
        cumulative over the run.
        """
        if self._obs is None:
            return
        registry = self._obs.metrics
        registry.gauge("manager.messages_total").set(self.total_messages)
        kinds: Counter = Counter()
        for manager in self._managers.values():
            kinds.update(manager.messages_sent)
        for kind, count in kinds.items():
            registry.gauge(f"manager.messages.{kind}").set(count)
        if self._injector is not None:
            faults = self._injector.metrics
            registry.gauge("manager.fallbacks").set(faults.fallbacks)
            registry.gauge("manager.reassignments").set(faults.reassignments)

    @property
    def reputations(self) -> np.ndarray:
        return self._inner.reputations

    def reset(self) -> None:
        self._inner.reset()
        self._detector.reset()
        self._rated_mask[:] = False
        self._flag_counts[:] = 0
        self._last_result = None
        for manager in self._managers.values():
            manager.messages_sent.clear()
