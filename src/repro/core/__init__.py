"""SocialTrust — the paper's primary contribution.

SocialTrust layers over any :class:`~repro.reputation.base.ReputationSystem`
and damps the ratings of *suspected colluders* before the base system sees
them.  Suspicion is triggered by the rating-frequency / reputation /
social-coefficient patterns B1-B4 the paper mines from the Overstock trace,
and the damping weight is the Gaussian reputation filter of Eqs. (6), (8)
and (9), evaluated on:

* **social closeness** ``Ωc`` (:mod:`repro.core.closeness` — Eqs. (2)-(4)
  plain, Eq. (10) hardened), and
* **interest similarity** ``Ωs`` (:mod:`repro.core.similarity` — Eq. (7)
  plain, Eq. (11) hardened).

:class:`~repro.core.socialtrust.SocialTrust` is the centralised execution
path; :mod:`repro.core.manager` implements the distributed resource-manager
protocol of Section 4.3 and is verified to produce identical adjustments.
"""

from repro.core.closeness import ClosenessComputer
from repro.core.config import CoefficientBackend, GaussianCenter, SocialTrustConfig
from repro.core.detector import (
    CollusionDetector,
    Finding,
    SparseDetectionResult,
    SuspicionReason,
)
from repro.core.gaussian import RaterBand, combined_weight, gaussian_weight
from repro.core.manager import DistributedSocialTrust, ResourceManager
from repro.core.similarity import SimilarityComputer, overlap_similarity
from repro.core.socialtrust import SocialTrust
from repro.core.sparse import SparseClosenessComputer, SparseSimilarityComputer

__all__ = [
    "ClosenessComputer",
    "CoefficientBackend",
    "GaussianCenter",
    "SocialTrustConfig",
    "CollusionDetector",
    "Finding",
    "SparseDetectionResult",
    "SuspicionReason",
    "RaterBand",
    "combined_weight",
    "gaussian_weight",
    "DistributedSocialTrust",
    "ResourceManager",
    "SimilarityComputer",
    "SparseClosenessComputer",
    "SparseSimilarityComputer",
    "overlap_similarity",
    "SocialTrust",
]
