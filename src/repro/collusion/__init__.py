"""Collusion attack models.

Implements the three collusion structures the paper evaluates
(Section 5.1's collusion model) plus the two hardening attacks:

* :class:`~repro.collusion.models.PairwiseCollusion` (PCM) — colluder
  pairs mutually exchange high-frequency positive ratings;
* :class:`~repro.collusion.models.MultiNodeCollusion` (MCM) — boosting
  nodes one-directionally pump a small set of boosted nodes;
* :class:`~repro.collusion.models.MutualMultiNodeCollusion` (MMM) — MCM
  plus back-ratings from boosted to boosting nodes;
* :mod:`repro.collusion.compromise` — compromised pre-trusted peers join
  the collusion;
* :mod:`repro.collusion.falsify` — colluders falsify their static social
  information (relationship lists, declared interest profiles).
"""

from repro.collusion.compromise import CompromisedPretrustedCollusion
from repro.collusion.falsify import (
    falsify_identical_interests,
    falsify_single_relationship,
)
from repro.collusion.models import (
    BadmouthingCollusion,
    CollusionSchedule,
    CompositeCollusion,
    MultiNodeCollusion,
    MutualMultiNodeCollusion,
    NoCollusion,
    PairwiseCollusion,
    RatingBurst,
)

__all__ = [
    "BadmouthingCollusion",
    "CollusionSchedule",
    "CompositeCollusion",
    "CompromisedPretrustedCollusion",
    "MultiNodeCollusion",
    "MutualMultiNodeCollusion",
    "NoCollusion",
    "PairwiseCollusion",
    "RatingBurst",
    "falsify_identical_interests",
    "falsify_single_relationship",
]
