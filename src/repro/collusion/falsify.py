"""Falsified static social information (Sections 4.4 and 5.8).

Colluders counterattack SocialTrust by manipulating what they *declare*:

* :func:`falsify_single_relationship` — each colluding pair trims its
  relationship list down to a single plain friendship, aiming for a
  moderate closeness value;
* :func:`falsify_identical_interests` — each colluding group declares an
  identical interest set (size drawn from [1, 10] in the paper's
  experiment), aiming for a plausible similarity value.

Neither touches *behavioural* signals (interaction frequencies, genuine
request streams), which is exactly why the hardened Eqs. (10)/(11) keep
working in Fig. 16-18.
"""

from __future__ import annotations

from typing import Sequence

from repro.social.graph import AssignedSocialNetwork, Relationship
from repro.social.interests import InterestProfiles
from repro.utils.rng import RngStream

__all__ = ["falsify_single_relationship", "falsify_identical_interests"]


def falsify_single_relationship(
    network: AssignedSocialNetwork,
    colluder_pairs: Sequence[tuple[int, int]],
    *,
    weight: float = 1.0,
) -> None:
    """Reduce each adjacent colluding pair to one declared relationship."""
    for i, j in colluder_pairs:
        if network.distance(i, j) != 1:
            raise ValueError(
                f"colluding pair ({i}, {j}) is not adjacent; falsification "
                "targets declared relationships of adjacent pairs"
            )
        network.set_relationships(i, j, [Relationship(weight=weight)])


def falsify_identical_interests(
    profiles: InterestProfiles,
    colluder_groups: Sequence[Sequence[int]],
    rng: RngStream,
    *,
    set_size_range: tuple[int, int] = (1, 10),
) -> None:
    """Give every colluder in each group the same declared interest set.

    The shared set's size is drawn uniformly from ``set_size_range`` per
    group ("the number of identical interests is randomly chosen from
    [1-10]"), its members uniformly from the interest universe.
    """
    lo, hi = set_size_range
    if not 1 <= lo <= hi <= profiles.n_interests:
        raise ValueError(
            f"set_size_range {set_size_range} incompatible with "
            f"{profiles.n_interests} interest categories"
        )
    for group in colluder_groups:
        members = [int(x) for x in group]
        if len(members) < 2:
            raise ValueError("each colluding group needs at least two members")
        size = int(rng.integers(lo, hi + 1))
        shared = rng.choice(profiles.n_interests, size=size, replace=False)
        shared_set = frozenset(int(v) for v in shared)
        for node in members:
            profiles.set_declared(node, shared_set)
