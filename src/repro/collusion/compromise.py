"""Compromised pre-trusted peers joining a collusion (Sections 5.4, 5.7).

The paper's scenario: 7 of the 9 pre-trusted nodes are compromised; each
"randomly select[s] a colluder with which to collude" and the pair
exchanges high-frequency mutual positive ratings at social distance 1.
The distance pinning itself is a property of the social network and is
applied by the experiment setup
(:func:`repro.experiments.setup.build_world`); this schedule contributes
the rating bursts.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.collusion.models import CollusionSchedule, RatingBurst
from repro.utils.rng import RngStream

__all__ = ["CompromisedPretrustedCollusion"]


class CompromisedPretrustedCollusion(CollusionSchedule):
    """Mutual rating bursts between compromised pre-trusted nodes and colluders."""

    def __init__(
        self,
        compromised_pretrusted: Sequence[int],
        colluder_ids: Sequence[int],
        interests: Sequence[frozenset[int]],
        rng: RngStream,
        *,
        ratings_per_cycle: int = 20,
    ) -> None:
        compromised = [int(p) for p in compromised_pretrusted]
        colluders = [int(c) for c in colluder_ids]
        if not compromised:
            raise ValueError("need at least one compromised pre-trusted node")
        if not colluders:
            raise ValueError("need at least one colluder to conspire with")
        if set(compromised) & set(colluders):
            raise ValueError(
                "compromised pre-trusted ids must be disjoint from colluder ids"
            )
        if ratings_per_cycle < 1:
            raise ValueError("ratings_per_cycle must be >= 1")
        self._interests = list(interests)
        self._count = int(ratings_per_cycle)
        self._partners: list[tuple[int, int]] = [
            (p, int(rng.choice(colluders))) for p in compromised
        ]

    @property
    def partners(self) -> tuple[tuple[int, int], ...]:
        """(compromised pre-trusted, conspiring colluder) pairs."""
        return tuple(self._partners)

    @property
    def colluders(self) -> tuple[int, ...]:
        out: list[int] = []
        seen: set[int] = set()
        for p, c in self._partners:
            for node in (p, c):
                if node not in seen:
                    seen.add(node)
                    out.append(node)
        return tuple(out)

    def bursts(self, rng: RngStream) -> Iterator[RatingBurst]:
        for pretrusted, colluder in self._partners:
            for rater, ratee in ((pretrusted, colluder), (colluder, pretrusted)):
                yield RatingBurst(
                    rater=rater,
                    ratee=ratee,
                    value=1.0,
                    count=self._count,
                    interest=self._pick_interest(self._interests, ratee, rng),
                )
