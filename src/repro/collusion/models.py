"""The paper's three collusion structures: PCM, MCM and MMM.

A collusion model is a *schedule*: once per query cycle the simulator asks
it for the :class:`RatingBurst`\\ s the colluders inject — batches of
identical positive (or negative) ratings from one colluder to another, each
tagged with an interest drawn from the ratee's declared interests ("a
boosting node rates a boosted node ... on an interest randomly selected
from the interests of the boosted node").

Bursts count toward the rater's *interaction frequency* (the paper equates
interaction frequency with rating frequency) but **not** toward its
behavioural interest-request weights: a collusion rating is not a genuine
resource transfer, so the system never observes a real request behind it.
This asymmetry is what lets the hardened interest similarity (Eq. (11))
expose profile falsification in Section 5.8.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.utils.rng import RngStream

__all__ = [
    "RatingBurst",
    "CollusionSchedule",
    "NoCollusion",
    "PairwiseCollusion",
    "MultiNodeCollusion",
    "MutualMultiNodeCollusion",
    "CompositeCollusion",
]


@dataclass(frozen=True)
class RatingBurst:
    """A batch of ``count`` identical ratings injected in one query cycle."""

    rater: int
    ratee: int
    value: float
    count: int
    interest: int | None = None

    def __post_init__(self) -> None:
        if self.rater == self.ratee:
            raise ValueError("colluders cannot rate themselves")
        if self.count < 1:
            raise ValueError(f"burst count must be >= 1, got {self.count}")


class CollusionSchedule(abc.ABC):
    """Produces the colluders' rating bursts, one call per query cycle."""

    @property
    @abc.abstractmethod
    def colluders(self) -> tuple[int, ...]:
        """All node ids participating in the collusion."""

    @abc.abstractmethod
    def bursts(self, rng: RngStream) -> Iterator[RatingBurst]:
        """Rating bursts for one query cycle."""

    @staticmethod
    def _pick_interest(
        interests: Sequence[frozenset[int]], ratee: int, rng: RngStream
    ) -> int | None:
        pool = sorted(interests[ratee]) if ratee < len(interests) else []
        if not pool:
            return None
        return int(rng.choice(pool))


class NoCollusion(CollusionSchedule):
    """The colluder-free baseline (Fig. 7): malicious peers act alone."""

    @property
    def colluders(self) -> tuple[int, ...]:
        return ()

    def bursts(self, rng: RngStream) -> Iterator[RatingBurst]:
        return iter(())


class PairwiseCollusion(CollusionSchedule):
    """PCM: consecutive colluder pairs mutually rate each other.

    Colluders are paired in order; each partner rates the other
    ``ratings_per_cycle`` times (+1) per query cycle.  An odd trailing
    colluder pairs with the first one.
    """

    def __init__(
        self,
        colluder_ids: Sequence[int],
        interests: Sequence[frozenset[int]],
        *,
        ratings_per_cycle: int = 20,
        rating_value: float = 1.0,
    ) -> None:
        ids = [int(c) for c in colluder_ids]
        if len(ids) < 2:
            raise ValueError("pairwise collusion needs at least two colluders")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate colluder ids")
        if ratings_per_cycle < 1:
            raise ValueError("ratings_per_cycle must be >= 1")
        self._ids = tuple(ids)
        self._interests = list(interests)
        self._count = int(ratings_per_cycle)
        self._value = float(rating_value)
        self._pairs: list[tuple[int, int]] = []
        for k in range(0, len(ids) - 1, 2):
            self._pairs.append((ids[k], ids[k + 1]))
        if len(ids) % 2 == 1:
            self._pairs.append((ids[-1], ids[0]))

    @property
    def colluders(self) -> tuple[int, ...]:
        return self._ids

    @property
    def pairs(self) -> tuple[tuple[int, int], ...]:
        return tuple(self._pairs)

    def bursts(self, rng: RngStream) -> Iterator[RatingBurst]:
        for a, b in self._pairs:
            for rater, ratee in ((a, b), (b, a)):
                yield RatingBurst(
                    rater=rater,
                    ratee=ratee,
                    value=self._value,
                    count=self._count,
                    interest=self._pick_interest(self._interests, ratee, rng),
                )


class MultiNodeCollusion(CollusionSchedule):
    """MCM: boosting nodes pump a few boosted nodes, one-directionally.

    ``n_boosted`` colluders are designated boosted; every other colluder
    picks one boosted target at construction time and rates it a number of
    times drawn from ``ratings_range`` each query cycle.  Boosted nodes do
    not rate back.
    """

    def __init__(
        self,
        colluder_ids: Sequence[int],
        interests: Sequence[frozenset[int]],
        rng: RngStream,
        *,
        n_boosted: int = 7,
        ratings_range: tuple[int, int] = (3, 7),
        rating_value: float = 1.0,
    ) -> None:
        ids = [int(c) for c in colluder_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate colluder ids")
        if not 1 <= n_boosted < len(ids):
            raise ValueError(
                f"n_boosted must be in [1, {len(ids) - 1}], got {n_boosted}"
            )
        lo, hi = ratings_range
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid ratings_range {ratings_range}")
        self._ids = tuple(ids)
        self._interests = list(interests)
        self._range = (int(lo), int(hi))
        self._value = float(rating_value)
        boosted = rng.choice(len(ids), size=n_boosted, replace=False)
        self._boosted = tuple(sorted(ids[int(k)] for k in boosted))
        boosted_set = set(self._boosted)
        self._boosting = tuple(i for i in ids if i not in boosted_set)
        self._target = {
            b: int(rng.choice(self._boosted)) for b in self._boosting
        }

    @property
    def colluders(self) -> tuple[int, ...]:
        return self._ids

    @property
    def boosted(self) -> tuple[int, ...]:
        return self._boosted

    @property
    def boosting(self) -> tuple[int, ...]:
        return self._boosting

    def target_of(self, boosting_node: int) -> int:
        return self._target[boosting_node]

    def bursts(self, rng: RngStream) -> Iterator[RatingBurst]:
        lo, hi = self._range
        for rater in self._boosting:
            ratee = self._target[rater]
            yield RatingBurst(
                rater=rater,
                ratee=ratee,
                value=self._value,
                count=int(rng.integers(lo, hi + 1)),
                interest=self._pick_interest(self._interests, ratee, rng),
            )


class MutualMultiNodeCollusion(MultiNodeCollusion):
    """MMM: MCM plus back-ratings from boosted to boosting nodes.

    "Each boosting node rates randomly chosen boosted nodes 20 times and
    the boosted node rates its boosting nodes 5 times" — forward bursts use
    a fixed ``forward_ratings`` count and each boosted node returns
    ``back_ratings`` ratings to each of its boosters per query cycle.
    """

    def __init__(
        self,
        colluder_ids: Sequence[int],
        interests: Sequence[frozenset[int]],
        rng: RngStream,
        *,
        n_boosted: int = 7,
        forward_ratings: int = 20,
        back_ratings: int = 5,
        rating_value: float = 1.0,
    ) -> None:
        super().__init__(
            colluder_ids,
            interests,
            rng,
            n_boosted=n_boosted,
            ratings_range=(forward_ratings, forward_ratings),
            rating_value=rating_value,
        )
        if back_ratings < 1:
            raise ValueError(f"back_ratings must be >= 1, got {back_ratings}")
        self._back = int(back_ratings)
        self._boosters_of: dict[int, list[int]] = {b: [] for b in self.boosted}
        for booster in self.boosting:
            self._boosters_of[self.target_of(booster)].append(booster)

    def bursts(self, rng: RngStream) -> Iterator[RatingBurst]:
        yield from super().bursts(rng)
        for boosted, boosters in self._boosters_of.items():
            for booster in boosters:
                yield RatingBurst(
                    rater=boosted,
                    ratee=booster,
                    value=1.0,
                    count=self._back,
                    interest=self._pick_interest(self._interests, booster, rng),
                )


class BadmouthingCollusion(CollusionSchedule):
    """Negative-rating collusion: colluders suppress competitors (B4).

    The paper evaluates positive-rating collusion and notes "similar
    results can be obtained for the collusion of negative ratings"; this
    schedule makes that concrete.  Each colluder floods a set of victim
    peers with negative ratings every query cycle, attempting to push
    reputable competitors below the selection threshold.  The interest tag
    comes from the *victim's* catalogue — a competitor attack targets the
    categories both sides sell in.
    """

    def __init__(
        self,
        colluder_ids: Sequence[int],
        victim_ids: Sequence[int],
        interests: Sequence[frozenset[int]],
        *,
        ratings_per_cycle: int = 20,
        paired: bool = False,
    ) -> None:
        colluders = [int(c) for c in colluder_ids]
        victims = [int(v) for v in victim_ids]
        if not colluders:
            raise ValueError("need at least one badmouthing colluder")
        if not victims:
            raise ValueError("need at least one victim")
        if set(colluders) & set(victims):
            raise ValueError("colluders cannot badmouth themselves")
        if ratings_per_cycle < 1:
            raise ValueError("ratings_per_cycle must be >= 1")
        self._colluders = tuple(colluders)
        self._victims = tuple(victims)
        self._interests = list(interests)
        self._count = int(ratings_per_cycle)
        #: paired=True is the classic competitor attack: colluder ``k``
        #: always targets ``victims[k % len(victims)]`` (its market rival);
        #: paired=False sprays a random victim each cycle.
        self._paired = bool(paired)

    @property
    def colluders(self) -> tuple[int, ...]:
        return self._colluders

    @property
    def victims(self) -> tuple[int, ...]:
        return self._victims

    def target_of(self, colluder: int) -> int | None:
        """The fixed victim of ``colluder`` in paired mode (None otherwise)."""
        if not self._paired:
            return None
        k = self._colluders.index(colluder)
        return self._victims[k % len(self._victims)]

    def bursts(self, rng: RngStream) -> Iterator[RatingBurst]:
        for k, rater in enumerate(self._colluders):
            if self._paired:
                ratee = self._victims[k % len(self._victims)]
            else:
                ratee = int(rng.choice(self._victims))
            yield RatingBurst(
                rater=rater,
                ratee=ratee,
                value=-1.0,
                count=self._count,
                interest=self._pick_interest(self._interests, ratee, rng),
            )


class CompositeCollusion(CollusionSchedule):
    """Union of several schedules (e.g. MCM plus compromised pre-trusted)."""

    def __init__(self, schedules: Sequence[CollusionSchedule]) -> None:
        if not schedules:
            raise ValueError("composite needs at least one schedule")
        self._schedules = tuple(schedules)

    @property
    def colluders(self) -> tuple[int, ...]:
        out: list[int] = []
        seen: set[int] = set()
        for schedule in self._schedules:
            for c in schedule.colluders:
                if c not in seen:
                    seen.add(c)
                    out.append(c)
        return tuple(out)

    def bursts(self, rng: RngStream) -> Iterator[RatingBurst]:
        for schedule in self._schedules:
            yield from schedule.bursts(rng)
