"""SocialTrust: social networks against collusion in P2P reputation systems.

A complete reproduction of Li, Shen & Sapra, "Leveraging Social Networks to
Combat Collusion in Reputation Systems for Peer-to-Peer Networks"
(IPPS 2011 / IEEE TC 2012), including every substrate the paper's
evaluation needs: the P2P simulator, EigenTrust/eBay (plus PowerTrust,
GossipTrust and a TrustGuard-like baseline), the PCM/MCM/MMM collusion
models, and a calibrated synthetic Overstock marketplace.

Start at :mod:`repro.api` for the one-call facade
(:func:`~repro.api.build_scenario` / :func:`~repro.api.run_scenario`, the
typed :class:`~repro.api.ScenarioSpec`), :mod:`repro.core` for the
SocialTrust mechanism itself, :mod:`repro.serve` for the streaming
reputation service and its typed events, :mod:`repro.experiments` for the
table/figure reproductions, and the repository README for a guided tour.
"""

from repro.api import (
    API_VERSION,
    ChurnEvent,
    InteractionEvent,
    QueryRequest,
    QueryResult,
    RatingEvent,
    Scenario,
    ScenarioResult,
    ScenarioSpec,
    WatermarkEvent,
    build_scenario,
    list_experiments,
    run_experiment,
    run_scenario,
)
from repro.obs import Observability

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "API_VERSION",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "Observability",
    "ReputationService",
    "RatingEvent",
    "InteractionEvent",
    "ChurnEvent",
    "WatermarkEvent",
    "QueryRequest",
    "QueryResult",
    "build_scenario",
    "run_scenario",
    "list_experiments",
    "run_experiment",
]


def __getattr__(name: str):
    # Lazy for the same reason as repro.api: the service sits above the
    # facade, so importing it eagerly here would cycle through a
    # partially initialised repro.serve.
    if name == "ReputationService":
        from repro.serve.service import ReputationService

        return ReputationService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
