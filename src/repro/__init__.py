"""SocialTrust: social networks against collusion in P2P reputation systems.

A complete reproduction of Li, Shen & Sapra, "Leveraging Social Networks to
Combat Collusion in Reputation Systems for Peer-to-Peer Networks"
(IPPS 2011 / IEEE TC 2012), including every substrate the paper's
evaluation needs: the P2P simulator, EigenTrust/eBay (plus PowerTrust,
GossipTrust and a TrustGuard-like baseline), the PCM/MCM/MMM collusion
models, and a calibrated synthetic Overstock marketplace.

Start at :mod:`repro.api` for the one-call facade
(:func:`~repro.api.build_scenario` / :func:`~repro.api.run_scenario`),
:mod:`repro.core` for the SocialTrust mechanism itself,
:mod:`repro.experiments` for the table/figure reproductions, and the
repository README for a guided tour.
"""

from repro.api import (
    Scenario,
    ScenarioResult,
    build_scenario,
    list_experiments,
    run_experiment,
    run_scenario,
)
from repro.obs import Observability

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Scenario",
    "ScenarioResult",
    "Observability",
    "build_scenario",
    "run_scenario",
    "list_experiments",
    "run_experiment",
]
