"""GossipTrust-style aggregation (Zhou & Hwang, TKDE 2007) — simplified.

The related work's fully decentralised alternative to DHT collection:
"GossipTrust enables peers to share weighted local trust scores with
randomly selected neighbors until reaching global consensus on peer
reputations."  This implementation runs push-sum gossip over the local
trust matrix:

* every peer holds a (value, weight) pair per subject peer, seeded from
  its own local trust row;
* each gossip round, every peer splits its pairs in half and pushes one
  half to a uniformly random peer;
* the value/weight ratio at every peer converges to the global average of
  the local trust columns — the same aggregate a centralised pass would
  compute — with per-round communication instead of a coordinator.

The class exposes both the converged reputations (the
:class:`~repro.reputation.base.ReputationSystem` interface) and gossip
diagnostics: rounds used and the residual disagreement between peers,
which is what the decentralisation actually costs.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import IntervalRatings, ReputationSystem
from repro.utils.rng import RngStream, spawn_rng

__all__ = ["GossipTrust"]


class GossipTrust(ReputationSystem):
    """Push-sum gossip aggregation of local trust.

    Parameters
    ----------
    n_nodes:
        Network size.
    rounds:
        Gossip rounds per reputation update.  Push-sum halves the
        disagreement roughly geometrically, so a few dozen rounds reach
        consensus at paper scale.
    convergence_tolerance:
        Stop early once the maximum relative disagreement between peers'
        estimates falls below this.
    seed:
        Seed for the gossip partner selection (kept internal so the
        simulation's main stream is not perturbed).
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        rounds: int = 50,
        convergence_tolerance: float = 1e-6,
        seed: int = 0,
    ) -> None:
        super().__init__(n_nodes)
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if convergence_tolerance <= 0:
            raise ValueError("convergence_tolerance must be positive")
        self._rounds = int(rounds)
        self._tol = float(convergence_tolerance)
        self._rng: RngStream = spawn_rng(seed, 0x60551)
        self._local = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        self._reputations = np.zeros(n_nodes, dtype=np.float64)
        self._last_rounds = 0
        self._last_disagreement = 0.0

    @property
    def name(self) -> str:
        return "GossipTrust"

    @property
    def last_rounds(self) -> int:
        """Gossip rounds used by the most recent update."""
        return self._last_rounds

    @property
    def last_disagreement(self) -> float:
        """Residual max disagreement between peers after the last update."""
        return self._last_disagreement

    def _gossip_average(self, columns: np.ndarray) -> np.ndarray:
        """Push-sum average of each column of ``columns`` across peers.

        ``values[p, j]`` is peer ``p``'s running sum for subject ``j``;
        ``weights[p]`` its push-sum weight.  Returns the converged
        per-subject averages.
        """
        n = self._n
        values = columns.copy()
        weights = np.ones(n, dtype=np.float64)
        estimates = values / weights[:, None]
        self._last_rounds = self._rounds
        for round_index in range(1, self._rounds + 1):
            targets = self._rng.integers(0, n, size=n)
            half_values = values * 0.5
            half_weights = weights * 0.5
            values = half_values.copy()
            weights = half_weights.copy()
            np.add.at(values, targets, half_values)
            np.add.at(weights, targets, half_weights)
            estimates = values / weights[:, None]
            spread = estimates.max(axis=0) - estimates.min(axis=0)
            scale = np.abs(estimates).max()
            if scale == 0.0 or spread.max() <= self._tol * scale:
                self._last_rounds = round_index
                break
        self._last_disagreement = float(
            (estimates.max(axis=0) - estimates.min(axis=0)).max()
        )
        return estimates.mean(axis=0)

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        self._local += interval.value_sum
        # Row-normalise the clipped local trust (as EigenTrust's C), then
        # gossip-average the columns: the result is each peer's aggregate
        # trustworthiness in the eyes of the network.
        clipped = np.clip(self._local, 0.0, None)
        np.fill_diagonal(clipped, 0.0)
        row_sums = clipped.sum(axis=1, keepdims=True)
        c = np.divide(
            clipped, row_sums, out=np.zeros_like(clipped), where=row_sums > 0
        )
        self._reputations = np.clip(self._gossip_average(c), 0.0, None)
        return self.reputations

    @property
    def reputations(self) -> np.ndarray:
        total = self._reputations.sum()
        if total <= 0:
            return np.zeros(self._n)
        return self._reputations / total

    def reset(self) -> None:
        self._local[:] = 0.0
        self._reputations[:] = 0.0
        self._last_rounds = 0
        self._last_disagreement = 0.0

    def state_dict(self) -> dict:
        """Includes the internal gossip-pairing RNG stream — it advances
        every update, so a bit-identical resume must restore it."""
        return {
            "local": self._local.copy(),
            "reputations": self._reputations.copy(),
            "last_rounds": self._last_rounds,
            "last_disagreement": self._last_disagreement,
            "rng": self._rng.bit_generator.state,
        }

    def restore_state(self, state: dict) -> None:
        self._local = np.asarray(state["local"], dtype=np.float64).copy()
        self._reputations = np.asarray(
            state["reputations"], dtype=np.float64
        ).copy()
        self._last_rounds = int(state["last_rounds"])
        self._last_disagreement = float(state["last_disagreement"])
        self._rng.bit_generator.state = state["rng"]
