"""Reputation-system substrate.

Implements the two base reputation systems the paper evaluates —
:class:`~repro.reputation.eigentrust.EigenTrust` (power-iteration global
trust with pre-trusted peers) and :class:`~repro.reputation.ebay.EBayModel`
(weekly-bucketed rating accumulator) — behind a single
:class:`~repro.reputation.base.ReputationSystem` interface that SocialTrust
wraps.

Ratings flow through a per-interval :class:`~repro.reputation.ledger.RatingLedger`
(dense NumPy accumulators) so that both the reputation update and the
SocialTrust adjustment are vectorised matrix operations.
"""

from repro.reputation.base import IntervalRatings, Rating, ReputationSystem
from repro.reputation.ebay import EBayModel
from repro.reputation.gossip import GossipTrust
from repro.reputation.eigentrust import EigenTrust
from repro.reputation.ledger import RatingLedger
from repro.reputation.powertrust import PowerTrust
from repro.reputation.trustguard import SimilarityWeightedModel

__all__ = [
    "IntervalRatings",
    "Rating",
    "ReputationSystem",
    "EBayModel",
    "EigenTrust",
    "GossipTrust",
    "PowerTrust",
    "SimilarityWeightedModel",
    "RatingLedger",
]
