"""eBay-style reputation model, as simulated by the paper.

The paper maps one simulation cycle to one eBay "week" and applies two
defining simplifications of the feedback system:

* **One counted rating per rater per interval.**  No matter how many times
  ``i`` rates ``j`` inside an interval, the interval contributes a single
  counted rating whose sign reflects whether the interval's ratings were
  net-positive or net-negative ("eBay only counts all the ratings as one
  rating").
* **Accumulated score, scaled post hoc.**  A node's reputation is its
  running sum of counted ratings, scaled to [0, 1] by ``R_i / sum_k R_k``
  at observation time.

Implementation note: the counted rating is the interval's *mean* rating
value clamped to [-1, 1] rather than its bare sign.  For the unadjusted
±1 rating streams of the paper's experiments the two are identical (a
net-positive pile of +1s has mean +1), but the mean lets SocialTrust's
Gaussian damping carry through: a rating stream scaled toward zero
contributes a counted rating near zero instead of snapping back to ±1.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import IntervalRatings, ReputationSystem

__all__ = ["EBayModel"]


class EBayModel(ReputationSystem):
    """Weekly-bucketed accumulator reputation system.

    Parameters
    ----------
    n_nodes:
        Network size.
    cycle_aggregation:
        How one interval's counted ratings roll into a node's score.

        ``"per_rater_sum"`` (default) — the node's score grows by the sum
        of its per-rater counted ratings, i.e. distinct raters each
        contribute ±1 per week (eBay's classic feedback-score reading).

        ``"node_sign"`` — the node's score grows by the *sign* of that sum:
        ±1 per week total, matching the paper's statement that "a node's
        reputation increase is only determined by whether the node offers
        more authentic files than inauthentic files in each simulation
        cycle".
    memory_decay:
        Fading-memory factor applied to the accumulated score before each
        week is added; 1.0 (default) is eBay's lifetime feedback score.
    """

    _AGGREGATIONS = ("per_rater_sum", "node_sign")

    def __init__(
        self,
        n_nodes: int,
        *,
        cycle_aggregation: str = "per_rater_sum",
        memory_decay: float = 1.0,
    ) -> None:
        super().__init__(n_nodes)
        if cycle_aggregation not in self._AGGREGATIONS:
            raise ValueError(
                f"cycle_aggregation must be one of {self._AGGREGATIONS}, "
                f"got {cycle_aggregation!r}"
            )
        if not 0.0 < memory_decay <= 1.0:
            raise ValueError(
                f"memory_decay must be in (0, 1], got {memory_decay}"
            )
        self._aggregation = cycle_aggregation
        self._decay = float(memory_decay)
        self._scores = np.zeros(n_nodes, dtype=np.float64)
        self._intervals_seen = 0

    @property
    def name(self) -> str:
        return "eBay"

    @property
    def intervals_seen(self) -> int:
        return self._intervals_seen

    @property
    def cycle_aggregation(self) -> str:
        return self._aggregation

    @property
    def raw_scores(self) -> np.ndarray:
        """Unnormalised accumulated counted ratings (may be negative)."""
        view = self._scores.view()
        view.flags.writeable = False
        return view

    @staticmethod
    def counted_ratings(interval: IntervalRatings) -> np.ndarray:
        """Per-pair counted rating for one interval.

        Mean rating value per (rater, ratee) pair, clamped to [-1, 1];
        zero for pairs with no ratings.
        """
        counts = interval.counts
        mean = np.divide(
            interval.value_sum,
            counts,
            out=np.zeros_like(interval.value_sum),
            where=counts > 0,
        )
        return np.clip(mean, -1.0, 1.0)

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        counted = self.counted_ratings(interval).sum(axis=0)
        if self._aggregation == "node_sign":
            counted = np.sign(counted)
        if self._decay < 1.0:
            self._scores *= self._decay
        self._scores += counted
        self._intervals_seen += 1
        return self.reputations

    @property
    def reputations(self) -> np.ndarray:
        positive = np.clip(self._scores, 0.0, None)
        total = positive.sum()
        if total <= 0:
            return np.zeros(self._n)
        return positive / total

    def reset(self) -> None:
        self._scores[:] = 0.0
        self._intervals_seen = 0

    def state_dict(self) -> dict:
        return {
            "scores": self._scores.copy(),
            "intervals_seen": self._intervals_seen,
        }

    def restore_state(self, state: dict) -> None:
        self._scores = np.asarray(state["scores"], dtype=np.float64).copy()
        self._intervals_seen = int(state["intervals_seen"])
