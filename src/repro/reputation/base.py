"""Core reputation-system abstractions.

The simulator produces a stream of :class:`Rating` events.  At the end of
every *simulation cycle* (the paper's reputation-update interval ``T``)
those events are drained into an :class:`IntervalRatings` bundle — dense
``n x n`` matrices of value sums and positive/negative counts — and handed
to a :class:`ReputationSystem` for the global-reputation recomputation.

SocialTrust (:mod:`repro.core.socialtrust`) is itself a ``ReputationSystem``
that rescales the interval matrices before forwarding them to a wrapped base
system, which is exactly how the paper layers it over EigenTrust and eBay.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["Rating", "IntervalRatings", "ReputationSystem"]


@dataclass(frozen=True)
class Rating:
    """One service rating.

    Attributes
    ----------
    rater / ratee:
        Node ids (client rates server).
    value:
        Rating value; the paper's P2P evaluation uses +1 (authentic
        service) / -1 (inauthentic).
    interest:
        Interest category of the rated transaction, if known.
    """

    rater: int
    ratee: int
    value: float
    interest: int | None = None

    def __post_init__(self) -> None:
        if self.rater == self.ratee:
            raise ValueError("self-ratings are not allowed")


class IntervalRatings:
    """Dense per-interval rating aggregates.

    ``value_sum[i, j]`` is the summed rating value from rater ``i`` to ratee
    ``j`` during the interval; ``pos_counts`` / ``neg_counts`` are the
    rating-frequency observations (``t+`` / ``t-`` in Section 4.3) the
    collusion detector thresholds on.
    """

    __slots__ = ("value_sum", "pos_counts", "neg_counts")

    def __init__(self, n_nodes: int) -> None:
        self.value_sum = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        self.pos_counts = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        self.neg_counts = np.zeros((n_nodes, n_nodes), dtype=np.float64)

    @property
    def n_nodes(self) -> int:
        return self.value_sum.shape[0]

    @property
    def counts(self) -> np.ndarray:
        """Total rating counts per rater-ratee pair."""
        return self.pos_counts + self.neg_counts

    def add(self, rating: Rating) -> None:
        self.value_sum[rating.rater, rating.ratee] += rating.value
        if rating.value >= 0:
            self.pos_counts[rating.rater, rating.ratee] += 1
        else:
            self.neg_counts[rating.rater, rating.ratee] += 1

    def scaled(self, weights: np.ndarray) -> "IntervalRatings":
        """Return a copy with ``value_sum`` multiplied element-wise by ``weights``.

        Counts are preserved: SocialTrust damps the *influence* of suspected
        ratings, it does not pretend they never happened (the frequency
        observations remain available to downstream consumers).
        """
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != self.value_sum.shape:
            raise ValueError(
                f"weight matrix shape {w.shape} != {self.value_sum.shape}"
            )
        out = IntervalRatings(self.n_nodes)
        np.multiply(self.value_sum, w, out=out.value_sum)
        out.pos_counts[:] = self.pos_counts
        out.neg_counts[:] = self.neg_counts
        return out

    def copy(self) -> "IntervalRatings":
        out = IntervalRatings(self.n_nodes)
        out.value_sum[:] = self.value_sum
        out.pos_counts[:] = self.pos_counts
        out.neg_counts[:] = self.neg_counts
        return out


class ReputationSystem(abc.ABC):
    """Interface every reputation model (and SocialTrust) implements."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._n = int(n_nodes)

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short human-readable system name used in experiment reports."""

    @abc.abstractmethod
    def update(self, interval: IntervalRatings) -> np.ndarray:
        """Ingest one interval of ratings and recompute global reputations.

        Returns the new reputation vector (also available via
        :attr:`reputations`).
        """

    @property
    @abc.abstractmethod
    def reputations(self) -> np.ndarray:
        """Current global reputation vector, normalised to sum to 1
        (all-zero before any informative update)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Discard all accumulated state."""

    def _check_interval(self, interval: IntervalRatings) -> IntervalRatings:
        if interval.n_nodes != self._n:
            raise ValueError(
                f"interval is for {interval.n_nodes} nodes, system has {self._n}"
            )
        return interval
