"""EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW 2003).

Global trust is the stationary vector of the normalised local-trust matrix,
blended with a pre-trusted distribution:

    t_{k+1} = (1 - a) * C^T t_k + a * p

where ``C`` row-normalises the clipped accumulated local ratings
``s_ij = max(sum of ratings i gave j, 0)``, ``p`` is uniform over the
pre-trusted peers, and ``a`` is the pre-trust weight (see the class
docstring for why the default is 0.15 rather than the SocialTrust paper's
stated 0.5).  Rows with no positive local trust fall back to ``p`` — the standard
EigenTrust treatment of inexperienced peers, which is also what lets
pre-trusted peers anchor the computation.

The iteration is a dense 200x200 matrix-vector product per step; pure NumPy
is more than fast enough for the paper-scale experiments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.reputation.base import IntervalRatings, ReputationSystem

__all__ = ["EigenTrust"]


class EigenTrust(ReputationSystem):
    """Power-iteration EigenTrust with pre-trusted peers.

    Parameters
    ----------
    n_nodes:
        Network size.
    pretrusted:
        Ids of pre-trusted peers (distribution ``p`` is uniform over them).
        May be empty, in which case ``p`` is uniform over all nodes.
    pretrust_weight:
        The blend factor ``a`` in the update rule.  The SocialTrust paper
        states 0.5, but its own reputation plots are inconsistent with a
        0.5 *blend* (nine pre-trusted peers would each be guaranteed
        ``0.5/9 ≈ 5.5%`` of the total mass, an order of magnitude above
        every curve shown); the default therefore follows the EigenTrust
        paper's PageRank-style 0.15, and the experiment harness documents
        the divergence.  Pass 0.5 to follow the stated value literally.
    epsilon:
        L1 convergence tolerance of the power iteration.
    max_iterations:
        Safety bound on power-iteration steps.
    memory_decay:
        Fading-memory factor applied to the accumulated local trust before
        each interval is added (TrustGuard-style: recent behaviour weighs
        more than ancient history).  1.0 (default) keeps the paper's
        infinite memory; 0.9 halves the weight of an interval after ~7
        more intervals.
    """

    def __init__(
        self,
        n_nodes: int,
        pretrusted: Sequence[int] = (),
        *,
        pretrust_weight: float = 0.15,
        epsilon: float = 1e-10,
        max_iterations: int = 1000,
        memory_decay: float = 1.0,
    ) -> None:
        super().__init__(n_nodes)
        if not 0.0 < memory_decay <= 1.0:
            raise ValueError(
                f"memory_decay must be in (0, 1], got {memory_decay}"
            )
        self._decay = float(memory_decay)
        if not 0.0 <= pretrust_weight < 1.0:
            raise ValueError(
                f"pretrust_weight must be in [0, 1), got {pretrust_weight}"
            )
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        ids = sorted(set(int(x) for x in pretrusted))
        for x in ids:
            if not 0 <= x < n_nodes:
                raise ValueError(f"pretrusted id {x} out of range [0, {n_nodes})")
        self._pretrusted = tuple(ids)
        self._a = float(pretrust_weight)
        self._eps = float(epsilon)
        self._max_iter = int(max_iterations)
        self._p = np.zeros(n_nodes, dtype=np.float64)
        if ids:
            self._p[ids] = 1.0 / len(ids)
        else:
            self._p[:] = 1.0 / n_nodes
        self._local = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        self._t = self._p.copy()
        self._last_iterations = 0

    @property
    def name(self) -> str:
        return "EigenTrust"

    @property
    def pretrusted(self) -> tuple[int, ...]:
        return self._pretrusted

    @property
    def last_iterations(self) -> int:
        """Power-iteration steps taken by the most recent :meth:`update`."""
        return self._last_iterations

    @property
    def local_trust(self) -> np.ndarray:
        """Read-only view of the accumulated (signed) local ratings ``s_ij``."""
        view = self._local.view()
        view.flags.writeable = False
        return view

    def normalized_local(self) -> np.ndarray:
        """The row-stochastic matrix ``C``; pretrust rows for empty raters."""
        clipped = np.clip(self._local, 0.0, None)
        np.fill_diagonal(clipped, 0.0)
        row_sums = clipped.sum(axis=1, keepdims=True)
        c = np.divide(
            clipped, row_sums, out=np.zeros_like(clipped), where=row_sums > 0
        )
        empty = row_sums[:, 0] == 0
        if np.any(empty):
            c[empty] = self._p
        return c

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        if self._decay < 1.0:
            self._local *= self._decay
        self._local += interval.value_sum
        c = self.normalized_local()
        ct = np.ascontiguousarray(c.T)
        t = self._t
        a, p = self._a, self._p
        for iteration in range(1, self._max_iter + 1):
            t_next = (1.0 - a) * (ct @ t) + a * p
            delta = np.abs(t_next - t).sum()
            t = t_next
            if delta < self._eps:
                break
        self._last_iterations = iteration
        self._t = t
        return self.reputations

    @property
    def reputations(self) -> np.ndarray:
        total = self._t.sum()
        if total <= 0:
            return np.zeros(self._n)
        return self._t / total

    def reset(self) -> None:
        self._local[:] = 0.0
        self._t = self._p.copy()
        self._last_iterations = 0

    def state_dict(self) -> dict:
        return {
            "local": self._local.copy(),
            "t": self._t.copy(),
            "last_iterations": self._last_iterations,
        }

    def restore_state(self, state: dict) -> None:
        self._local = np.asarray(state["local"], dtype=np.float64).copy()
        self._t = np.asarray(state["t"], dtype=np.float64).copy()
        self._last_iterations = int(state["last_iterations"])
