"""TrustGuard-style similarity-weighted feedback (Srivatsa, Xiong & Liu, WWW 2005).

The paper's related work singles out TrustGuard's credibility mechanism as
the main prior anti-collusion defence: "TrustGuard gives more weight to the
feedbacks from similar ratings, acting as an effective defense against
potential collusive nodes that only give good ratings within the clique and
give bad rating to everyone else" — and then argues such mechanisms are
"not sufficiently effective".  This simplified implementation makes that
comparison concrete (see ``benchmarks/test_bench_baseline_defenses.py``).

Model:

* the system keeps the cumulative mean rating each rater gave each ratee;
* a *consensus* rating per ratee is the unweighted mean over its raters;
* each rater's **credibility** falls with the root-mean-square deviation of
  its rating vector from the consensus on the ratees it actually rated
  (``credibility = 1 / (1 + rmsd^2 / sigma^2)``);
* a node's reputation is the credibility-weighted mean of the ratings it
  received, clipped at zero and normalised.

A clique whose members praise each other against the grain of everyone
else's experience diverges from consensus and loses credibility — unless
the clique's targets are rated by almost nobody else, which is precisely
the blind spot the paper exploits to motivate SocialTrust.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import IntervalRatings, ReputationSystem

__all__ = ["SimilarityWeightedModel"]


class SimilarityWeightedModel(ReputationSystem):
    """Credibility-weighted feedback aggregation (TrustGuard-like).

    Parameters
    ----------
    n_nodes:
        Network size.
    deviation_scale:
        The ``sigma`` in the credibility falloff: a rater whose RMS
        deviation from consensus equals ``sigma`` keeps credibility 0.5.
        With ±1 ratings a scale of 0.5 makes systematic disagreement
        (deviation ~1-2) cheap to hold against a rater while honest noise
        (deviation ~0.2-0.4) costs little.
    """

    def __init__(self, n_nodes: int, *, deviation_scale: float = 0.5) -> None:
        super().__init__(n_nodes)
        if deviation_scale <= 0:
            raise ValueError(
                f"deviation_scale must be positive, got {deviation_scale}"
            )
        self._sigma = float(deviation_scale)
        self._value_sum = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        self._counts = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        self._reputations = np.zeros(n_nodes, dtype=np.float64)

    @property
    def name(self) -> str:
        return "TrustGuard-like"

    def mean_ratings(self) -> np.ndarray:
        """Cumulative mean rating per (rater, ratee); 0 where no ratings."""
        return np.divide(
            self._value_sum,
            self._counts,
            out=np.zeros_like(self._value_sum),
            where=self._counts > 0,
        )

    def credibilities(self) -> np.ndarray:
        """Per-rater credibility in (0, 1]; 1 for raters with no history."""
        means = self.mean_ratings()
        rated = self._counts > 0
        consensus_num = np.where(rated, means, 0.0).sum(axis=0)
        consensus_den = rated.sum(axis=0)
        consensus = np.divide(
            consensus_num,
            consensus_den,
            out=np.zeros(self._n),
            where=consensus_den > 0,
        )
        deviation_sq = np.where(rated, (means - consensus) ** 2, 0.0)
        rated_counts = rated.sum(axis=1)
        msd = np.divide(
            deviation_sq.sum(axis=1),
            rated_counts,
            out=np.zeros(self._n),
            where=rated_counts > 0,
        )
        return 1.0 / (1.0 + msd / (self._sigma**2))

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        self._value_sum += interval.value_sum
        self._counts += interval.counts
        credibility = self.credibilities()
        means = self.mean_ratings()
        rated = self._counts > 0
        weighted = (credibility[:, None] * means * rated).sum(axis=0)
        weight_total = (credibility[:, None] * rated).sum(axis=0)
        scores = np.divide(
            weighted, weight_total, out=np.zeros(self._n), where=weight_total > 0
        )
        self._reputations = np.clip(scores, 0.0, None)
        return self.reputations

    @property
    def reputations(self) -> np.ndarray:
        total = self._reputations.sum()
        if total <= 0:
            return np.zeros(self._n)
        return self._reputations / total

    def reset(self) -> None:
        self._value_sum[:] = 0.0
        self._counts[:] = 0.0
        self._reputations[:] = 0.0

    def state_dict(self) -> dict:
        return {
            "value_sum": self._value_sum.copy(),
            "counts": self._counts.copy(),
            "reputations": self._reputations.copy(),
        }

    def restore_state(self, state: dict) -> None:
        self._value_sum = np.asarray(state["value_sum"], dtype=np.float64).copy()
        self._counts = np.asarray(state["counts"], dtype=np.float64).copy()
        self._reputations = np.asarray(
            state["reputations"], dtype=np.float64
        ).copy()
