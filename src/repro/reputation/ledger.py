"""Per-interval rating accumulator.

The simulator records every rating into a :class:`RatingLedger`; at each
reputation-update interval the ledger is drained into an immutable-by-
convention :class:`~repro.reputation.base.IntervalRatings` bundle.  Keeping
the hot-path ``record`` a pair of array increments (rather than appending
Python objects) is what keeps the 200-node x 30-query-cycle x 50-cycle
experiment grid fast.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import IntervalRatings, Rating

__all__ = ["RatingLedger"]


class RatingLedger:
    """Accumulates ratings for the current reputation-update interval."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._n = int(n_nodes)
        self._interval = IntervalRatings(self._n)
        self._total_recorded = 0

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def total_recorded(self) -> int:
        """Ratings recorded since construction (across all intervals)."""
        return self._total_recorded

    def record(self, rating: Rating) -> None:
        if not 0 <= rating.rater < self._n or not 0 <= rating.ratee < self._n:
            raise IndexError(
                f"rating ({rating.rater} -> {rating.ratee}) out of range"
            )
        self._interval.add(rating)
        self._total_recorded += 1

    def record_many(
        self,
        raters: np.ndarray,
        ratees: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Record one rating per ``(raters[t], ratees[t], values[t])`` triple.

        Bit-identical to looping :meth:`record`: ``np.add.at`` applies the
        value increments unbuffered in chronological order, and the
        positive/negative counters only ever take exact ``+1`` steps.
        """
        i = np.asarray(raters, dtype=np.int64)
        j = np.asarray(ratees, dtype=np.int64)
        v = np.asarray(values, dtype=np.float64)
        if not (i.shape == j.shape == v.shape) or i.ndim != 1:
            raise ValueError(
                "raters, ratees and values must be 1-D arrays of equal length"
            )
        if i.size == 0:
            return
        if np.any(i == j):
            raise ValueError("self-ratings are not allowed")
        if np.any((i < 0) | (i >= self._n) | (j < 0) | (j >= self._n)):
            raise IndexError("rating endpoint out of range")
        interval = self._interval
        np.add.at(interval.value_sum, (i, j), v)
        pos = v >= 0
        if np.any(pos):
            np.add.at(interval.pos_counts, (i[pos], j[pos]), 1.0)
        if not np.all(pos):
            neg = ~pos
            np.add.at(interval.neg_counts, (i[neg], j[neg]), 1.0)
        self._total_recorded += i.size

    def record_batch(self, rater: int, ratee: int, value: float, count: int) -> None:
        """Record ``count`` identical ratings in one call (collusion bursts)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if rater == ratee:
            raise ValueError("self-ratings are not allowed")
        if not 0 <= rater < self._n or not 0 <= ratee < self._n:
            raise IndexError(f"rating ({rater} -> {ratee}) out of range")
        self._interval.value_sum[rater, ratee] += value * count
        if value >= 0:
            self._interval.pos_counts[rater, ratee] += count
        else:
            self._interval.neg_counts[rater, ratee] += count
        self._total_recorded += count

    def peek(self) -> IntervalRatings:
        """Current interval aggregates without draining (copy)."""
        return self._interval.copy()

    def drain(self) -> IntervalRatings:
        """Return the interval aggregates and start a fresh interval."""
        out = self._interval
        self._interval = IntervalRatings(self._n)
        return out

    def state_dict(self) -> dict:
        """In-flight interval aggregates plus the lifetime count.  At a
        cycle boundary the interval is freshly drained (all zeros), but
        mid-interval checkpoints are supported too."""
        return {
            "value_sum": self._interval.value_sum.copy(),
            "pos_counts": self._interval.pos_counts.copy(),
            "neg_counts": self._interval.neg_counts.copy(),
            "total_recorded": self._total_recorded,
        }

    def restore_state(self, state: dict) -> None:
        interval = IntervalRatings(self._n)
        interval.value_sum[:] = np.asarray(state["value_sum"], dtype=np.float64)
        interval.pos_counts[:] = np.asarray(state["pos_counts"], dtype=np.float64)
        interval.neg_counts[:] = np.asarray(state["neg_counts"], dtype=np.float64)
        self._interval = interval
        self._total_recorded = int(state["total_recorded"])
