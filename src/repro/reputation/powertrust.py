"""PowerTrust (Zhou & Hwang, TPDS 2007) — simplified.

PowerTrust is the paper's related-work alternative to EigenTrust: instead
of a *fixed* set of pre-trusted peers, it dynamically selects the top-``m``
most reputable *power nodes* after every aggregation round and gives their
ratings extra leverage in the next one.  This implementation keeps the
essential structure:

* global reputation is the stationary vector of the row-normalised local
  trust matrix, blended with a distribution concentrated on the current
  power nodes (look-ahead random walk);
* power nodes are re-elected every update from the previous global vector.

It exists here as an additional base system SocialTrust can wrap —
demonstrating (and testing) that the wrapper is genuinely
reputation-system-agnostic — and as a substrate for the dynamic-power-node
variant of the compromised-pre-trusted experiments.
"""

from __future__ import annotations

import numpy as np

from repro.reputation.base import IntervalRatings, ReputationSystem

__all__ = ["PowerTrust"]


class PowerTrust(ReputationSystem):
    """Power-iteration reputation with dynamically elected power nodes.

    Parameters
    ----------
    n_nodes:
        Network size.
    n_power_nodes:
        How many top-reputation peers act as power nodes each round.
    power_weight:
        Blend factor toward the power-node distribution (the look-ahead
        random-walk greedy factor).
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        n_power_nodes: int = 9,
        power_weight: float = 0.15,
        epsilon: float = 1e-10,
        max_iterations: int = 1000,
    ) -> None:
        super().__init__(n_nodes)
        if not 1 <= n_power_nodes <= n_nodes:
            raise ValueError(
                f"n_power_nodes must be in [1, {n_nodes}], got {n_power_nodes}"
            )
        if not 0.0 <= power_weight < 1.0:
            raise ValueError(f"power_weight must be in [0, 1), got {power_weight}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self._m = int(n_power_nodes)
        self._a = float(power_weight)
        self._eps = float(epsilon)
        self._max_iter = int(max_iterations)
        self._local = np.zeros((n_nodes, n_nodes), dtype=np.float64)
        self._t = np.full(n_nodes, 1.0 / n_nodes)
        self._power_nodes: tuple[int, ...] = ()

    @property
    def name(self) -> str:
        return "PowerTrust"

    @property
    def power_nodes(self) -> tuple[int, ...]:
        """The power nodes elected by the most recent update."""
        return self._power_nodes

    def _elect(self) -> np.ndarray:
        """Distribution over the current top-m reputation holders."""
        top = np.argsort(self._t)[-self._m :]
        self._power_nodes = tuple(sorted(int(x) for x in top))
        p = np.zeros(self._n)
        p[top] = 1.0 / self._m
        return p

    def update(self, interval: IntervalRatings) -> np.ndarray:
        self._check_interval(interval)
        self._local += interval.value_sum
        p = self._elect()
        clipped = np.clip(self._local, 0.0, None)
        np.fill_diagonal(clipped, 0.0)
        row_sums = clipped.sum(axis=1, keepdims=True)
        c = np.divide(
            clipped, row_sums, out=np.zeros_like(clipped), where=row_sums > 0
        )
        empty = np.flatnonzero(row_sums[:, 0] == 0)
        if empty.size:
            # Inexperienced raters spread uniformly over *other* peers.
            # (Falling back to the power distribution — as EigenTrust does
            # with its fixed pre-trusted set — would hand an empty-row
            # power node a self-loop that locks in its own election.)
            share = 1.0 / (self._n - 1)
            c[empty] = share
            c[empty, empty] = 0.0
        ct = np.ascontiguousarray(c.T)
        t = self._t
        for _ in range(self._max_iter):
            t_next = (1.0 - self._a) * (ct @ t) + self._a * p
            if np.abs(t_next - t).sum() < self._eps:
                t = t_next
                break
            t = t_next
        self._t = t
        return self.reputations

    @property
    def reputations(self) -> np.ndarray:
        total = self._t.sum()
        if total <= 0:
            return np.zeros(self._n)
        return self._t / total

    def reset(self) -> None:
        self._local[:] = 0.0
        self._t = np.full(self._n, 1.0 / self._n)
        self._power_nodes = ()

    def state_dict(self) -> dict:
        return {
            "local": self._local.copy(),
            "t": self._t.copy(),
            "power_nodes": list(self._power_nodes),
        }

    def restore_state(self, state: dict) -> None:
        self._local = np.asarray(state["local"], dtype=np.float64).copy()
        self._t = np.asarray(state["t"], dtype=np.float64).copy()
        self._power_nodes = tuple(int(v) for v in state["power_nodes"])
