"""Batch-vs-streamed equivalence harness.

The contract the streaming service stands on: applying a recorded
scenario's events one at a time reproduces the batch run's reputation
vectors at every interval watermark.  This module packages the two sides
— :func:`record_scenario_events` produces the stream plus the batch
history, :func:`replay_events` streams it into a fresh
:class:`~repro.serve.service.ReputationService` — and
:func:`replay_report` diffs the two histories, strict (bit-identical,
the same-machine guarantee) or within golden tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.api import ScenarioSpec
from repro.serve.events import Event
from repro.serve.recorder import RecordedStream, record_scenario_events
from repro.serve.service import ReputationService

__all__ = [
    "ReplayReport",
    "compare_histories",
    "replay_events",
    "replay_recorded",
    "replay_report",
]


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of one batch-vs-streamed comparison."""

    intervals: int
    n_nodes: int
    #: Largest absolute reputation difference across all watermarks.
    max_abs_diff: float
    #: True when every watermark vector matched bit-for-bit.
    bitwise_equal: bool

    def within(self, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Golden-tolerance acceptance (trivially true when bitwise)."""
        return self.bitwise_equal or self.max_abs_diff <= atol + rtol


def replay_events(
    spec: ScenarioSpec,
    events: Iterable[Event],
    **service_kwargs,
) -> ReputationService:
    """Build a fresh service for ``spec`` and stream ``events`` through it
    synchronously; returns the service (its ``history`` holds the
    per-watermark reputation vectors)."""
    service = ReputationService(spec, **service_kwargs)
    service.serve_events(events)
    return service


def replay_recorded(
    recorded: RecordedStream, **service_kwargs
) -> tuple[ReputationService, ReplayReport]:
    """Stream a recorded run and compare against its batch history."""
    service = replay_events(recorded.spec, recorded.events, **service_kwargs)
    report = compare_histories(recorded.batch_history, service.history)
    return service, report


def compare_histories(batch: np.ndarray, stream: np.ndarray) -> ReplayReport:
    """Elementwise comparison of two ``(intervals, n)`` histories."""
    if batch.shape != stream.shape:
        raise ValueError(
            f"history shapes differ: batch {batch.shape} vs stream {stream.shape}"
        )
    diff = float(np.abs(stream - batch).max()) if batch.size else 0.0
    return ReplayReport(
        intervals=int(batch.shape[0]),
        n_nodes=int(batch.shape[1]) if batch.ndim == 2 else 0,
        max_abs_diff=diff,
        bitwise_equal=bool(np.array_equal(stream, batch)),
    )


def replay_report(spec: ScenarioSpec, cycles: int | None = None) -> ReplayReport:
    """Record ``spec`` in batch and stream it back; returns the diff."""
    recorded = record_scenario_events(spec, cycles)
    _, report = replay_recorded(recorded)
    return report
