"""Typed events and the line-JSON codec of the streaming service.

The streaming service consumes four event kinds, mirroring exactly what
the batch simulator's query-cycle loop does to the behavioural ledgers:

* :class:`RatingEvent` — one rating exchange (possibly a burst of
  ``count`` identical ratings, which is how collusion bursts stream).  A
  rating is *composite*: it updates the interval rating ledger, the
  interaction-frequency ledger, and — when it carries an ``interest`` —
  the behavioural request counters, in that order, matching the scalar
  simulation loop rating-for-service path.  Burst ratings carry no
  interest (a rating exchange without a genuine resource transfer leaves
  no request trace);
* :class:`InteractionEvent` — an interaction with no rating attached
  (e.g. an unrated resource transfer);
* :class:`ChurnEvent` — peer departure aging: decay the listed nodes'
  interaction history by ``factor`` (the simulator's churn decay);
* :class:`WatermarkEvent` — close the current rating interval: drain the
  ledger, run the detector + damping + inner reputation update.  Recorded
  streams carry explicit watermarks so replay reproduces the batch run's
  interval boundaries bit-for-bit; live streams may instead rely on the
  service's ``interval_events`` auto-watermark.

:class:`QueryRequest` / :class:`QueryResult` are the read path: a
reputation lookup (one node or the full vector) or a rater→ratee damping
weight probe, answered from the live caches without touching state.

Events serialise to single-line JSON objects tagged by ``"t"`` (see
:func:`encode_event` / :func:`decode_event`).  A stream file is line-JSON
with an optional leading header line carrying the
:class:`~repro.api.ScenarioSpec` that describes the world the events were
recorded against — a stream file is self-describing the same way golden
traces and checkpoints are.  :data:`EVENT_SCHEMA_VERSION` is bumped on
incompatible layout changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, TextIO, Union

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "RatingEvent",
    "InteractionEvent",
    "ChurnEvent",
    "WatermarkEvent",
    "QueryRequest",
    "QueryResult",
    "Event",
    "EventDecodeError",
    "encode_event",
    "decode_event",
    "write_event_stream",
    "read_event_stream",
    "iter_event_lines",
]

#: Bumped whenever the line-JSON event layout changes incompatibly.
EVENT_SCHEMA_VERSION = 1


class EventDecodeError(ValueError):
    """A line could not be decoded into a known event."""


@dataclass(frozen=True)
class RatingEvent:
    """``count`` identical ratings ``rater → ratee`` of ``value`` (±1).

    ``interest`` marks a genuine serviced request (and feeds the
    behavioural interest counters); collusion bursts leave it ``None``.
    """

    rater: int
    ratee: int
    value: float
    count: int = 1
    interest: int | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.rater == self.ratee:
            raise ValueError("self-ratings are not allowed")
        if self.interest is not None and self.count != 1:
            raise ValueError(
                "a genuine (interest-carrying) rating is a single service "
                "outcome; bursts must not carry an interest"
            )


@dataclass(frozen=True)
class InteractionEvent:
    """``count`` interactions initiated by ``source`` toward ``target``
    with no rating attached."""

    source: int
    target: int
    count: float = 1.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")
        if self.source == self.target:
            raise ValueError("self-interactions are not meaningful")


@dataclass(frozen=True)
class ChurnEvent:
    """Decay the listed nodes' interaction history by ``factor``."""

    nodes: tuple[int, ...]
    factor: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(int(n) for n in self.nodes))
        if not 0.0 <= self.factor <= 1.0:
            raise ValueError(f"factor must be in [0, 1], got {self.factor}")


@dataclass(frozen=True)
class WatermarkEvent:
    """Close the current rating interval and run the reputation update.

    ``cycle`` is informational (the batch cycle index in recorded
    streams); the service asserts monotonicity when it is set.
    """

    cycle: int | None = None


@dataclass(frozen=True)
class QueryRequest:
    """A read-only probe of the live service state.

    * ``node`` set → that node's current reputation;
    * ``rater``/``ratee`` set → the pair's current Gaussian damping
      weight (1.0 unless the detector flagged the pair last interval);
    * neither → the full reputation vector.
    """

    node: int | None = None
    rater: int | None = None
    ratee: int | None = None

    def __post_init__(self) -> None:
        if (self.rater is None) != (self.ratee is None):
            raise ValueError("damping queries need both rater and ratee")
        if self.node is not None and self.rater is not None:
            raise ValueError("query either a reputation or a damping weight")


@dataclass(frozen=True)
class QueryResult:
    """Answer to one :class:`QueryRequest`, stamped with service progress."""

    request: QueryRequest
    #: Scalar reputation / damping weight, or the full vector as a list.
    value: float | list[float]
    #: Reputation-update intervals the service had applied when answering.
    intervals_run: int
    #: Mutation events applied when answering.
    events_applied: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "t": "result",
            "value": self.value,
            "intervals_run": self.intervals_run,
            "events_applied": self.events_applied,
        }


Event = Union[RatingEvent, InteractionEvent, ChurnEvent, WatermarkEvent, QueryRequest]


def encode_event(event: Event) -> dict[str, Any]:
    """One event → its tagged JSON-safe dict (defaults elided)."""
    if isinstance(event, RatingEvent):
        out: dict[str, Any] = {
            "t": "rating",
            "rater": event.rater,
            "ratee": event.ratee,
            "value": event.value,
        }
        if event.count != 1:
            out["count"] = event.count
        if event.interest is not None:
            out["interest"] = event.interest
        return out
    if isinstance(event, InteractionEvent):
        out = {"t": "interaction", "source": event.source, "target": event.target}
        if event.count != 1.0:
            out["count"] = event.count
        return out
    if isinstance(event, ChurnEvent):
        return {"t": "churn", "nodes": list(event.nodes), "factor": event.factor}
    if isinstance(event, WatermarkEvent):
        out = {"t": "watermark"}
        if event.cycle is not None:
            out["cycle"] = event.cycle
        return out
    if isinstance(event, QueryRequest):
        out = {"t": "query"}
        if event.node is not None:
            out["node"] = event.node
        if event.rater is not None:
            out["rater"] = event.rater
            out["ratee"] = event.ratee
        return out
    raise TypeError(f"not a service event: {type(event).__name__}")


def decode_event(data: dict[str, Any]) -> Event:
    """Inverse of :func:`encode_event`; raises :class:`EventDecodeError`."""
    if not isinstance(data, dict):
        raise EventDecodeError(f"event must be a JSON object, got {type(data).__name__}")
    tag = data.get("t")
    try:
        if tag == "rating":
            return RatingEvent(
                rater=int(data["rater"]),
                ratee=int(data["ratee"]),
                value=float(data["value"]),
                count=int(data.get("count", 1)),
                interest=(
                    int(data["interest"]) if data.get("interest") is not None else None
                ),
            )
        if tag == "interaction":
            return InteractionEvent(
                source=int(data["source"]),
                target=int(data["target"]),
                count=float(data.get("count", 1.0)),
            )
        if tag == "churn":
            return ChurnEvent(
                nodes=tuple(int(n) for n in data["nodes"]),
                factor=float(data["factor"]),
            )
        if tag == "watermark":
            cycle = data.get("cycle")
            return WatermarkEvent(cycle=int(cycle) if cycle is not None else None)
        if tag == "query":
            node = data.get("node")
            rater = data.get("rater")
            ratee = data.get("ratee")
            return QueryRequest(
                node=int(node) if node is not None else None,
                rater=int(rater) if rater is not None else None,
                ratee=int(ratee) if ratee is not None else None,
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise EventDecodeError(f"malformed {tag!r} event: {exc}") from None
    raise EventDecodeError(f"unknown event tag {tag!r}")


def write_event_stream(
    path: Path | str,
    events: Iterable[Event],
    *,
    spec: Any | None = None,
) -> int:
    """Write an event stream file; returns the number of event lines.

    ``spec`` (a :class:`~repro.api.ScenarioSpec`) goes into a leading
    header line so the stream is self-describing.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with path.open("w", encoding="utf-8") as handle:
        if spec is not None:
            header = {
                "t": "header",
                "schema_version": EVENT_SCHEMA_VERSION,
                "spec": spec.to_dict(),
            }
            handle.write(json.dumps(header, separators=(",", ":")))
            handle.write("\n")
        for event in events:
            handle.write(json.dumps(encode_event(event), separators=(",", ":")))
            handle.write("\n")
            written += 1
    return written


def iter_event_lines(handle: TextIO) -> Iterator[Event]:
    """Decode events line-by-line from an open text stream.

    A header line, if present, must come first and is skipped (version
    checked); blank lines are ignored.
    """
    for number, raw in enumerate(handle, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise EventDecodeError(f"line {number}: invalid JSON ({exc})") from None
        if isinstance(data, dict) and data.get("t") == "header":
            if number != 1:
                raise EventDecodeError(f"line {number}: header must be the first line")
            version = data.get("schema_version")
            if version != EVENT_SCHEMA_VERSION:
                raise EventDecodeError(
                    f"event schema version {version!r} != supported "
                    f"{EVENT_SCHEMA_VERSION}"
                )
            continue
        try:
            yield decode_event(data)
        except EventDecodeError as exc:
            raise EventDecodeError(f"line {number}: {exc}") from None


@dataclass(frozen=True)
class _LoadedStream:
    """Result of :func:`read_event_stream`: spec dict (or None) + events."""

    spec: dict[str, Any] | None
    events: tuple[Event, ...] = field(default_factory=tuple)


def read_event_stream(path: Path | str) -> _LoadedStream:
    """Load a whole stream file: ``(spec_dict_or_None, events)``."""
    path = Path(path)
    spec: dict[str, Any] | None = None
    events: list[Event] = []
    with path.open("r", encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise EventDecodeError(f"line {number}: invalid JSON ({exc})") from None
            if isinstance(data, dict) and data.get("t") == "header":
                if number != 1:
                    raise EventDecodeError(
                        f"line {number}: header must be the first line"
                    )
                version = data.get("schema_version")
                if version != EVENT_SCHEMA_VERSION:
                    raise EventDecodeError(
                        f"event schema version {version!r} != supported "
                        f"{EVENT_SCHEMA_VERSION}"
                    )
                spec = data.get("spec")
                continue
            try:
                events.append(decode_event(data))
            except EventDecodeError as exc:
                raise EventDecodeError(f"line {number}: {exc}") from None
    return _LoadedStream(spec=spec, events=tuple(events))
