"""Record a batch scenario run as a replayable event stream.

The recorder runs a scenario through the *scalar* simulation loop (the
seed reference implementation, property-tested bit-identical to the
batched engine) with the three behavioural ledgers instrumented, and
writes down every mutation the loop performs as a typed service event:

* ``ledger.record`` (a genuine serviced request) →
  :class:`~repro.serve.events.RatingEvent` carrying the interest.  The
  loop's companion ``interactions.record`` / ``profiles.record_request``
  calls are folded into that composite event, not emitted separately —
  the service re-expands a rating into exactly those three ledger calls;
* ``ledger.record_batch`` (a collusion burst) → a ``count``-carrying
  :class:`~repro.serve.events.RatingEvent` with no interest (its paired
  ``interactions.record`` is folded in the same way);
* any other ``interactions.record`` →
  :class:`~repro.serve.events.InteractionEvent`;
* ``interactions.decay_nodes`` (churn aging) →
  :class:`~repro.serve.events.ChurnEvent`;
* each completed simulation cycle →
  :class:`~repro.serve.events.WatermarkEvent`.

Because the instrumentation wraps-and-forwards (the original methods
still run), the recording run is numerically identical to an
uninstrumented one; the recorder also captures the per-cycle reputation
vectors so equivalence tests can compare a streamed replay against the
*same process's* batch history bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import ScenarioSpec, build_scenario
from repro.serve.events import (
    ChurnEvent,
    Event,
    InteractionEvent,
    RatingEvent,
    WatermarkEvent,
)

__all__ = ["RecordedStream", "record_scenario_events"]


@dataclass(frozen=True)
class RecordedStream:
    """One recorded run: the spec it replays against, the events, and the
    batch run's per-cycle reputation history for strict comparison."""

    spec: ScenarioSpec
    events: tuple[Event, ...]
    #: Post-update reputation vectors, shape ``(cycles, n_nodes)``.
    batch_history: np.ndarray

    @property
    def n_events(self) -> int:
        return len(self.events)


class _LedgerTap:
    """Instance-level instrumentation of one scenario's three ledgers."""

    def __init__(self, simulation) -> None:
        self.events: list[Event] = []
        # The composite-rating fold: after a rating is recorded, the loop
        # immediately records the implied interaction (and, for genuine
        # requests, the interest).  Those calls are consumed silently.
        self._fold_interaction: tuple[int, int, float] | None = None
        self._fold_profile: tuple[int, int] | None = None
        self._ledger = simulation.ledger
        self._interactions = simulation.interactions
        self._profiles = simulation.profiles
        orig_record = self._ledger.record
        orig_record_batch = self._ledger.record_batch
        orig_interaction = self._interactions.record
        orig_decay = self._interactions.decay_nodes
        orig_request = self._profiles.record_request

        def tap_record(rating):
            self._flush_folds()
            self.events.append(
                RatingEvent(
                    rater=rating.rater,
                    ratee=rating.ratee,
                    value=rating.value,
                    count=1,
                    interest=rating.interest,
                )
            )
            self._fold_interaction = (rating.rater, rating.ratee, 1.0)
            if rating.interest is not None:
                self._fold_profile = (rating.rater, rating.interest)
            return orig_record(rating)

        def tap_record_batch(rater, ratee, value, count):
            self._flush_folds()
            self.events.append(
                RatingEvent(
                    rater=rater, ratee=ratee, value=value, count=count
                )
            )
            self._fold_interaction = (rater, ratee, float(count))
            return orig_record_batch(rater, ratee, value, count)

        def tap_record_many(*args, **kwargs):
            raise RuntimeError(
                "event recording requires the scalar engine; a batched "
                "record_many slipped through"
            )

        def tap_interaction(i, j, count=1.0):
            if self._fold_interaction == (i, j, float(count)):
                self._fold_interaction = None
            else:
                self._flush_folds()
                self.events.append(
                    InteractionEvent(source=i, target=j, count=float(count))
                )
            return orig_interaction(i, j, count)

        def tap_decay(nodes, factor):
            self._flush_folds()
            idx = np.asarray(nodes, dtype=np.int64)
            if idx.size and factor != 1.0:
                self.events.append(
                    ChurnEvent(nodes=tuple(int(n) for n in idx), factor=float(factor))
                )
            return orig_decay(nodes, factor)

        def tap_request(node, interest, count=1.0):
            if self._fold_profile == (node, interest) and count == 1.0:
                self._fold_profile = None
            else:
                raise RuntimeError(
                    f"unexpected profile request ({node}, {interest}) with "
                    f"no preceding rating — the recorder's fold model no "
                    f"longer matches the simulation loop"
                )
            return orig_request(node, interest, count)

        self._taps = {
            (self._ledger, "record"): tap_record,
            (self._ledger, "record_batch"): tap_record_batch,
            (self._ledger, "record_many"): tap_record_many,
            (self._interactions, "record"): tap_interaction,
            (self._interactions, "decay_nodes"): tap_decay,
            (self._profiles, "record_request"): tap_request,
        }
        for (target, name), tap in self._taps.items():
            setattr(target, name, tap)

    def _flush_folds(self) -> None:
        """A pending fold that was never consumed means the loop changed
        shape; fail loudly rather than drop a ledger mutation."""
        if self._fold_interaction is not None or self._fold_profile is not None:
            raise RuntimeError(
                "recorder fold left unconsumed — the simulation loop no "
                "longer pairs ratings with interactions/requests as the "
                "recorder assumes"
            )

    def close(self) -> None:
        self._flush_folds()
        for target, name in self._taps:
            try:
                delattr(target, name)
            except AttributeError:
                pass


def record_scenario_events(spec: ScenarioSpec, cycles: int | None = None) -> RecordedStream:
    """Run ``spec`` in batch (scalar engine) and capture its event stream.

    ``spec`` is normalised to ``engine="scalar"`` for the recording run —
    the scalar loop is bit-identical to the batched engine, and its
    per-rating ledger calls are what the taps observe.  The returned
    stream's :attr:`~RecordedStream.spec` carries that normalisation, so
    replaying it builds the world the events were recorded against.
    """
    spec = spec.with_updates(engine="scalar")
    scenario = build_scenario(spec)
    simulation = scenario.world.simulation
    cycles = (
        cycles
        if cycles is not None
        else scenario.config.simulation_cycles
    )
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    tap = _LedgerTap(simulation)
    history: list[np.ndarray] = []
    try:
        for cycle in range(cycles):
            reputations = simulation.run_simulation_cycle()
            tap.events.append(WatermarkEvent(cycle=cycle))
            history.append(np.array(reputations, dtype=np.float64, copy=True))
    finally:
        tap.close()
    return RecordedStream(
        spec=spec,
        events=tuple(tap.events),
        batch_history=np.vstack(history),
    )
