"""Line-JSON drivers: feed a service from a text stream or a socket.

Two transports share one wire format — the tagged line-JSON of
:mod:`repro.serve.events`:

* :func:`drive_lines` — synchronous: read events from any text handle
  (stdin, a recorded stream file), apply them in order, write query
  results (one JSON line each) to ``out``.  This is what
  ``repro serve --events`` uses;
* :func:`serve_socket` — an ``asyncio.start_server`` endpoint: each
  connection sends events line-by-line; mutation events are submitted to
  the service's ingestion queue (backpressure propagates to the socket),
  queries are answered on the same connection in arrival order.  Used by
  ``repro serve --listen`` and the in-process socket tests.
"""

from __future__ import annotations

import asyncio
import json
from typing import TextIO

from repro.serve.events import (
    EventDecodeError,
    QueryRequest,
    decode_event,
    iter_event_lines,
)
from repro.serve.service import ReputationService

__all__ = ["drive_lines", "serve_socket"]


def drive_lines(
    service: ReputationService,
    handle: TextIO,
    *,
    out: TextIO | None = None,
) -> int:
    """Apply every event line from ``handle``; returns events consumed.

    Query results are written to ``out`` (one compact JSON line each)
    when it is given, and discarded otherwise.
    """
    consumed = 0
    for event in iter_event_lines(handle):
        result = service.apply(event)
        consumed += 1
        if out is not None and isinstance(event, QueryRequest):
            out.write(json.dumps(result.to_dict(), separators=(",", ":")))
            out.write("\n")
    return consumed


async def serve_socket(
    service: ReputationService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Start a line-JSON socket endpoint in front of ``service``.

    The service's ingestion loop must be running (``service.run()``)
    on the same event loop.  Returns the started server; the bound
    address is ``server.sockets[0].getsockname()`` (port 0 picks a free
    one).  Malformed lines answer with an ``{"t": "error"}`` line and
    close the connection rather than poisoning the queue.

    A ``{"query": "metrics"}`` line is a scrape: it answers with one
    ``{"t": "metrics", "content_type": ..., "exposition": ...}`` line
    carrying the registry rendered in Prometheus text format, without
    touching the ingestion queue.
    """

    async def handle_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    if (
                        isinstance(payload, dict)
                        and payload.get("query") == "metrics"
                    ):
                        from repro.obs.export import (
                            PROMETHEUS_CONTENT_TYPE,
                            render_prometheus,
                        )

                        reply = {
                            "t": "metrics",
                            "content_type": PROMETHEUS_CONTENT_TYPE,
                            "exposition": render_prometheus(service.metrics),
                        }
                        writer.write(
                            json.dumps(reply, separators=(",", ":")).encode("utf-8")
                            + b"\n"
                        )
                        await writer.drain()
                        continue
                    event = decode_event(payload)
                except (json.JSONDecodeError, EventDecodeError) as exc:
                    payload = {"t": "error", "error": str(exc)}
                    writer.write(json.dumps(payload).encode("utf-8") + b"\n")
                    await writer.drain()
                    break
                if isinstance(event, QueryRequest):
                    result = await service.query_async(event)
                    writer.write(
                        json.dumps(
                            result.to_dict(), separators=(",", ":")
                        ).encode("utf-8")
                        + b"\n"
                    )
                    await writer.drain()
                else:
                    await service.submit(event)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.start_server(handle_connection, host, port)
