"""The long-lived streaming reputation service.

:class:`ReputationService` owns one scenario world (built from a
:class:`~repro.api.ScenarioSpec`) and keeps its reputation state live
while events arrive, instead of running the batch cycle loop:

* mutation events (:class:`~repro.serve.events.RatingEvent`,
  :class:`~repro.serve.events.InteractionEvent`,
  :class:`~repro.serve.events.ChurnEvent`) are applied directly to the
  incremental ledgers — the same dirty-row-versioned structures the
  Ωc/Ωs caches key on, so each watermark's detector pass recomputes only
  what the interval's events touched;
* a :class:`~repro.serve.events.WatermarkEvent` (or the
  ``interval_events`` auto-watermark) drains the interval ledger and runs
  the full SocialTrust detector + damping + inner reputation update;
* :class:`~repro.serve.events.QueryRequest` reads — reputation lookups
  and damping-weight probes — are answered from the live caches in O(1)
  without touching state.

Because every ledger increment is an exact float64 integer step and the
update at a watermark consumes exactly the drained interval, streaming a
recorded scenario event-by-event reproduces the batch run's reputation
vectors **bit-identically** at each watermark (pinned by the replay
equivalence tests in ``tests/serve/``).

The service runs sync (:meth:`ReputationService.apply` /
:meth:`ReputationService.serve_events`) or async: an
``asyncio.Queue``-fed ingestion loop (:meth:`ReputationService.run`)
with backpressure-aware :meth:`ReputationService.submit`, load-shedding
:meth:`ReputationService.submit_nowait`, and future-based
:meth:`ReputationService.query_async`.  Operational state — queue depth,
shed counts, per-kind event counters, per-interval top-rater share (the
rating-flood signal), update duration and query latency histograms —
is published through a :class:`repro.obs.MetricsRegistry`.

Snapshots reuse the chaos checkpoint codec: :meth:`save_snapshot` writes
a ``kind="service"`` checkpoint carrying the simulation state plus the
service's own progress counters, and
:meth:`ReputationService.from_checkpoint` resumes it, mid-stream, to the
exact pre-kill state.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, AsyncIterable, Iterable, Mapping

import numpy as np

from repro.api import ScenarioSpec, build_scenario
from repro.obs import QUERY_LATENCY_BUCKETS, MetricsRegistry, Observability
from repro.obs.export import TelemetrySink
from repro.obs.health import HealthMonitor
from repro.serve.events import (
    ChurnEvent,
    Event,
    InteractionEvent,
    QueryRequest,
    QueryResult,
    RatingEvent,
    WatermarkEvent,
)

__all__ = ["ReputationService", "ServiceError"]

#: Sentinel that tells the ingestion loop to drain out and stop.
_STOP = object()


class ServiceError(RuntimeError):
    """The service cannot make progress (not a malformed-input error)."""


class ReputationService:
    """Event-driven, query-serving wrapper around one scenario world.

    Parameters
    ----------
    spec:
        The scenario to serve.  The world (population, social graph,
        reputation stack, collusion *structure* — not its scripted
        traffic) is built exactly as :func:`repro.api.build_scenario`
        would, so a recorded batch run and a streamed replay share their
        initial state bit-for-bit.
    interval_events:
        Auto-watermark: run the reputation update after this many
        mutation events when the stream carries no explicit
        :class:`~repro.serve.events.WatermarkEvent`.  ``None`` (default)
        means watermarks are driven only by events / explicit calls.
    observability:
        Metrics/tracing bundle; created (tracing off) when omitted.
    queue_maxsize:
        Capacity of the async ingestion queue; :meth:`submit` blocks
        (backpressure) and :meth:`submit_nowait` sheds when full.
    snapshot_path / snapshot_every:
        When both are set, a service checkpoint is written to
        ``snapshot_path`` after every ``snapshot_every``-th watermark.
    telemetry_sink:
        A :class:`repro.obs.TelemetrySink`; when set, a registry snapshot
        is appended to its JSONL time series at each watermark (subject
        to the sink's ``every`` subsampling).
    health:
        A :class:`repro.obs.HealthMonitor`; when set, its SLO rules are
        evaluated against the registry at each watermark and transition
        events flow to ``telemetry_sink`` (if the monitor carries it).
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        *,
        interval_events: int | None = None,
        observability: Observability | None = None,
        queue_maxsize: int = 8192,
        snapshot_path: Any | None = None,
        snapshot_every: int | None = None,
        telemetry_sink: TelemetrySink | None = None,
        health: HealthMonitor | None = None,
    ) -> None:
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(
                f"spec must be a ScenarioSpec, got {type(spec).__name__}"
            )
        if interval_events is not None and interval_events < 1:
            raise ValueError(f"interval_events must be >= 1, got {interval_events}")
        if snapshot_every is not None:
            if snapshot_every < 1:
                raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every}")
            if snapshot_path is None:
                raise ValueError("snapshot_every requires snapshot_path")
        self._spec = spec
        self._obs = observability or Observability(tracing=False)
        self._scenario = build_scenario(spec)
        self._sim = self._scenario.world.simulation
        self._system = self._sim.system
        self._ledger = self._sim.ledger
        self._interactions = self._sim.interactions
        self._profiles = self._sim.profiles
        self._n = self._ledger.n_nodes
        self._interval_events = interval_events
        self._snapshot_path = snapshot_path
        self._snapshot_every = snapshot_every
        self._events_applied = 0
        self._events_this_interval = 0
        self._intervals_run = 0
        self._history: list[np.ndarray] = []
        # Per-rater mutation-event counts within the current interval —
        # the RepRank-style rating-flood signal.  O(1) per event; the
        # top-share gauge is published at each watermark.
        self._interval_rater_events = np.zeros(self._n, dtype=np.int64)
        self._queue: asyncio.Queue | None = None
        self._queue_maxsize = queue_maxsize
        self._running = False
        self._sink = telemetry_sink
        self._health = health
        self._last_watermark_time = time.perf_counter()
        metrics = self._obs.metrics
        self._c_rating = metrics.counter("serve.events.rating")
        self._c_interaction = metrics.counter("serve.events.interaction")
        self._c_churn = metrics.counter("serve.events.churn")
        self._c_watermark = metrics.counter("serve.events.watermark")
        self._c_total = metrics.counter("serve.events.total")
        self._c_queries = metrics.counter("serve.queries")
        self._c_shed = metrics.counter("serve.queue.shed")
        self._g_depth = metrics.gauge("serve.queue.depth")
        self._g_flood = metrics.gauge("serve.flood.top_rater_share")
        self._g_rate = metrics.gauge("serve.interval.events_per_sec")
        self._h_query = metrics.histogram(
            "serve.query.latency", buckets=QUERY_LATENCY_BUCKETS
        )
        self._h_update = metrics.histogram("serve.update.seconds")

    # -- introspection -------------------------------------------------------

    @property
    def spec(self) -> ScenarioSpec:
        return self._spec

    @property
    def observability(self) -> Observability:
        return self._obs

    @property
    def metrics(self) -> MetricsRegistry:
        return self._obs.metrics

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def telemetry_sink(self) -> TelemetrySink | None:
        return self._sink

    @property
    def health(self) -> HealthMonitor | None:
        return self._health

    def health_report(self) -> dict[str, Any] | None:
        """The health monitor's end-of-run report (``None`` when the
        service carries no monitor)."""
        return self._health.report() if self._health is not None else None

    @property
    def events_applied(self) -> int:
        """Mutation events applied since construction/restore."""
        return self._events_applied

    @property
    def intervals_run(self) -> int:
        """Reputation-update watermarks run since construction/restore."""
        return self._intervals_run

    @property
    def cycles_run(self) -> int:
        """Alias of :attr:`intervals_run` (checkpoint-header duck type)."""
        return self._intervals_run

    @property
    def reputations(self) -> np.ndarray:
        """The live reputation vector (read-only view semantics: copy)."""
        return np.array(self._system.reputations, dtype=np.float64, copy=True)

    @property
    def history(self) -> np.ndarray:
        """Post-watermark reputation snapshots, shape ``(intervals, n)``."""
        if not self._history:
            return np.zeros((0, self._n), dtype=np.float64)
        return np.vstack(self._history)

    # -- the synchronous core ------------------------------------------------

    def apply(self, event: Event) -> QueryResult | np.ndarray | None:
        """Apply one event to the live state.

        Returns the :class:`QueryResult` for a query, the post-update
        reputation vector for a watermark, ``None`` otherwise.
        """
        if isinstance(event, RatingEvent):
            self._apply_rating(event)
        elif isinstance(event, InteractionEvent):
            self._apply_interaction(event)
        elif isinstance(event, ChurnEvent):
            self._apply_churn(event)
        elif isinstance(event, WatermarkEvent):
            return self._apply_watermark(event)
        elif isinstance(event, QueryRequest):
            return self.query(event)
        else:
            raise TypeError(f"not a service event: {type(event).__name__}")
        if (
            self._interval_events is not None
            and self._events_this_interval >= self._interval_events
        ):
            return self.run_watermark()
        return None

    def _bump(self, rater: int) -> None:
        self._events_applied += 1
        self._events_this_interval += 1
        self._interval_rater_events[rater] += 1
        self._c_total.inc()

    def _apply_rating(self, event: RatingEvent) -> None:
        # Order matches the scalar simulation loop: rating ledger, then
        # interaction frequency, then (genuine requests only) the
        # behavioural interest counter.
        self._ledger.record_batch(
            event.rater, event.ratee, event.value, event.count
        )
        self._interactions.record(event.rater, event.ratee, float(event.count))
        if event.interest is not None:
            self._profiles.record_request(event.rater, event.interest)
        self._c_rating.inc()
        self._bump(event.rater)

    def _apply_interaction(self, event: InteractionEvent) -> None:
        self._interactions.record(event.source, event.target, event.count)
        self._c_interaction.inc()
        self._bump(event.source)

    def _apply_churn(self, event: ChurnEvent) -> None:
        self._interactions.decay_nodes(
            np.asarray(event.nodes, dtype=np.int64), event.factor
        )
        self._c_churn.inc()
        self._c_total.inc()
        self._events_applied += 1
        self._events_this_interval += 1

    def _apply_watermark(self, event: WatermarkEvent) -> np.ndarray:
        if event.cycle is not None and event.cycle < self._intervals_run:
            raise ServiceError(
                f"watermark cycle {event.cycle} is behind the service "
                f"({self._intervals_run} intervals already run)"
            )
        return self.run_watermark()

    def run_watermark(self) -> np.ndarray:
        """Drain the interval and run the reputation update; returns the
        updated reputation vector."""
        interval = self._ledger.drain()
        start = time.perf_counter()
        with self._obs.tracer.span("serve.watermark"):
            reputations = self._system.update(interval)
        now = time.perf_counter()
        self._h_update.observe(now - start)
        self._intervals_run += 1
        self._c_watermark.inc()
        self._history.append(np.array(reputations, dtype=np.float64, copy=True))
        total = int(self._interval_rater_events.sum())
        self._g_flood.set(
            float(self._interval_rater_events.max()) / total if total else 0.0
        )
        # Wall-clock ingest rate over the interval just closed.  A gauge
        # only — never feeds back into the (bit-exact) numerics.
        elapsed = now - self._last_watermark_time
        self._g_rate.set(self._events_this_interval / elapsed if elapsed > 0 else 0.0)
        self._last_watermark_time = now
        self._interval_rater_events[:] = 0
        self._events_this_interval = 0
        # Telemetry first so the health monitor judges the same snapshot
        # the time series records; transitions land after their snapshot.
        if self._sink is not None:
            self._sink.emit(
                self._obs.metrics,
                interval=self._intervals_run,
                events_applied=self._events_applied,
            )
        if self._health is not None:
            self._health.observe(self._obs.metrics, interval=self._intervals_run)
        if (
            self._snapshot_every is not None
            and self._intervals_run % self._snapshot_every == 0
        ):
            self.save_snapshot()
        return np.array(reputations, dtype=np.float64, copy=True)

    def query(self, request: QueryRequest) -> QueryResult:
        """Answer one read probe from the live caches."""
        start = time.perf_counter()
        result = self._answer(request)
        self._h_query.observe(time.perf_counter() - start)
        self._c_queries.inc()
        return result

    def _pair_weight(self, rater: int, ratee: int) -> float:
        if not (0 <= rater < self._n and 0 <= ratee < self._n):
            raise ValueError(f"pair ({rater}, {ratee}) out of range [0, {self._n})")
        pair_weight = getattr(self._system, "pair_weight", None)
        if pair_weight is None:
            # Base systems never damp: every pair carries full weight.
            return 1.0
        return pair_weight(rater, ratee)

    def serve_events(self, events: Iterable[Event]) -> int:
        """Apply a whole iterable of events synchronously; returns the
        number of events consumed (queries included)."""
        consumed = 0
        for event in events:
            self.apply(event)
            consumed += 1
        return consumed

    # -- checkpoint / restore ------------------------------------------------

    def checkpoint(self) -> dict:
        """Full mutable service state (simulation state + progress)."""
        return {
            "simulation": self._sim.checkpoint(),
            "events_applied": self._events_applied,
            "events_this_interval": self._events_this_interval,
            "intervals_run": self._intervals_run,
            "history": [h.copy() for h in self._history],
            "interval_rater_events": self._interval_rater_events.copy(),
        }

    def restore(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`checkpoint` payload (same spec required)."""
        self._sim.resume(dict(state["simulation"]))
        self._events_applied = int(state["events_applied"])
        self._events_this_interval = int(state["events_this_interval"])
        self._intervals_run = int(state["intervals_run"])
        self._history = [
            np.asarray(h, dtype=np.float64).copy() for h in state["history"]
        ]
        self._interval_rater_events = np.asarray(
            state["interval_rater_events"], dtype=np.int64
        ).copy()

    def save_snapshot(self, path: Any | None = None):
        """Write a ``kind="service"`` checkpoint; returns its path."""
        # Local import: keep repro.serve importable without scipy-heavy
        # chaos modules until a snapshot is actually taken.
        from repro.chaos.checkpoint import save_checkpoint

        target = path if path is not None else self._snapshot_path
        if target is None:
            raise ValueError("no snapshot path configured or given")
        return save_checkpoint(
            self,
            target,
            build=self._spec.build_kwargs(),
            seed=self._spec.seed,
            run_index=self._spec.run_index,
            kind="service",
        )

    @classmethod
    def from_checkpoint(cls, path: Any, **kwargs: Any) -> "ReputationService":
        """Resume a service from a ``kind="service"`` checkpoint file.

        ``kwargs`` are forwarded to the constructor (``interval_events``,
        ``snapshot_path``, ...); the scenario spec always comes from the
        checkpoint header.
        """
        from repro.chaos.checkpoint import load_checkpoint

        header, state = load_checkpoint(path)
        kind = header.get("kind", "simulation")
        if kind != "service":
            raise ValueError(
                f"{path}: checkpoint kind {kind!r} is not a service "
                f"checkpoint; use repro.chaos.checkpoint.resume_scenario"
            )
        spec = ScenarioSpec.from_build(
            header["build"],
            seed=int(header["seed"]),
            run_index=int(header["run_index"]),
        )
        service = cls(spec, **kwargs)
        service.restore(state)
        return service

    # -- operational stats ---------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Operational snapshot: progress counters plus every
        ``serve.*`` instrument (queue depth, shed count, flood share,
        query-latency and update-duration percentiles)."""
        metrics = {
            name: value
            for name, value in self._obs.metrics.as_dict().items()
            if name.startswith("serve.")
        }
        return {
            "spec": self._spec.to_dict(),
            "n_nodes": self._n,
            "events_applied": self._events_applied,
            "intervals_run": self._intervals_run,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "metrics": metrics,
        }

    # -- the asyncio ingestion loop ------------------------------------------

    def _ensure_queue(self) -> asyncio.Queue:
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self._queue_maxsize)
        return self._queue

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    async def submit(self, event: Event) -> None:
        """Enqueue one event, awaiting (backpressure) while the queue is
        full."""
        queue = self._ensure_queue()
        await queue.put((event, None, 0.0))
        self._g_depth.set(queue.qsize())

    def submit_nowait(self, event: Event) -> bool:
        """Enqueue without waiting; returns False (and counts a shed)
        when the queue is full."""
        queue = self._ensure_queue()
        try:
            queue.put_nowait((event, None, 0.0))
        except asyncio.QueueFull:
            self._c_shed.inc()
            return False
        self._g_depth.set(queue.qsize())
        return True

    async def query_async(self, request: QueryRequest) -> QueryResult:
        """Enqueue a query and await its answer (latency measured from
        enqueue to answer, which is what a remote caller experiences)."""
        queue = self._ensure_queue()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        await queue.put((request, future, time.perf_counter()))
        self._g_depth.set(queue.qsize())
        return await future

    async def stop(self) -> None:
        """Ask the ingestion loop to drain the queue and exit."""
        await self._ensure_queue().put((_STOP, None, 0.0))

    async def run(self) -> int:
        """Consume the ingestion queue until :meth:`stop`; returns the
        number of events processed.

        Control is yielded back to the event loop between events, so
        producers (socket reader, :meth:`submit` callers) interleave with
        ingestion on one loop.
        """
        if self._running:
            raise ServiceError("service ingestion loop is already running")
        queue = self._ensure_queue()
        self._running = True
        processed = 0
        try:
            while True:
                event, future, enqueued = await queue.get()
                self._g_depth.set(queue.qsize())
                if event is _STOP:
                    break
                try:
                    if isinstance(event, QueryRequest):
                        # Measure enqueue→answer so queue wait shows up in
                        # the latency histogram under load.
                        if future is not None:
                            start = enqueued
                            result = self._answer(event)
                            self._h_query.observe(time.perf_counter() - start)
                            self._c_queries.inc()
                            future.set_result(result)
                        else:
                            self.query(event)
                    else:
                        self.apply(event)
                    processed += 1
                except Exception as exc:
                    if future is not None and not future.done():
                        future.set_exception(exc)
                    else:
                        raise
        finally:
            self._running = False
        return processed

    def _answer(self, request: QueryRequest) -> QueryResult:
        """Query evaluation without self-timing (the async loop times
        enqueue→answer itself)."""
        if request.rater is not None:
            value: float | list[float] = self._pair_weight(
                request.rater, request.ratee
            )
        elif request.node is not None:
            if not 0 <= request.node < self._n:
                raise ValueError(f"node {request.node} out of range [0, {self._n})")
            value = float(self._system.reputations[request.node])
        else:
            value = [float(x) for x in self._system.reputations]
        return QueryResult(
            request=request,
            value=value,
            intervals_run=self._intervals_run,
            events_applied=self._events_applied,
        )

    async def run_stream(
        self, events: Iterable[Event] | AsyncIterable[Event]
    ) -> int:
        """Feed ``events`` through the queue while the ingestion loop
        runs, then stop; returns the number of events processed."""
        consumer = asyncio.ensure_future(self.run())

        async def produce() -> None:
            if hasattr(events, "__aiter__"):
                async for event in events:  # type: ignore[union-attr]
                    await self.submit(event)
            else:
                for event in events:  # type: ignore[union-attr]
                    await self.submit(event)
            await self.stop()

        producer = asyncio.ensure_future(produce())
        try:
            processed = await consumer
        finally:
            if not producer.done():
                producer.cancel()
        await asyncio.gather(producer, return_exceptions=True)
        return processed
