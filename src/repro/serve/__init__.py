"""Streaming reputation service: events in, live reputations out.

``repro.serve`` turns the batch reproduction into a long-lived service:
a :class:`ReputationService` holds one scenario's reputation state live,
applies typed events (:class:`RatingEvent`, :class:`InteractionEvent`,
:class:`ChurnEvent`) through the incremental ledgers, runs the detector
+ damping + inner update at interval watermarks, and answers
:class:`QueryRequest` reads from the live caches — with backpressure,
load-shedding and latency metrics in the :mod:`repro.obs` registry, and
mid-stream checkpoint/restore through the chaos codec.

The replay toolchain (:func:`record_scenario_events`,
:func:`replay_events`) pins the core guarantee: streaming a recorded
scenario event-by-event reproduces the batch run's reputation vectors
bit-identically at every watermark.
"""

from repro.serve.events import (
    EVENT_SCHEMA_VERSION,
    ChurnEvent,
    Event,
    EventDecodeError,
    InteractionEvent,
    QueryRequest,
    QueryResult,
    RatingEvent,
    WatermarkEvent,
    decode_event,
    encode_event,
    read_event_stream,
    write_event_stream,
)
from repro.serve.recorder import RecordedStream, record_scenario_events
from repro.serve.replay import (
    ReplayReport,
    compare_histories,
    replay_events,
    replay_recorded,
    replay_report,
)
from repro.serve.service import ReputationService, ServiceError

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "ChurnEvent",
    "Event",
    "EventDecodeError",
    "InteractionEvent",
    "QueryRequest",
    "QueryResult",
    "RatingEvent",
    "RecordedStream",
    "ReplayReport",
    "ReputationService",
    "ServiceError",
    "WatermarkEvent",
    "compare_histories",
    "decode_event",
    "encode_event",
    "read_event_stream",
    "record_scenario_events",
    "replay_events",
    "replay_recorded",
    "replay_report",
    "write_event_stream",
]
