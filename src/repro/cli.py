"""Command-line interface.

``python -m repro.cli <command>`` (or the ``repro`` console script):

* ``list``        — show the experiment registry;
* ``run <ids>``   — regenerate tables/figures, printing the series;
* ``simulate``    — run one ad-hoc scenario through :mod:`repro.api`
  (``--trace FILE`` enables observability and exports the JSONL trace);
* ``obs``         — validate an exported trace and print the
  phases/metrics/audit report;
* ``trace``       — generate a synthetic Overstock trace to a JSON file;
* ``analyze``     — run the Section-3 analyses over a saved trace file.

``list``/``run``/``simulate`` all go through the :mod:`repro.api` facade,
so the CLI exercises the same audited path as the example scripts.
Wall-clock timings printed by ``run``/``simulate`` use
:func:`time.perf_counter` — the same monotonic clock as the tracer.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

__all__ = ["main", "build_parser"]

#: Experiments that run on the trace substrate and take no run/cycle knobs.
TRACE_EXPERIMENTS = frozenset({"fig1", "fig2", "fig3", "fig4"})


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SocialTrust reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment registry")

    run = sub.add_parser("run", help="regenerate tables/figures")
    run.add_argument("experiments", nargs="+", help="experiment ids, or 'all'")
    run.add_argument("--runs", type=int, default=2)
    run.add_argument("--cycles", type=int, default=25)
    run.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser(
        "simulate", help="run one ad-hoc scenario via the repro.api facade"
    )
    sim.add_argument("--nodes", type=int, default=200)
    sim.add_argument("--pretrusted", type=int, default=9)
    sim.add_argument("--colluders", type=int, default=30)
    sim.add_argument(
        "--system",
        default="EigenTrust+SocialTrust",
        help="reputation stack, e.g. EigenTrust or eBay+SocialTrust",
    )
    sim.add_argument(
        "--collusion", default="pcm", choices=["none", "pcm", "mcm", "mmm"]
    )
    sim.add_argument(
        "--colluder-b",
        type=float,
        default=0.2,
        help="colluders' probability of good behaviour B",
    )
    sim.add_argument("--cycles", type=int, default=25)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--engine",
        default="batched",
        choices=["batched", "scalar"],
        help="query-cycle engine (scalar is the reference implementation)",
    )
    sim.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="enable observability, export the JSONL trace to FILE and "
        "print the phases/metrics/audit report",
    )

    obs = sub.add_parser(
        "obs", help="validate and report on an exported observability trace"
    )
    obs.add_argument("input", type=Path, help="JSONL trace path")

    trace = sub.add_parser("trace", help="generate a synthetic trace file")
    trace.add_argument("output", type=Path, help="output JSON path")
    trace.add_argument("--users", type=int, default=2500)
    trace.add_argument("--months", type=int, default=24)
    trace.add_argument("--seed", type=int, default=0)

    analyze = sub.add_parser("analyze", help="run Section-3 analyses on a trace file")
    analyze.add_argument("input", type=Path, help="trace JSON path")
    return parser


def _cmd_list() -> int:
    from repro.api import list_experiments

    for name in list_experiments():
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import list_experiments, run_experiment

    wanted = (
        list_experiments() if args.experiments == ["all"] else args.experiments
    )
    for experiment_id in wanted:
        start = perf_counter()
        if experiment_id in TRACE_EXPERIMENTS:
            result = run_experiment(experiment_id, seed=args.seed)
        else:
            result = run_experiment(
                experiment_id,
                n_runs=args.runs,
                simulation_cycles=args.cycles,
                seed=args.seed,
            )
        print(result.describe())
        print(f"  [{perf_counter() - start:.1f}s]\n")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.api import run_scenario

    start = perf_counter()
    result = run_scenario(
        n_nodes=args.nodes,
        n_pretrusted=args.pretrusted,
        n_colluders=args.colluders,
        system=args.system,
        collusion=args.collusion,
        colluder_b=args.colluder_b,
        simulation_cycles=args.cycles,
        engine=args.engine,
        seed=args.seed,
        observability=args.trace is not None,
    )
    print(result.summary())
    print(f"  [{perf_counter() - start:.1f}s]")
    if args.trace is not None:
        obs = result.observability
        assert obs is not None
        n_lines = obs.export_jsonl(args.trace)
        print(f"wrote {args.trace}: {n_lines} events")
        print()
        print(obs.report(title=f"observability report: {args.trace}"))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import render_file_report, validate_jsonl

    counts = validate_jsonl(args.input)
    total = sum(counts.values())
    by_kind = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
    print(f"validated {total} events ({by_kind or 'empty trace'})")
    print()
    print(render_file_report(args.input))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import MarketplaceConfig, generate_trace
    from repro.trace.io import save_trace

    config = MarketplaceConfig(n_users=args.users, n_months=args.months)
    trace = generate_trace(config, seed=args.seed)
    save_trace(trace, args.output)
    print(
        f"wrote {args.output}: {trace.n_users} users, "
        f"{trace.n_transactions} transactions"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.trace import (
        business_network_vs_reputation,
        category_rank_distribution,
        interest_similarity_cdf,
        personal_network_vs_reputation,
        rating_stats_by_distance,
        transactions_vs_reputation,
    )
    from repro.trace.io import load_trace

    trace = load_trace(args.input)
    print(f"{trace.n_users} users, {trace.n_transactions} transactions")
    print(
        "C(reputation, business size)  ="
        f" {business_network_vs_reputation(trace).correlation:.3f}"
    )
    print(
        "C(reputation, transactions)   ="
        f" {transactions_vs_reputation(trace).correlation:.3f}"
    )
    print(
        "C(reputation, personal size)  ="
        f" {personal_network_vs_reputation(trace).correlation:.3f}"
    )
    stats = rating_stats_by_distance(trace)
    print("mean rating by hop:  ", np.round(stats.mean_rating, 2).tolist())
    print("ratings/pair by hop: ", np.round(stats.mean_ratings_per_pair, 2).tolist())
    cdf = category_rank_distribution(trace)
    print(f"top-3 category share: {cdf[2]:.2f}")
    edges, sim = interest_similarity_cdf(trace)
    print("similarity CDF:", {round(float(e), 1): round(float(s), 2) for e, s in zip(edges, sim)})
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
