"""Command-line interface.

``python -m repro.cli <command>`` (or the ``repro`` console script):

* ``list``        — show the experiment registry;
* ``run <ids>``   — regenerate tables/figures, printing the series;
* ``simulate``    — run one ad-hoc scenario through :mod:`repro.api`
  (``--trace FILE`` enables observability and exports the JSONL trace;
  ``--partition``/``--byzantine``/``--managers`` script chaos windows;
  ``--checkpoint FILE --checkpoint-every N`` writes crash-safe
  checkpoints and ``--resume FILE`` continues one bit-identically);
* ``serve``       — the streaming reputation service of :mod:`repro.serve`:
  ``--record`` captures a scenario's batch run as a replayable event
  stream, ``--events`` streams events (file or stdin) through a live
  service, ``--resume`` continues from a mid-stream service checkpoint,
  and ``--listen`` exposes the line-JSON socket endpoint (a
  ``{"query": "metrics"}`` line answers with Prometheus exposition);
  ``--metrics FILE`` appends a JSONL telemetry snapshot per watermark
  and ``--health-report FILE`` evaluates the default SLOs live;
* ``obs``         — observability tooling: ``obs report`` validates an
  exported trace and prints the phases/metrics/audit report (the bare
  ``obs FILE`` spelling still works), ``obs health`` replays SLO rules
  over a recorded telemetry series, ``obs top`` prints the per-phase
  self/cumulative hot-path table, and ``obs export`` renders the last
  metrics snapshot as Prometheus text exposition;
* ``trace``       — generate a synthetic Overstock trace to a JSON file;
* ``analyze``     — run the Section-3 analyses over a saved trace file;
* ``qa``          — the correctness tooling of :mod:`repro.qa`:
  ``qa record`` / ``qa check`` manage the golden regression traces,
  ``qa fuzz`` runs the stateful invariant fuzzer, ``qa diff`` runs
  the backend × engine differential sweep, and ``qa reconverge`` runs
  the chaos reconvergence harness.

``list``/``run``/``simulate`` all go through the :mod:`repro.api` facade,
so the CLI exercises the same audited path as the example scripts.
Wall-clock timings printed by ``run``/``simulate`` use
:func:`time.perf_counter` — the same monotonic clock as the tracer.

Exit codes are contractual so scripts and CI can branch on *why* a
command failed:

* ``0`` — success;
* ``1`` — the command ran, but its check failed (golden divergence,
  fuzz invariant violation, differential mismatch, reconvergence miss);
* ``2`` — configuration error: bad flags or flag values, missing or
  malformed input files — the run never started (argparse uses the
  same code for unparseable command lines);
* ``3`` — runtime error: the run started and then failed (I/O mid-run,
  malformed event mid-stream, unexpected internal errors).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_FAILURE",
    "EXIT_CONFIG",
    "EXIT_RUNTIME",
]

#: The command succeeded.
EXIT_OK = 0
#: The command ran to completion but its check/assertion failed.
EXIT_FAILURE = 1
#: Bad configuration — flags, values, or input files; nothing ran.
EXIT_CONFIG = 2
#: The run started and then failed.
EXIT_RUNTIME = 3

#: Experiments that run on the trace substrate and take no run/cycle knobs.
TRACE_EXPERIMENTS = frozenset({"fig1", "fig2", "fig3", "fig4"})


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SocialTrust reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment registry")

    run = sub.add_parser("run", help="regenerate tables/figures")
    run.add_argument("experiments", nargs="+", help="experiment ids, or 'all'")
    run.add_argument("--runs", type=int, default=2)
    run.add_argument("--cycles", type=int, default=25)
    run.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser(
        "simulate", help="run one ad-hoc scenario via the repro.api facade"
    )
    sim.add_argument("--nodes", type=int, default=200)
    sim.add_argument("--pretrusted", type=int, default=9)
    sim.add_argument("--colluders", type=int, default=30)
    sim.add_argument(
        "--system",
        default="EigenTrust+SocialTrust",
        help="reputation stack, e.g. EigenTrust or eBay+SocialTrust",
    )
    sim.add_argument(
        "--collusion", default="pcm", choices=["none", "pcm", "mcm", "mmm"]
    )
    sim.add_argument(
        "--colluder-b",
        type=float,
        default=0.2,
        help="colluders' probability of good behaviour B",
    )
    sim.add_argument("--cycles", type=int, default=25)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--engine",
        default="batched",
        choices=["batched", "scalar"],
        help="query-cycle engine (scalar is the reference implementation)",
    )
    sim.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="enable observability, export the JSONL trace to FILE and "
        "print the phases/metrics/audit report",
    )
    sim.add_argument(
        "--managers",
        type=int,
        default=0,
        help="resource managers for distributed SocialTrust (0 = centralised)",
    )
    sim.add_argument(
        "--partition",
        action="append",
        default=None,
        metavar="START:HEAL",
        help="scripted network-partition window in simulation cycles "
        "(repeatable)",
    )
    sim.add_argument(
        "--byzantine",
        action="append",
        default=None,
        metavar="MGR:START[:HEAL]",
        help="scripted Byzantine window for manager MGR (repeatable; "
        "requires --managers)",
    )
    sim.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a crash-safe checkpoint to FILE (see --checkpoint-every)",
    )
    sim.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N simulation cycles (requires --checkpoint)",
    )
    sim.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="FILE",
        help="resume from a checkpoint file; the scenario comes from its "
        "header, so other scenario flags are ignored",
    )

    serve = sub.add_parser(
        "serve", help="streaming reputation service (record / stream / resume)"
    )
    serve.add_argument("--nodes", type=int, default=100)
    serve.add_argument("--pretrusted", type=int, default=5)
    serve.add_argument("--colluders", type=int, default=15)
    serve.add_argument(
        "--system",
        default="EigenTrust+SocialTrust",
        help="reputation stack, e.g. EigenTrust or eBay+SocialTrust",
    )
    serve.add_argument(
        "--collusion", default="pcm", choices=["none", "pcm", "mcm", "mmm"]
    )
    serve.add_argument("--colluder-b", type=float, default=0.2)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--cycles",
        type=int,
        default=6,
        help="simulation cycles to capture with --record",
    )
    serve.add_argument(
        "--record",
        type=Path,
        default=None,
        metavar="FILE",
        help="record the scenario's batch run as a replayable event stream",
    )
    serve.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help="stream events from FILE ('-' = stdin) through a live service; "
        "a stream header's scenario spec overrides the scenario flags",
    )
    serve.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="FILE",
        help="resume a service from a mid-stream checkpoint, then stream "
        "--events if given",
    )
    serve.add_argument(
        "--listen",
        default=None,
        metavar="HOST:PORT",
        help="serve the line-JSON socket endpoint until interrupted",
    )
    serve.add_argument(
        "--interval-events",
        type=int,
        default=None,
        metavar="N",
        help="auto-watermark: run the reputation update every N mutation "
        "events (streams with explicit watermarks don't need this)",
    )
    serve.add_argument(
        "--snapshot",
        type=Path,
        default=None,
        metavar="FILE",
        help="service checkpoint target (see --snapshot-every)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint every N watermarks (requires --snapshot)",
    )
    serve.add_argument(
        "--verify-snapshot",
        action="store_true",
        help="after streaming: write a final snapshot, reload it into a "
        "fresh service, and require bit-identical reputations",
    )
    serve.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the service stats (throughput, latency percentiles, "
        "backpressure counters) as JSON to FILE",
    )
    serve.add_argument(
        "--metrics",
        type=Path,
        default=None,
        metavar="FILE",
        help="append a JSONL registry snapshot to FILE at each watermark "
        "(the telemetry time series; health transitions share the file)",
    )
    serve.add_argument(
        "--metrics-every",
        type=int,
        default=1,
        metavar="N",
        help="subsample the telemetry series to every N-th watermark",
    )
    serve.add_argument(
        "--health-report",
        type=Path,
        default=None,
        metavar="FILE",
        help="evaluate the default service SLOs live and write the final "
        "health report (state, rules, transitions) as JSON to FILE",
    )

    obs = sub.add_parser(
        "obs", help="trace reports, SLO health evaluation, hot-path profile"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_report = obs_sub.add_parser(
        "report", help="validate a JSONL trace and print the full report"
    )
    obs_report.add_argument("input", type=Path, help="JSONL trace path")

    obs_health = obs_sub.add_parser(
        "health", help="evaluate SLO rules over a recorded telemetry series"
    )
    obs_health.add_argument("input", type=Path, help="telemetry JSONL path")
    obs_health.add_argument(
        "--query-p99", type=float, default=0.005, metavar="SECONDS",
        help="query latency p99 ceiling",
    )
    obs_health.add_argument(
        "--min-events-per-sec", type=float, default=0.0, metavar="RATE",
        help="sustained ingest floor (0 disables the rule)",
    )
    obs_health.add_argument(
        "--queue-depth", type=float, default=6144, metavar="N",
        help="ingestion queue depth ceiling",
    )
    obs_health.add_argument(
        "--shed-rate", type=float, default=0.01, metavar="FRACTION",
        help="shed events per mutation event ceiling (critical)",
    )
    obs_health.add_argument(
        "--flood-share", type=float, default=0.5, metavar="FRACTION",
        help="per-interval top-rater share ceiling",
    )
    obs_health.add_argument(
        "--report", type=Path, default=None, metavar="FILE",
        help="also write the final health report as JSON to FILE",
    )
    obs_health.add_argument(
        "--fail-on",
        default="never",
        choices=["never", "degraded", "critical"],
        help="exit non-zero when the final state is at least this bad",
    )

    obs_top = obs_sub.add_parser(
        "top", help="per-phase self/cumulative hot-path table from a trace"
    )
    obs_top.add_argument("input", type=Path, help="JSONL trace path")
    obs_top.add_argument(
        "-n", "--top", type=int, default=10, help="rows to show"
    )

    obs_export = obs_sub.add_parser(
        "export",
        help="render the last metrics snapshot of a trace/telemetry file "
        "as Prometheus text exposition",
    )
    obs_export.add_argument("input", type=Path, help="JSONL path")
    obs_export.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="write the exposition text to FILE instead of stdout",
    )

    trace = sub.add_parser("trace", help="generate a synthetic trace file")
    trace.add_argument("output", type=Path, help="output JSON path")
    trace.add_argument("--users", type=int, default=2500)
    trace.add_argument("--months", type=int, default=24)
    trace.add_argument("--seed", type=int, default=0)

    analyze = sub.add_parser("analyze", help="run Section-3 analyses on a trace file")
    analyze.add_argument("input", type=Path, help="trace JSON path")

    qa = sub.add_parser("qa", help="golden traces, invariant fuzzing, differential runs")
    qa_sub = qa.add_subparsers(dest="qa_command", required=True)

    record = qa_sub.add_parser("record", help="record golden scenario traces")
    record.add_argument(
        "--golden-dir", type=Path, default=None, help="golden directory (default: tests/golden)"
    )
    record.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="record only this scenario (repeatable; default: all)",
    )
    record.add_argument(
        "--update",
        action="store_true",
        help="overwrite existing goldens (the numbers changed on purpose)",
    )

    check = qa_sub.add_parser("check", help="replay and diff the golden traces")
    check.add_argument("--golden-dir", type=Path, default=None)
    check.add_argument("--scenario", action="append", default=None, metavar="NAME")
    check.add_argument(
        "--mode",
        default="strict",
        choices=["strict", "tolerance"],
        help="strict = bit-identical; tolerance = isclose(rtol, atol)",
    )
    check.add_argument("--rtol", type=float, default=1e-9)
    check.add_argument("--atol", type=float, default=1e-12)
    check.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the divergence report to FILE (CI artifact)",
    )

    fuzz = qa_sub.add_parser("fuzz", help="run the stateful invariant fuzzer")
    fuzz.add_argument("--steps", type=int, default=200)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--harness", default="both", choices=["engine", "manager", "both"]
    )

    diff = qa_sub.add_parser(
        "diff", help="differential sweep: every backend x engine mode"
    )
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument("--cycles", type=int, default=4)
    diff.add_argument(
        "--collusion", default="pcm", choices=["none", "pcm", "mcm", "mmm"]
    )
    diff.add_argument(
        "--sparse",
        action="store_true",
        help="also compare the dense and sparse coefficient backends "
        "(tolerance mode) across every cell",
    )

    reconv = qa_sub.add_parser(
        "reconverge",
        help="chaos reconvergence: inject + heal, assert recovery per backend",
    )
    reconv.add_argument("--seed", type=int, default=0)
    reconv.add_argument("--cycles", type=int, default=12)
    reconv.add_argument("--tolerance", type=float, default=0.02)
    reconv.add_argument(
        "--budget",
        type=int,
        default=5,
        help="max cycles after the heal for the error to settle below tolerance",
    )
    reconv.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    return parser


def _cmd_list() -> int:
    from repro.api import list_experiments

    for name in list_experiments():
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import list_experiments, run_experiment

    wanted = (
        list_experiments() if args.experiments == ["all"] else args.experiments
    )
    for experiment_id in wanted:
        start = perf_counter()
        if experiment_id in TRACE_EXPERIMENTS:
            result = run_experiment(experiment_id, seed=args.seed)
        else:
            result = run_experiment(
                experiment_id,
                n_runs=args.runs,
                simulation_cycles=args.cycles,
                seed=args.seed,
            )
        print(result.describe())
        print(f"  [{perf_counter() - start:.1f}s]\n")
    return 0


def _parse_partition(text: str) -> dict:
    parts = text.split(":")
    try:
        if len(parts) != 2:
            raise ValueError
        return {"start_cycle": int(parts[0]), "heal_cycle": int(parts[1])}
    except ValueError:
        raise ValueError(
            f"--partition expects integer START:HEAL, got {text!r}"
        ) from None


def _parse_byzantine(text: str) -> dict:
    parts = text.split(":")
    try:
        if len(parts) not in (2, 3):
            raise ValueError
        return {
            "manager_id": int(parts[0]),
            "start_cycle": int(parts[1]),
            "heal_cycle": int(parts[2]) if len(parts) == 3 else None,
        }
    except ValueError:
        raise ValueError(
            f"--byzantine expects integer MGR:START[:HEAL], got {text!r}"
        ) from None


def _drive_with_checkpoints(
    simulation,
    total_cycles: int,
    args: argparse.Namespace,
    build: dict,
    seed: int,
) -> None:
    """Run ``simulation`` up to ``total_cycles``, checkpointing as asked."""
    from repro.chaos import save_checkpoint

    every = args.checkpoint_every
    target = args.checkpoint if args.checkpoint is not None else args.resume
    while simulation.cycles_run < total_cycles:
        simulation.run_simulation_cycle()
        if every and target is not None and simulation.cycles_run % every == 0:
            save_checkpoint(simulation, target, build=build, seed=seed)
            print(f"checkpoint @ cycle {simulation.cycles_run}: {target}")


def _scenario_result(scenario):
    from repro.api import ScenarioResult

    metrics = scenario.world.simulation.metrics
    return ScenarioResult(
        config=scenario.config,
        seed=scenario.seed,
        run_index=scenario.run_index,
        world=scenario.world,
        metrics=metrics,
        reputations=metrics.final_reputations(),
        history=metrics.reputation_history(),
        observability=scenario.world.observability,
    )


def _cmd_simulate_resume(args: argparse.Namespace) -> int:
    from repro.chaos import load_checkpoint, resume_scenario

    try:
        header, _ = load_checkpoint(args.resume)
        scenario = resume_scenario(args.resume)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot resume {args.resume}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    simulation = scenario.world.simulation
    total = int(header["build"].get("simulation_cycles", args.cycles))
    print(f"resumed {args.resume} at cycle {simulation.cycles_run}/{total}")
    start = perf_counter()
    _drive_with_checkpoints(
        simulation, total, args, header["build"], header["seed"]
    )
    print(_scenario_result(scenario).summary())
    print(f"  [{perf_counter() - start:.1f}s]")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.api import run_scenario

    if args.checkpoint_every and args.checkpoint is None and args.resume is None:
        print("error: --checkpoint-every requires --checkpoint", file=sys.stderr)
        return EXIT_CONFIG
    if args.resume is not None:
        return _cmd_simulate_resume(args)
    if args.trace is not None:
        # Pre-flight the export path: a multi-minute simulation that dies
        # at the final write is the worst possible failure mode.
        parent = args.trace.resolve().parent
        if not parent.is_dir():
            print(f"error: trace directory does not exist: {parent}", file=sys.stderr)
            return EXIT_CONFIG
        if not os.access(parent, os.W_OK):
            print(f"error: trace directory is not writable: {parent}", file=sys.stderr)
            return EXIT_CONFIG
    chaos = None
    if args.partition or args.byzantine:
        try:
            chaos = {
                "partitions": [_parse_partition(p) for p in args.partition or ()],
                "byzantines": [_parse_byzantine(b) for b in args.byzantine or ()],
            }
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
    start = perf_counter()
    if chaos is not None or args.managers or args.checkpoint is not None:
        # Chaos / checkpoint path: drive the cycles by hand so the run
        # can be checkpointed (and later resumed) at cycle boundaries.
        from repro.api import build_scenario

        build = dict(
            n_nodes=args.nodes,
            n_pretrusted=args.pretrusted,
            n_colluders=args.colluders,
            system=args.system,
            collusion=args.collusion,
            colluder_b=args.colluder_b,
            simulation_cycles=args.cycles,
            engine=args.engine,
            n_managers=args.managers,
        )
        if chaos is not None:
            build["chaos"] = chaos
        try:
            scenario = build_scenario(
                seed=args.seed,
                observability=args.trace is not None,
                **build,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        _drive_with_checkpoints(
            scenario.world.simulation, args.cycles, args, build, args.seed
        )
        result = _scenario_result(scenario)
    else:
        result = run_scenario(
            n_nodes=args.nodes,
            n_pretrusted=args.pretrusted,
            n_colluders=args.colluders,
            system=args.system,
            collusion=args.collusion,
            colluder_b=args.colluder_b,
            simulation_cycles=args.cycles,
            engine=args.engine,
            seed=args.seed,
            observability=args.trace is not None,
        )
    print(result.summary())
    print(f"  [{perf_counter() - start:.1f}s]")
    if args.trace is not None:
        obs = result.observability
        assert obs is not None
        n_lines = obs.export_jsonl(args.trace)
        print(f"wrote {args.trace}: {n_lines} events")
        print()
        print(obs.report(title=f"observability report: {args.trace}"))
    return 0


def _serve_spec_from_args(args: argparse.Namespace):
    from repro.api import ScenarioSpec

    return ScenarioSpec.from_kwargs(
        system=args.system,
        collusion=args.collusion,
        seed=args.seed,
        n_nodes=args.nodes,
        n_pretrusted=args.pretrusted,
        n_colluders=args.colluders,
        colluder_b=args.colluder_b,
        simulation_cycles=args.cycles,
    )


def _serve_summary(service, elapsed: float, applied: int) -> dict:
    """Throughput/latency digest printed and written by ``serve``.

    ``applied`` is the number of mutation events applied during *this*
    run (a resumed service's restored totals must not inflate ev/s).
    """
    stats = service.stats()
    latency = stats["metrics"].get("serve.query.latency", {})
    stats["elapsed_seconds"] = elapsed
    stats["events_per_second"] = applied / elapsed if elapsed > 0 else 0.0
    stats["query_p50_seconds"] = latency.get("p50", 0.0)
    stats["query_p99_seconds"] = latency.get("p99", 0.0)
    return stats


def _serve_telemetry_finish(args: argparse.Namespace, service, telemetry_sink) -> None:
    """Flush the telemetry sink and write the final health report."""
    import json

    if telemetry_sink is not None:
        telemetry_sink.close()
        print(
            f"telemetry: {telemetry_sink.path} "
            f"({telemetry_sink.n_written} lines)"
        )
    if args.health_report is not None and service.health is not None:
        args.health_report.write_text(
            json.dumps(service.health_report(), indent=2) + "\n"
        )
        print(f"wrote {args.health_report} (health: {service.health.state})")


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.api import ScenarioSpec
    from repro.serve import (
        EventDecodeError,
        ReputationService,
        read_event_stream,
        record_scenario_events,
        write_event_stream,
    )
    from repro.serve.driver import drive_lines

    modes = [
        name
        for name, value in (
            ("--record", args.record),
            ("--events", args.events),
            ("--resume", args.resume),
            ("--listen", args.listen),
        )
        if value is not None
    ]
    if not modes:
        print(
            "error: serve needs a mode: --record, --events, --resume or --listen",
            file=sys.stderr,
        )
        return EXIT_CONFIG
    if args.record is not None and len(modes) > 1:
        print(
            f"error: --record cannot be combined with {modes[1]}",
            file=sys.stderr,
        )
        return EXIT_CONFIG
    if args.snapshot_every is not None and args.snapshot is None:
        print("error: --snapshot-every requires --snapshot", file=sys.stderr)
        return EXIT_CONFIG
    if args.verify_snapshot and args.snapshot is None:
        print("error: --verify-snapshot requires --snapshot", file=sys.stderr)
        return EXIT_CONFIG
    if args.metrics_every < 1:
        print("error: --metrics-every must be >= 1", file=sys.stderr)
        return EXIT_CONFIG
    if args.metrics_every != 1 and args.metrics is None:
        print("error: --metrics-every requires --metrics", file=sys.stderr)
        return EXIT_CONFIG

    # -- record: batch run → event stream file -------------------------------
    if args.record is not None:
        try:
            spec = _serve_spec_from_args(args)
        except (ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        start = perf_counter()
        recorded = record_scenario_events(spec, args.cycles)
        n = write_event_stream(args.record, recorded.events, spec=recorded.spec)
        print(
            f"wrote {args.record}: {n} events over {args.cycles} intervals "
            f"(n={args.nodes}) [{perf_counter() - start:.1f}s]"
        )
        return EXIT_OK

    # -- build or resume the service -----------------------------------------
    telemetry_sink = None
    if args.metrics is not None:
        from repro.obs import TelemetrySink

        telemetry_sink = TelemetrySink(args.metrics, every=args.metrics_every)
    health = None
    if args.health_report is not None or telemetry_sink is not None:
        from repro.obs import HealthMonitor, default_service_rules

        health = HealthMonitor(default_service_rules(), sink=telemetry_sink)
    service_kwargs = dict(
        interval_events=args.interval_events,
        snapshot_path=args.snapshot,
        snapshot_every=args.snapshot_every,
        telemetry_sink=telemetry_sink,
        health=health,
    )
    stream_events = None
    if args.events is not None and args.events != "-":
        events_path = Path(args.events)
        if not events_path.is_file():
            print(f"error: events file not found: {events_path}", file=sys.stderr)
            return EXIT_CONFIG
        try:
            loaded = read_event_stream(events_path)
        except EventDecodeError as exc:
            print(f"error: malformed event stream {events_path}: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        stream_events = loaded.events
    if args.resume is not None:
        try:
            service = ReputationService.from_checkpoint(args.resume, **service_kwargs)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot resume {args.resume}: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        print(
            f"resumed {args.resume}: {service.intervals_run} intervals, "
            f"{service.events_applied} events applied"
        )
    else:
        if args.events is not None and args.events != "-" and loaded.spec is not None:
            spec = ScenarioSpec.from_dict(loaded.spec)
        else:
            try:
                spec = _serve_spec_from_args(args)
            except (ValueError, TypeError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_CONFIG
        service = ReputationService(spec, **service_kwargs)

    # -- listen: line-JSON socket endpoint -----------------------------------
    if args.listen is not None:
        import asyncio

        from repro.serve.driver import serve_socket

        host, sep, port_text = args.listen.rpartition(":")
        try:
            if not sep or not host:
                raise ValueError
            port = int(port_text)
        except ValueError:
            print(
                f"error: --listen expects HOST:PORT, got {args.listen!r}",
                file=sys.stderr,
            )
            return EXIT_CONFIG

        async def _serve_forever() -> None:
            server = await serve_socket(service, host, port)
            bound = server.sockets[0].getsockname()
            print(
                f"serving line-JSON events on {bound[0]}:{bound[1]}",
                flush=True,
            )
            ingest = asyncio.ensure_future(service.run())
            try:
                async with server:
                    await server.serve_forever()
            finally:
                await service.stop()
                await ingest

        try:
            asyncio.run(_serve_forever())
        except KeyboardInterrupt:
            print("interrupted; service stopped")
        finally:
            _serve_telemetry_finish(args, service, telemetry_sink)
        return EXIT_OK

    # -- stream: apply events (file or stdin) --------------------------------
    applied_before = service.events_applied
    start = perf_counter()
    if args.events == "-":
        # stdin is decoded as it streams: a malformed line aborts a run
        # that is already underway, which is a runtime failure — unlike a
        # malformed --events file, which is rejected before starting.
        try:
            consumed = drive_lines(service, sys.stdin, out=sys.stdout)
        except EventDecodeError as exc:
            print(f"error: malformed event on stdin: {exc}", file=sys.stderr)
            return EXIT_RUNTIME
    elif stream_events is not None:
        consumed = service.serve_events(stream_events)
    else:
        consumed = 0
    elapsed = perf_counter() - start
    summary = _serve_summary(
        service, elapsed, service.events_applied - applied_before
    )
    print(
        f"streamed {consumed} events: {service.intervals_run} intervals, "
        f"{summary['events_per_second']:.0f} ev/s, "
        f"query p99 {summary['query_p99_seconds'] * 1e6:.1f}µs "
        f"[{elapsed:.1f}s]"
    )

    if args.snapshot is not None:
        path = service.save_snapshot(args.snapshot)
        print(f"snapshot: {path}")
        if args.verify_snapshot:
            restored = ReputationService.from_checkpoint(args.snapshot)
            if np.array_equal(restored.reputations, service.reputations) and (
                restored.intervals_run == service.intervals_run
            ):
                print("snapshot round-trip: OK (bit-identical reputations)")
            else:
                print("error: snapshot round-trip diverged", file=sys.stderr)
                return EXIT_FAILURE
    if args.report is not None:
        args.report.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {args.report}")
    _serve_telemetry_finish(args, service, telemetry_sink)
    return EXIT_OK


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs import SchemaError, render_file_report, validate_jsonl

    try:
        counts = validate_jsonl(args.input)
    except SchemaError as exc:
        print(f"error: invalid trace {args.input}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except OSError as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    total = sum(counts.values())
    by_kind = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
    print(f"validated {total} events ({by_kind or 'empty trace'})")
    print()
    print(render_file_report(args.input))
    return 0


def _cmd_obs_health(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        OK,
        CRITICAL,
        HealthMonitor,
        SchemaError,
        default_service_rules,
        read_telemetry,
    )

    try:
        snapshots = read_telemetry(args.input)
    except SchemaError as exc:
        print(f"error: invalid telemetry {args.input}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except OSError as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    if not snapshots:
        print(f"error: {args.input} holds no telemetry snapshots", file=sys.stderr)
        return EXIT_CONFIG
    monitor = HealthMonitor(
        default_service_rules(
            query_p99_ceiling=args.query_p99,
            min_events_per_sec=args.min_events_per_sec,
            queue_depth_ceiling=args.queue_depth,
            shed_rate_ceiling=args.shed_rate,
            flood_share_ceiling=args.flood_share,
        )
    )
    monitor.replay(snapshots)
    report = monitor.report()
    print(
        f"health: {report['state'].upper()} over "
        f"{report['intervals_observed']} intervals, "
        f"{len(report['transitions'])} transitions"
    )
    for event in report["transitions"]:
        scope = event["rule"] or "overall"
        print(
            f"  interval {event['interval']:>4}: {scope:<16} "
            f"{event['from']} -> {event['to']}  ({event['reason']})"
        )
    for rule in report["rules"]:
        marker = "BREACH" if rule["state"] != OK else "ok"
        value = rule["last_value"]
        rendered = "no data" if value is None else f"{value:g}"
        print(
            f"  rule {rule['name']:<16} {marker:<6} "
            f"{rule['stat']}({rule['metric']}) {rule['op']} "
            f"{rule['threshold']:g}  last={rendered}"
        )
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.report}")
    state = report["state"]
    if args.fail_on == "critical" and state == CRITICAL:
        return EXIT_FAILURE
    if args.fail_on == "degraded" and state != OK:
        return EXIT_FAILURE
    return EXIT_OK


def _cmd_obs_top(args: argparse.Namespace) -> int:
    from repro.obs import SchemaError, profile_file

    try:
        _, table = profile_file(args.input, top=args.top)
    except SchemaError as exc:
        print(f"error: invalid trace {args.input}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except OSError as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    print(table)
    return EXIT_OK


def _cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs import (
        SchemaError,
        parse_prometheus,
        read_jsonl,
        render_prometheus,
        validate_event,
    )

    try:
        events = read_jsonl(args.input)
    except SchemaError as exc:
        print(f"error: invalid JSONL {args.input}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except OSError as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    snapshot = None
    for event in events:
        try:
            kind = validate_event(event)
        except SchemaError as exc:
            print(f"error: invalid event in {args.input}: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        if kind in ("metrics", "telemetry"):
            snapshot = event["metrics"]
    if snapshot is None:
        print(
            f"error: {args.input} holds no metrics/telemetry snapshot",
            file=sys.stderr,
        )
        return EXIT_CONFIG
    text = render_prometheus(snapshot)
    # Self-validate: the renderer's output must round-trip through the
    # parser, or the exporter has drifted from the format.
    parse_prometheus(text)
    if args.output is not None:
        args.output.write_text(text)
        print(f"wrote {args.output}: {len(parse_prometheus(text))} families")
    else:
        print(text, end="")
    return EXIT_OK


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "report":
        return _cmd_obs_report(args)
    if args.obs_command == "health":
        return _cmd_obs_health(args)
    if args.obs_command == "top":
        return _cmd_obs_top(args)
    if args.obs_command == "export":
        return _cmd_obs_export(args)
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import MarketplaceConfig, generate_trace
    from repro.trace.io import save_trace

    config = MarketplaceConfig(n_users=args.users, n_months=args.months)
    trace = generate_trace(config, seed=args.seed)
    save_trace(trace, args.output)
    print(
        f"wrote {args.output}: {trace.n_users} users, "
        f"{trace.n_transactions} transactions"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.trace import (
        business_network_vs_reputation,
        category_rank_distribution,
        interest_similarity_cdf,
        personal_network_vs_reputation,
        rating_stats_by_distance,
        transactions_vs_reputation,
    )
    from repro.trace.io import load_trace

    trace = load_trace(args.input)
    print(f"{trace.n_users} users, {trace.n_transactions} transactions")
    print(
        "C(reputation, business size)  ="
        f" {business_network_vs_reputation(trace).correlation:.3f}"
    )
    print(
        "C(reputation, transactions)   ="
        f" {transactions_vs_reputation(trace).correlation:.3f}"
    )
    print(
        "C(reputation, personal size)  ="
        f" {personal_network_vs_reputation(trace).correlation:.3f}"
    )
    stats = rating_stats_by_distance(trace)
    print("mean rating by hop:  ", np.round(stats.mean_rating, 2).tolist())
    print("ratings/pair by hop: ", np.round(stats.mean_ratings_per_pair, 2).tolist())
    cdf = category_rank_distribution(trace)
    print(f"top-3 category share: {cdf[2]:.2f}")
    edges, sim = interest_similarity_cdf(trace)
    print("similarity CDF:", {round(float(e), 1): round(float(s), 2) for e, s in zip(edges, sim)})
    return 0


def _cmd_qa(args: argparse.Namespace) -> int:
    from repro.qa import DEFAULT_GOLDEN_DIR, check_all, record_all, run_differential
    from repro.qa.fuzz import run_fuzz

    if args.qa_command == "record":
        golden_dir = args.golden_dir or DEFAULT_GOLDEN_DIR
        try:
            written = record_all(
                golden_dir, names=args.scenario, update=args.update
            )
        except (FileExistsError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        for path in written:
            print(f"wrote {path}")
        return 0

    if args.qa_command == "check":
        golden_dir = args.golden_dir or DEFAULT_GOLDEN_DIR
        try:
            results = check_all(
                golden_dir,
                names=args.scenario,
                mode=args.mode,
                rtol=args.rtol,
                atol=args.atol,
            )
        except (FileNotFoundError, KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        report_lines = []
        failed = False
        for name, diff in results.items():
            status = "OK" if diff.ok else "DIVERGED"
            print(f"{name}: {status} ({args.mode})")
            report_lines.append(f"=== {name} ===")
            report_lines.append(diff.render())
            if not diff.ok:
                failed = True
                print(diff.render())
        if args.report is not None:
            args.report.write_text("\n".join(report_lines) + "\n")
            print(f"wrote {args.report}")
        return EXIT_FAILURE if failed else EXIT_OK

    if args.qa_command == "fuzz":
        start = perf_counter()
        try:
            reports = run_fuzz(
                steps=args.steps, seed=args.seed, harness=args.harness
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        for report in reports:
            print(report.summary())
        print(f"  [{perf_counter() - start:.1f}s]")
        return EXIT_OK if all(r.ok for r in reports) else EXIT_FAILURE

    if args.qa_command == "diff":
        report = run_differential(
            seed=args.seed, cycles=args.cycles, collusion=args.collusion
        )
        print(report.summary())
        ok = report.ok
        if args.sparse:
            from repro.qa import run_coefficient_differential

            coeff_report = run_coefficient_differential(
                seed=args.seed, cycles=args.cycles, collusion=args.collusion
            )
            print(coeff_report.summary())
            ok = ok and coeff_report.ok
        return EXIT_OK if ok else EXIT_FAILURE

    if args.qa_command == "reconverge":
        import json

        from repro.qa import run_reconvergence

        start = perf_counter()
        try:
            report = run_reconvergence(
                seed=args.seed,
                cycles=args.cycles,
                tolerance=args.tolerance,
                budget=args.budget,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_CONFIG
        print(report.summary())
        print(f"  [{perf_counter() - start:.1f}s]")
        if args.report is not None:
            args.report.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
            print(f"wrote {args.report}")
        return EXIT_OK if report.ok else EXIT_FAILURE

    raise AssertionError(f"unhandled qa command {args.qa_command!r}")


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "qa":
        return _cmd_qa(args)
    raise AssertionError(f"unhandled command {args.command!r}")


#: ``obs`` subcommands; anything else after ``obs`` is treated as the
#: legacy positional trace path and routed to ``obs report``.
_OBS_SUBCOMMANDS = ("report", "health", "top", "export")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if (
        len(argv) >= 2
        and argv[0] == "obs"
        and argv[1] not in _OBS_SUBCOMMANDS
        and not argv[1].startswith("-")
    ):
        # Back-compat: ``repro obs trace.jsonl`` predates the subcommands.
        argv.insert(1, "report")
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except (ValueError, TypeError, KeyError, FileNotFoundError) as exc:
        # Bad flag values or inputs that slipped past the explicit guards:
        # the run never meaningfully started.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    except KeyboardInterrupt:
        raise
    except Exception as exc:  # noqa: BLE001 — contractual exit code 3
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_RUNTIME


if __name__ == "__main__":
    sys.exit(main())
