"""Command-line interface.

``python -m repro.cli <command>`` (or the ``repro`` console script):

* ``list``        — show the experiment registry;
* ``run <ids>``   — regenerate tables/figures, printing the series;
* ``simulate``    — run one ad-hoc scenario through :mod:`repro.api`
  (``--trace FILE`` enables observability and exports the JSONL trace;
  ``--partition``/``--byzantine``/``--managers`` script chaos windows;
  ``--checkpoint FILE --checkpoint-every N`` writes crash-safe
  checkpoints and ``--resume FILE`` continues one bit-identically);
* ``obs``         — validate an exported trace and print the
  phases/metrics/audit report;
* ``trace``       — generate a synthetic Overstock trace to a JSON file;
* ``analyze``     — run the Section-3 analyses over a saved trace file;
* ``qa``          — the correctness tooling of :mod:`repro.qa`:
  ``qa record`` / ``qa check`` manage the golden regression traces,
  ``qa fuzz`` runs the stateful invariant fuzzer, ``qa diff`` runs
  the backend × engine differential sweep, and ``qa reconverge`` runs
  the chaos reconvergence harness.

``list``/``run``/``simulate`` all go through the :mod:`repro.api` facade,
so the CLI exercises the same audited path as the example scripts.
Wall-clock timings printed by ``run``/``simulate`` use
:func:`time.perf_counter` — the same monotonic clock as the tracer.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

__all__ = ["main", "build_parser"]

#: Experiments that run on the trace substrate and take no run/cycle knobs.
TRACE_EXPERIMENTS = frozenset({"fig1", "fig2", "fig3", "fig4"})


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SocialTrust reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment registry")

    run = sub.add_parser("run", help="regenerate tables/figures")
    run.add_argument("experiments", nargs="+", help="experiment ids, or 'all'")
    run.add_argument("--runs", type=int, default=2)
    run.add_argument("--cycles", type=int, default=25)
    run.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser(
        "simulate", help="run one ad-hoc scenario via the repro.api facade"
    )
    sim.add_argument("--nodes", type=int, default=200)
    sim.add_argument("--pretrusted", type=int, default=9)
    sim.add_argument("--colluders", type=int, default=30)
    sim.add_argument(
        "--system",
        default="EigenTrust+SocialTrust",
        help="reputation stack, e.g. EigenTrust or eBay+SocialTrust",
    )
    sim.add_argument(
        "--collusion", default="pcm", choices=["none", "pcm", "mcm", "mmm"]
    )
    sim.add_argument(
        "--colluder-b",
        type=float,
        default=0.2,
        help="colluders' probability of good behaviour B",
    )
    sim.add_argument("--cycles", type=int, default=25)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--engine",
        default="batched",
        choices=["batched", "scalar"],
        help="query-cycle engine (scalar is the reference implementation)",
    )
    sim.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="FILE",
        help="enable observability, export the JSONL trace to FILE and "
        "print the phases/metrics/audit report",
    )
    sim.add_argument(
        "--managers",
        type=int,
        default=0,
        help="resource managers for distributed SocialTrust (0 = centralised)",
    )
    sim.add_argument(
        "--partition",
        action="append",
        default=None,
        metavar="START:HEAL",
        help="scripted network-partition window in simulation cycles "
        "(repeatable)",
    )
    sim.add_argument(
        "--byzantine",
        action="append",
        default=None,
        metavar="MGR:START[:HEAL]",
        help="scripted Byzantine window for manager MGR (repeatable; "
        "requires --managers)",
    )
    sim.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        metavar="FILE",
        help="write a crash-safe checkpoint to FILE (see --checkpoint-every)",
    )
    sim.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N simulation cycles (requires --checkpoint)",
    )
    sim.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="FILE",
        help="resume from a checkpoint file; the scenario comes from its "
        "header, so other scenario flags are ignored",
    )

    obs = sub.add_parser(
        "obs", help="validate and report on an exported observability trace"
    )
    obs.add_argument("input", type=Path, help="JSONL trace path")

    trace = sub.add_parser("trace", help="generate a synthetic trace file")
    trace.add_argument("output", type=Path, help="output JSON path")
    trace.add_argument("--users", type=int, default=2500)
    trace.add_argument("--months", type=int, default=24)
    trace.add_argument("--seed", type=int, default=0)

    analyze = sub.add_parser("analyze", help="run Section-3 analyses on a trace file")
    analyze.add_argument("input", type=Path, help="trace JSON path")

    qa = sub.add_parser("qa", help="golden traces, invariant fuzzing, differential runs")
    qa_sub = qa.add_subparsers(dest="qa_command", required=True)

    record = qa_sub.add_parser("record", help="record golden scenario traces")
    record.add_argument(
        "--golden-dir", type=Path, default=None, help="golden directory (default: tests/golden)"
    )
    record.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="record only this scenario (repeatable; default: all)",
    )
    record.add_argument(
        "--update",
        action="store_true",
        help="overwrite existing goldens (the numbers changed on purpose)",
    )

    check = qa_sub.add_parser("check", help="replay and diff the golden traces")
    check.add_argument("--golden-dir", type=Path, default=None)
    check.add_argument("--scenario", action="append", default=None, metavar="NAME")
    check.add_argument(
        "--mode",
        default="strict",
        choices=["strict", "tolerance"],
        help="strict = bit-identical; tolerance = isclose(rtol, atol)",
    )
    check.add_argument("--rtol", type=float, default=1e-9)
    check.add_argument("--atol", type=float, default=1e-12)
    check.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the divergence report to FILE (CI artifact)",
    )

    fuzz = qa_sub.add_parser("fuzz", help="run the stateful invariant fuzzer")
    fuzz.add_argument("--steps", type=int, default=200)
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--harness", default="both", choices=["engine", "manager", "both"]
    )

    diff = qa_sub.add_parser(
        "diff", help="differential sweep: every backend x engine mode"
    )
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument("--cycles", type=int, default=4)
    diff.add_argument(
        "--collusion", default="pcm", choices=["none", "pcm", "mcm", "mmm"]
    )
    diff.add_argument(
        "--sparse",
        action="store_true",
        help="also compare the dense and sparse coefficient backends "
        "(tolerance mode) across every cell",
    )

    reconv = qa_sub.add_parser(
        "reconverge",
        help="chaos reconvergence: inject + heal, assert recovery per backend",
    )
    reconv.add_argument("--seed", type=int, default=0)
    reconv.add_argument("--cycles", type=int, default=12)
    reconv.add_argument("--tolerance", type=float, default=0.02)
    reconv.add_argument(
        "--budget",
        type=int,
        default=5,
        help="max cycles after the heal for the error to settle below tolerance",
    )
    reconv.add_argument(
        "--report",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the JSON report to FILE (CI artifact)",
    )
    return parser


def _cmd_list() -> int:
    from repro.api import list_experiments

    for name in list_experiments():
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import list_experiments, run_experiment

    wanted = (
        list_experiments() if args.experiments == ["all"] else args.experiments
    )
    for experiment_id in wanted:
        start = perf_counter()
        if experiment_id in TRACE_EXPERIMENTS:
            result = run_experiment(experiment_id, seed=args.seed)
        else:
            result = run_experiment(
                experiment_id,
                n_runs=args.runs,
                simulation_cycles=args.cycles,
                seed=args.seed,
            )
        print(result.describe())
        print(f"  [{perf_counter() - start:.1f}s]\n")
    return 0


def _parse_partition(text: str) -> dict:
    parts = text.split(":")
    try:
        if len(parts) != 2:
            raise ValueError
        return {"start_cycle": int(parts[0]), "heal_cycle": int(parts[1])}
    except ValueError:
        raise ValueError(
            f"--partition expects integer START:HEAL, got {text!r}"
        ) from None


def _parse_byzantine(text: str) -> dict:
    parts = text.split(":")
    try:
        if len(parts) not in (2, 3):
            raise ValueError
        return {
            "manager_id": int(parts[0]),
            "start_cycle": int(parts[1]),
            "heal_cycle": int(parts[2]) if len(parts) == 3 else None,
        }
    except ValueError:
        raise ValueError(
            f"--byzantine expects integer MGR:START[:HEAL], got {text!r}"
        ) from None


def _drive_with_checkpoints(
    simulation,
    total_cycles: int,
    args: argparse.Namespace,
    build: dict,
    seed: int,
) -> None:
    """Run ``simulation`` up to ``total_cycles``, checkpointing as asked."""
    from repro.chaos import save_checkpoint

    every = args.checkpoint_every
    target = args.checkpoint if args.checkpoint is not None else args.resume
    while simulation.cycles_run < total_cycles:
        simulation.run_simulation_cycle()
        if every and target is not None and simulation.cycles_run % every == 0:
            save_checkpoint(simulation, target, build=build, seed=seed)
            print(f"checkpoint @ cycle {simulation.cycles_run}: {target}")


def _scenario_result(scenario):
    from repro.api import ScenarioResult

    metrics = scenario.world.simulation.metrics
    return ScenarioResult(
        config=scenario.config,
        seed=scenario.seed,
        run_index=scenario.run_index,
        world=scenario.world,
        metrics=metrics,
        reputations=metrics.final_reputations(),
        history=metrics.reputation_history(),
        observability=scenario.world.observability,
    )


def _cmd_simulate_resume(args: argparse.Namespace) -> int:
    from repro.chaos import load_checkpoint, resume_scenario

    try:
        header, _ = load_checkpoint(args.resume)
        scenario = resume_scenario(args.resume)
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot resume {args.resume}: {exc}", file=sys.stderr)
        return 1
    simulation = scenario.world.simulation
    total = int(header["build"].get("simulation_cycles", args.cycles))
    print(f"resumed {args.resume} at cycle {simulation.cycles_run}/{total}")
    start = perf_counter()
    _drive_with_checkpoints(
        simulation, total, args, header["build"], header["seed"]
    )
    print(_scenario_result(scenario).summary())
    print(f"  [{perf_counter() - start:.1f}s]")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.api import run_scenario

    if args.checkpoint_every and args.checkpoint is None and args.resume is None:
        print("error: --checkpoint-every requires --checkpoint", file=sys.stderr)
        return 1
    if args.resume is not None:
        return _cmd_simulate_resume(args)
    if args.trace is not None:
        # Pre-flight the export path: a multi-minute simulation that dies
        # at the final write is the worst possible failure mode.
        parent = args.trace.resolve().parent
        if not parent.is_dir():
            print(f"error: trace directory does not exist: {parent}", file=sys.stderr)
            return 1
        if not os.access(parent, os.W_OK):
            print(f"error: trace directory is not writable: {parent}", file=sys.stderr)
            return 1
    chaos = None
    if args.partition or args.byzantine:
        try:
            chaos = {
                "partitions": [_parse_partition(p) for p in args.partition or ()],
                "byzantines": [_parse_byzantine(b) for b in args.byzantine or ()],
            }
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    start = perf_counter()
    if chaos is not None or args.managers or args.checkpoint is not None:
        # Chaos / checkpoint path: drive the cycles by hand so the run
        # can be checkpointed (and later resumed) at cycle boundaries.
        from repro.api import build_scenario

        build = dict(
            n_nodes=args.nodes,
            n_pretrusted=args.pretrusted,
            n_colluders=args.colluders,
            system=args.system,
            collusion=args.collusion,
            colluder_b=args.colluder_b,
            simulation_cycles=args.cycles,
            engine=args.engine,
            n_managers=args.managers,
        )
        if chaos is not None:
            build["chaos"] = chaos
        try:
            scenario = build_scenario(
                seed=args.seed,
                observability=args.trace is not None,
                **build,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        _drive_with_checkpoints(
            scenario.world.simulation, args.cycles, args, build, args.seed
        )
        result = _scenario_result(scenario)
    else:
        result = run_scenario(
            n_nodes=args.nodes,
            n_pretrusted=args.pretrusted,
            n_colluders=args.colluders,
            system=args.system,
            collusion=args.collusion,
            colluder_b=args.colluder_b,
            simulation_cycles=args.cycles,
            engine=args.engine,
            seed=args.seed,
            observability=args.trace is not None,
        )
    print(result.summary())
    print(f"  [{perf_counter() - start:.1f}s]")
    if args.trace is not None:
        obs = result.observability
        assert obs is not None
        n_lines = obs.export_jsonl(args.trace)
        print(f"wrote {args.trace}: {n_lines} events")
        print()
        print(obs.report(title=f"observability report: {args.trace}"))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import SchemaError, render_file_report, validate_jsonl

    try:
        counts = validate_jsonl(args.input)
    except SchemaError as exc:
        print(f"error: invalid trace {args.input}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return 1
    total = sum(counts.values())
    by_kind = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
    print(f"validated {total} events ({by_kind or 'empty trace'})")
    print()
    print(render_file_report(args.input))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.trace import MarketplaceConfig, generate_trace
    from repro.trace.io import save_trace

    config = MarketplaceConfig(n_users=args.users, n_months=args.months)
    trace = generate_trace(config, seed=args.seed)
    save_trace(trace, args.output)
    print(
        f"wrote {args.output}: {trace.n_users} users, "
        f"{trace.n_transactions} transactions"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.trace import (
        business_network_vs_reputation,
        category_rank_distribution,
        interest_similarity_cdf,
        personal_network_vs_reputation,
        rating_stats_by_distance,
        transactions_vs_reputation,
    )
    from repro.trace.io import load_trace

    trace = load_trace(args.input)
    print(f"{trace.n_users} users, {trace.n_transactions} transactions")
    print(
        "C(reputation, business size)  ="
        f" {business_network_vs_reputation(trace).correlation:.3f}"
    )
    print(
        "C(reputation, transactions)   ="
        f" {transactions_vs_reputation(trace).correlation:.3f}"
    )
    print(
        "C(reputation, personal size)  ="
        f" {personal_network_vs_reputation(trace).correlation:.3f}"
    )
    stats = rating_stats_by_distance(trace)
    print("mean rating by hop:  ", np.round(stats.mean_rating, 2).tolist())
    print("ratings/pair by hop: ", np.round(stats.mean_ratings_per_pair, 2).tolist())
    cdf = category_rank_distribution(trace)
    print(f"top-3 category share: {cdf[2]:.2f}")
    edges, sim = interest_similarity_cdf(trace)
    print("similarity CDF:", {round(float(e), 1): round(float(s), 2) for e, s in zip(edges, sim)})
    return 0


def _cmd_qa(args: argparse.Namespace) -> int:
    from repro.qa import DEFAULT_GOLDEN_DIR, check_all, record_all, run_differential
    from repro.qa.fuzz import run_fuzz

    if args.qa_command == "record":
        golden_dir = args.golden_dir or DEFAULT_GOLDEN_DIR
        try:
            written = record_all(
                golden_dir, names=args.scenario, update=args.update
            )
        except (FileExistsError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for path in written:
            print(f"wrote {path}")
        return 0

    if args.qa_command == "check":
        golden_dir = args.golden_dir or DEFAULT_GOLDEN_DIR
        try:
            results = check_all(
                golden_dir,
                names=args.scenario,
                mode=args.mode,
                rtol=args.rtol,
                atol=args.atol,
            )
        except (FileNotFoundError, KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        report_lines = []
        failed = False
        for name, diff in results.items():
            status = "OK" if diff.ok else "DIVERGED"
            print(f"{name}: {status} ({args.mode})")
            report_lines.append(f"=== {name} ===")
            report_lines.append(diff.render())
            if not diff.ok:
                failed = True
                print(diff.render())
        if args.report is not None:
            args.report.write_text("\n".join(report_lines) + "\n")
            print(f"wrote {args.report}")
        return 1 if failed else 0

    if args.qa_command == "fuzz":
        start = perf_counter()
        try:
            reports = run_fuzz(
                steps=args.steps, seed=args.seed, harness=args.harness
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for report in reports:
            print(report.summary())
        print(f"  [{perf_counter() - start:.1f}s]")
        return 0 if all(r.ok for r in reports) else 1

    if args.qa_command == "diff":
        report = run_differential(
            seed=args.seed, cycles=args.cycles, collusion=args.collusion
        )
        print(report.summary())
        ok = report.ok
        if args.sparse:
            from repro.qa import run_coefficient_differential

            coeff_report = run_coefficient_differential(
                seed=args.seed, cycles=args.cycles, collusion=args.collusion
            )
            print(coeff_report.summary())
            ok = ok and coeff_report.ok
        return 0 if ok else 1

    if args.qa_command == "reconverge":
        import json

        from repro.qa import run_reconvergence

        start = perf_counter()
        try:
            report = run_reconvergence(
                seed=args.seed,
                cycles=args.cycles,
                tolerance=args.tolerance,
                budget=args.budget,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(report.summary())
        print(f"  [{perf_counter() - start:.1f}s]")
        if args.report is not None:
            args.report.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
            print(f"wrote {args.report}")
        return 0 if report.ok else 1

    raise AssertionError(f"unhandled qa command {args.qa_command!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "qa":
        return _cmd_qa(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
