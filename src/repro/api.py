"""Stable, keyword-driven facade over the simulation stack.

Before this module existed, every entry point — ``examples/quickstart.py``,
``examples/reproduce_paper.py``, the CLI — hand-wired the same dozen
objects (population, overlay, social network, ledgers, reputation stack,
collusion schedule, simulator).  The facade collapses that wiring into two
calls:

>>> from repro.api import build_scenario
>>> scenario = build_scenario(
...     n_nodes=100, n_colluders=20, collusion="pcm",
...     system="EigenTrust+SocialTrust", simulation_cycles=15, seed=42,
... )
>>> result = scenario.run()
>>> print(result.summary())            # doctest: +SKIP

:func:`build_scenario` accepts every :class:`WorldConfig` field as a
keyword (enums may be given as strings), :func:`run_scenario` builds and
runs in one step, and :class:`ScenarioResult` bundles the reputations,
history, metrics, and per-group summaries a caller typically prints.
Registered table/figure experiments stay reachable through
:func:`list_experiments` / :func:`run_experiment`, so the CLI and the
reproduction script share one audited path.

Old keyword spellings used by earlier example scripts keep working for one
release through :func:`repro.utils.deprecation.deprecated_alias` shims.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.setup import (
    BuiltWorld,
    CollusionKind,
    SystemKind,
    WorldConfig,
    build_world,
)
from repro.obs import Observability
from repro.p2p import MetricsCollector, Simulation
from repro.utils.deprecation import deprecated_alias, deprecated_param

__all__ = [
    "Scenario",
    "ScenarioResult",
    "build_scenario",
    "run_scenario",
    "list_experiments",
    "run_experiment",
]

#: The socialtrust-wrapped counterpart of each base reputation stack.
_SOCIALTRUST_OF = {
    SystemKind.EIGENTRUST: SystemKind.EIGENTRUST_SOCIALTRUST,
    SystemKind.EBAY: SystemKind.EBAY_SOCIALTRUST,
    SystemKind.POWERTRUST: SystemKind.POWERTRUST_SOCIALTRUST,
}


def _canon(label: str) -> str:
    """Case/punctuation-insensitive key for enum lookup by string."""
    return "".join(ch for ch in label.lower() if ch.isalnum())


_SYSTEM_BY_NAME = {
    _canon(label): kind
    for kind in SystemKind
    for label in (kind.value, kind.name)
}
_COLLUSION_BY_NAME = {
    _canon(label): kind
    for kind in CollusionKind
    for label in (kind.value, kind.name)
}


def _resolve_system(
    system: SystemKind | str, use_socialtrust: bool | None
) -> SystemKind:
    if isinstance(system, str):
        try:
            system = _SYSTEM_BY_NAME[_canon(system)]
        except KeyError:
            options = sorted({kind.value for kind in SystemKind})
            raise ValueError(
                f"unknown reputation system {system!r}; choose from {options}"
            ) from None
    if use_socialtrust is None:
        return system
    if use_socialtrust:
        return _SOCIALTRUST_OF.get(system, system)
    return system.base


def _resolve_collusion(collusion: CollusionKind | str) -> CollusionKind:
    if isinstance(collusion, str):
        try:
            return _COLLUSION_BY_NAME[_canon(collusion)]
        except KeyError:
            options = sorted({kind.value for kind in CollusionKind})
            raise ValueError(
                f"unknown collusion model {collusion!r}; choose from {options}"
            ) from None
    return collusion


@dataclass(frozen=True)
class ScenarioResult:
    """Everything a finished scenario run typically gets asked for.

    Wraps the raw :class:`~repro.p2p.MetricsCollector` (still available as
    :attr:`metrics`) with the final reputation vector, the per-interval
    reputation history, and per-group convenience summaries.
    """

    config: WorldConfig
    seed: int
    run_index: int
    world: BuiltWorld
    metrics: MetricsCollector
    #: Final reputation vector (one entry per node).
    reputations: np.ndarray
    #: Reputation snapshots, shape ``(n_intervals, n_nodes)``.
    history: np.ndarray
    #: The run's tracer/metrics/audit bundle (None unless the scenario was
    #: built with ``observability=...``); see :mod:`repro.obs`.
    observability: Observability | None = None

    @property
    def colluder_ids(self) -> tuple[int, ...]:
        return self.config.colluder_ids

    @property
    def pretrusted_ids(self) -> tuple[int, ...]:
        return self.config.pretrusted_ids

    @property
    def normal_ids(self) -> tuple[int, ...]:
        return self.config.normal_ids

    def _group_mean(self, ids: tuple[int, ...]) -> float:
        if not ids:
            return float("nan")
        return float(self.reputations[list(ids)].mean())

    @property
    def colluder_mean(self) -> float:
        """Mean final reputation over the colluders (NaN when none)."""
        return self._group_mean(self.colluder_ids)

    @property
    def pretrusted_mean(self) -> float:
        """Mean final reputation over the pre-trusted nodes (NaN when none)."""
        return self._group_mean(self.pretrusted_ids)

    @property
    def normal_mean(self) -> float:
        """Mean final reputation over the normal nodes (NaN when none)."""
        return self._group_mean(self.normal_ids)

    @property
    def colluder_request_share(self) -> float:
        """Fraction of served requests captured by the colluders."""
        return self.metrics.fraction_served_by(list(self.colluder_ids))

    def summary(self) -> str:
        """Printable multi-line digest of the run."""
        cfg = self.config
        lines = [
            f"{cfg.system.value} | collusion={cfg.collusion.value} | "
            f"n={cfg.n_nodes} | seed={self.seed} run={self.run_index}",
            f"  cycles run               : {self.metrics.n_snapshots}",
            f"  colluder mean reputation : {self.colluder_mean:.5f}",
            f"  normal   mean reputation : {self.normal_mean:.5f}",
            f"  pretrusted mean reputation: {self.pretrusted_mean:.5f}",
            f"  requests captured by colluders: {self.colluder_request_share:.1%}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class Scenario:
    """A fully wired, not-yet-run simulation world.

    Produced by :func:`build_scenario`; call :meth:`run` to execute it.
    The underlying :class:`~repro.experiments.setup.BuiltWorld` stays
    reachable through :attr:`world` for callers that need the raw parts.
    """

    config: WorldConfig
    seed: int
    run_index: int
    world: BuiltWorld

    @property
    def simulation(self) -> Simulation:
        return self.world.simulation

    @property
    def observability(self) -> Observability | None:
        return self.world.observability

    def run(self, simulation_cycles: int | None = None) -> ScenarioResult:
        """Run the simulation (optionally overriding the cycle count)."""
        metrics = self.world.simulation.run(simulation_cycles)
        return ScenarioResult(
            config=self.config,
            seed=self.seed,
            run_index=self.run_index,
            world=self.world,
            metrics=metrics,
            reputations=metrics.final_reputations(),
            history=metrics.reputation_history(),
            observability=self.world.observability,
        )


_WORLD_FIELDS = frozenset(f.name for f in fields(WorldConfig))


@deprecated_alias(
    n_cycles="simulation_cycles",
    cycles="simulation_cycles",
    exploration="selection_exploration",
    policy="selection_policy",
    malicious_authentic_prob="colluder_b",
    ratings_per_cycle="pcm_ratings_per_cycle",
    query_cycles_per_simulation_cycle="query_cycles",
)
def build_scenario(
    *,
    seed: int = 0,
    run_index: int = 0,
    system: SystemKind | str = SystemKind.EIGENTRUST,
    use_socialtrust: bool | None = None,
    collusion: CollusionKind | str = CollusionKind.NONE,
    observability: bool | Observability | None = None,
    **config_fields,
) -> Scenario:
    """Build one fully wired scenario from keyword arguments alone.

    ``system`` and ``collusion`` accept the enum members or their string
    names (``"EigenTrust+SocialTrust"``, ``"pcm"``, ...); setting
    ``use_socialtrust`` swaps a base system for its SocialTrust-wrapped
    variant (or back).  ``observability=True`` (or a pre-built
    :class:`~repro.obs.Observability`) attaches span tracing, the metrics
    registry and the detector audit log; the bundle comes back on
    :attr:`Scenario.observability` / :attr:`ScenarioResult.observability`.
    Every other keyword must be a
    :class:`~repro.experiments.setup.WorldConfig` field and is forwarded
    verbatim.  ``(seed, run_index)`` key the RNG streams exactly as
    :func:`~repro.experiments.setup.build_world` does.
    """
    unknown = sorted(set(config_fields) - _WORLD_FIELDS)
    if unknown:
        raise TypeError(
            f"build_scenario() got unknown keyword(s) {unknown}; valid "
            f"keywords are the WorldConfig fields plus seed/run_index/"
            f"system/use_socialtrust/collusion/observability"
        )
    if observability is True:
        obs: Observability | None = Observability()
    elif observability is False:
        obs = None
    else:
        obs = observability
    config = WorldConfig(
        system=_resolve_system(system, use_socialtrust),
        collusion=_resolve_collusion(collusion),
        **config_fields,
    )
    world = build_world(config, seed=seed, run_index=run_index, observability=obs)
    return Scenario(config=config, seed=seed, run_index=run_index, world=world)


@deprecated_param(
    "progress",
    reason="the facade never rendered progress output; wrap the call at the "
    "call site if you need it",
)
def run_scenario(**kwargs) -> ScenarioResult:
    """Build and run a scenario in one call.

    ``simulation_cycles`` (and every other keyword) is forwarded to
    :func:`build_scenario`; the world is then run to completion.
    """
    return build_scenario(**kwargs).run()


def run_experiment(experiment_id: str, **kwargs):
    """Run one registered table/figure experiment and return its result.

    Thin wrapper over the :mod:`repro.experiments.registry` lookup so the
    CLI and the reproduction script share a single audited entry point;
    ``kwargs`` (``n_runs``, ``simulation_cycles``, ``seed``, ...) are
    forwarded to the experiment callable.
    """
    return get_experiment(experiment_id)(**kwargs)
