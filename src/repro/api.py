"""Stable, typed, versioned facade over the simulation stack.

Before this module existed, every entry point — ``examples/quickstart.py``,
``examples/reproduce_paper.py``, the CLI — hand-wired the same dozen
objects (population, overlay, social network, ledgers, reputation stack,
collusion schedule, simulator).  The facade collapses that wiring into two
calls:

>>> from repro.api import build_scenario
>>> scenario = build_scenario(
...     n_nodes=100, n_colluders=20, collusion="pcm",
...     system="EigenTrust+SocialTrust", simulation_cycles=15, seed=42,
... )
>>> result = scenario.run()
>>> print(result.summary())            # doctest: +SKIP

The scenario surface has two equivalent spellings:

* the **legacy keyword bag** shown above — every
  :class:`~repro.experiments.setup.WorldConfig` field as a keyword, enums
  accepted as strings; old spellings from earlier example scripts keep
  working through :func:`repro.utils.deprecation.deprecated_alias` shims;
* the **typed spec**: a frozen :class:`ScenarioSpec` value carrying the
  same information, hashable, JSON-round-trippable
  (:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`), and
  accepted positionally by :func:`build_scenario` / :func:`run_scenario`.
  Golden traces, checkpoints and the streaming service all describe
  scenarios through the spec's flat build-keyword form
  (:meth:`ScenarioSpec.build_kwargs`), so one self-describing contract
  covers every persisted artifact.

:func:`run_scenario` builds and runs in one step, and
:class:`ScenarioResult` bundles the reputations, history, metrics, and
per-group summaries a caller typically prints.  Registered table/figure
experiments stay reachable through :func:`list_experiments` /
:func:`run_experiment`.  The event types of the streaming service
(:class:`~repro.serve.events.RatingEvent` and friends) are re-exported
here so ``repro.api`` is the one import a service client needs.

:data:`API_VERSION` names this surface; it is bumped on any breaking
change so downstream callers can assert compatibility explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from types import MappingProxyType
from typing import Any, Mapping

import numpy as np

from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.setup import (
    BuiltWorld,
    CollusionKind,
    SystemKind,
    WorldConfig,
    build_world,
)
from repro.obs import Observability
from repro.p2p import MetricsCollector, Simulation
from repro.utils.deprecation import deprecated_alias, deprecated_param

__all__ = [
    "API_VERSION",
    "Scenario",
    "ScenarioResult",
    "ScenarioSpec",
    "SystemKind",
    "CollusionKind",
    "build_scenario",
    "run_scenario",
    "list_experiments",
    "run_experiment",
]

#: Version of the public scenario/event surface (``major.minor``): the
#: minor bumps on compatible additions, the major on breaking changes.
#: 2.0 introduced :class:`ScenarioSpec`, the typed :func:`run_scenario`
#: signature, and the streaming-service event types.
API_VERSION = "2.0"

#: The socialtrust-wrapped counterpart of each base reputation stack.
_SOCIALTRUST_OF = {
    SystemKind.EIGENTRUST: SystemKind.EIGENTRUST_SOCIALTRUST,
    SystemKind.EBAY: SystemKind.EBAY_SOCIALTRUST,
    SystemKind.POWERTRUST: SystemKind.POWERTRUST_SOCIALTRUST,
}


def _canon(label: str) -> str:
    """Case/punctuation-insensitive key for enum lookup by string."""
    return "".join(ch for ch in label.lower() if ch.isalnum())


_SYSTEM_BY_NAME = {
    _canon(label): kind
    for kind in SystemKind
    for label in (kind.value, kind.name)
}
_COLLUSION_BY_NAME = {
    _canon(label): kind
    for kind in CollusionKind
    for label in (kind.value, kind.name)
}


def _resolve_system(
    system: SystemKind | str, use_socialtrust: bool | None
) -> SystemKind:
    if isinstance(system, str):
        try:
            system = _SYSTEM_BY_NAME[_canon(system)]
        except KeyError:
            options = sorted({kind.value for kind in SystemKind})
            raise ValueError(
                f"unknown reputation system {system!r}; choose from {options}"
            ) from None
    if use_socialtrust is None:
        return system
    if use_socialtrust:
        return _SOCIALTRUST_OF.get(system, system)
    return system.base


def _resolve_collusion(collusion: CollusionKind | str) -> CollusionKind:
    if isinstance(collusion, str):
        try:
            return _COLLUSION_BY_NAME[_canon(collusion)]
        except KeyError:
            options = sorted({kind.value for kind in CollusionKind})
            raise ValueError(
                f"unknown collusion model {collusion!r}; choose from {options}"
            ) from None
    return collusion


@dataclass(frozen=True)
class ScenarioResult:
    """Everything a finished scenario run typically gets asked for.

    Wraps the raw :class:`~repro.p2p.MetricsCollector` (still available as
    :attr:`metrics`) with the final reputation vector, the per-interval
    reputation history, and per-group convenience summaries.
    """

    config: WorldConfig
    seed: int
    run_index: int
    world: BuiltWorld
    metrics: MetricsCollector
    #: Final reputation vector (one entry per node).
    reputations: np.ndarray
    #: Reputation snapshots, shape ``(n_intervals, n_nodes)``.
    history: np.ndarray
    #: The run's tracer/metrics/audit bundle (None unless the scenario was
    #: built with ``observability=...``); see :mod:`repro.obs`.
    observability: Observability | None = None

    @property
    def colluder_ids(self) -> tuple[int, ...]:
        return self.config.colluder_ids

    @property
    def pretrusted_ids(self) -> tuple[int, ...]:
        return self.config.pretrusted_ids

    @property
    def normal_ids(self) -> tuple[int, ...]:
        return self.config.normal_ids

    def _group_mean(self, ids: tuple[int, ...]) -> float:
        if not ids:
            return float("nan")
        return float(self.reputations[list(ids)].mean())

    @property
    def colluder_mean(self) -> float:
        """Mean final reputation over the colluders (NaN when none)."""
        return self._group_mean(self.colluder_ids)

    @property
    def pretrusted_mean(self) -> float:
        """Mean final reputation over the pre-trusted nodes (NaN when none)."""
        return self._group_mean(self.pretrusted_ids)

    @property
    def normal_mean(self) -> float:
        """Mean final reputation over the normal nodes (NaN when none)."""
        return self._group_mean(self.normal_ids)

    @property
    def colluder_request_share(self) -> float:
        """Fraction of served requests captured by the colluders."""
        return self.metrics.fraction_served_by(list(self.colluder_ids))

    def summary(self) -> str:
        """Printable multi-line digest of the run."""
        cfg = self.config
        lines = [
            f"{cfg.system.value} | collusion={cfg.collusion.value} | "
            f"n={cfg.n_nodes} | seed={self.seed} run={self.run_index}",
            f"  cycles run               : {self.metrics.n_snapshots}",
            f"  colluder mean reputation : {self.colluder_mean:.5f}",
            f"  normal   mean reputation : {self.normal_mean:.5f}",
            f"  pretrusted mean reputation: {self.pretrusted_mean:.5f}",
            f"  requests captured by colluders: {self.colluder_request_share:.1%}",
        ]
        return "\n".join(lines)


@dataclass(frozen=True)
class Scenario:
    """A fully wired, not-yet-run simulation world.

    Produced by :func:`build_scenario`; call :meth:`run` to execute it.
    The underlying :class:`~repro.experiments.setup.BuiltWorld` stays
    reachable through :attr:`world` for callers that need the raw parts.
    """

    config: WorldConfig
    seed: int
    run_index: int
    world: BuiltWorld

    @property
    def simulation(self) -> Simulation:
        return self.world.simulation

    @property
    def observability(self) -> Observability | None:
        return self.world.observability

    def run(self, simulation_cycles: int | None = None) -> ScenarioResult:
        """Run the simulation (optionally overriding the cycle count)."""
        metrics = self.world.simulation.run(simulation_cycles)
        return ScenarioResult(
            config=self.config,
            seed=self.seed,
            run_index=self.run_index,
            world=self.world,
            metrics=metrics,
            reputations=metrics.final_reputations(),
            history=metrics.reputation_history(),
            observability=self.world.observability,
        )


_WORLD_FIELDS = frozenset(f.name for f in fields(WorldConfig))

#: WorldConfig fields a ScenarioSpec may override (system/collusion are
#: first-class spec fields, not world overrides).
_SPEC_WORLD_FIELDS = _WORLD_FIELDS - {"system", "collusion"}


@dataclass(frozen=True)
class ScenarioSpec:
    """Typed, immutable, serialisable description of one scenario.

    A spec is the value-object form of a :func:`build_scenario` call:
    which reputation ``system`` to run, which ``collusion`` model to
    schedule, the RNG identity ``(seed, run_index)``, and any
    :class:`~repro.experiments.setup.WorldConfig` overrides in ``world``
    (keyed by field name, e.g. ``{"n_nodes": 100, "engine": "batched"}``).

    ``system`` and ``collusion`` accept strings and are resolved to their
    enum members on construction; ``world`` is validated against the
    WorldConfig field set and frozen behind a read-only mapping, so a
    constructed spec is always well-formed.  Specs round-trip through
    plain JSON dicts (:meth:`to_dict` / :meth:`from_dict`), which is how
    recorded event streams and service checkpoints carry their scenario
    identity.

    >>> spec = ScenarioSpec.from_kwargs(
    ...     system="EigenTrust+SocialTrust", collusion="pcm",
    ...     seed=7, n_nodes=50, n_colluders=10,
    ... )
    >>> spec == ScenarioSpec.from_dict(spec.to_dict())
    True
    """

    system: SystemKind = SystemKind.EIGENTRUST
    collusion: CollusionKind = CollusionKind.NONE
    seed: int = 0
    run_index: int = 0
    world: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "system", _resolve_system(self.system, None)
        )
        object.__setattr__(
            self, "collusion", _resolve_collusion(self.collusion)
        )
        world = dict(self.world)
        unknown = sorted(set(world) - _SPEC_WORLD_FIELDS)
        if unknown:
            raise ValueError(
                f"ScenarioSpec.world got unknown WorldConfig field(s) "
                f"{unknown}; valid fields: {sorted(_SPEC_WORLD_FIELDS)}"
            )
        object.__setattr__(self, "world", MappingProxyType(world))

    def __hash__(self) -> int:
        return hash(
            (
                self.system,
                self.collusion,
                self.seed,
                self.run_index,
                tuple(sorted(self.world.items(), key=lambda kv: kv[0])),
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScenarioSpec):
            return NotImplemented
        return (
            self.system is other.system
            and self.collusion is other.collusion
            and self.seed == other.seed
            and self.run_index == other.run_index
            and dict(self.world) == dict(other.world)
        )

    @classmethod
    def from_kwargs(
        cls,
        *,
        seed: int = 0,
        run_index: int = 0,
        system: SystemKind | str = SystemKind.EIGENTRUST,
        use_socialtrust: bool | None = None,
        collusion: CollusionKind | str = CollusionKind.NONE,
        **config_fields: Any,
    ) -> "ScenarioSpec":
        """Build a spec from the same keywords :func:`build_scenario` takes."""
        unknown = sorted(set(config_fields) - _SPEC_WORLD_FIELDS)
        if unknown:
            raise TypeError(
                f"ScenarioSpec.from_kwargs() got unknown keyword(s) "
                f"{unknown}; valid keywords are the WorldConfig fields "
                f"plus seed/run_index/system/use_socialtrust/collusion"
            )
        return cls(
            system=_resolve_system(system, use_socialtrust),
            collusion=_resolve_collusion(collusion),
            seed=seed,
            run_index=run_index,
            world=config_fields,
        )

    @classmethod
    def from_build(
        cls,
        build: Mapping[str, Any],
        *,
        seed: int = 0,
        run_index: int = 0,
    ) -> "ScenarioSpec":
        """Build a spec from a flat build-keyword mapping.

        ``build`` is the shape golden traces and checkpoint headers use:
        WorldConfig fields plus optional ``system`` / ``collusion`` string
        keys, e.g. ``{"system": "eBay+SocialTrust", "collusion": "mcm",
        "n_nodes": 30}``.
        """
        build = dict(build)
        return cls(
            system=_resolve_system(
                build.pop("system", SystemKind.EIGENTRUST), None
            ),
            collusion=_resolve_collusion(
                build.pop("collusion", CollusionKind.NONE)
            ),
            seed=seed,
            run_index=run_index,
            world=build,
        )

    def build_kwargs(self) -> dict[str, Any]:
        """Flat build mapping (inverse of :meth:`from_build`).

        Enum values come back as their string names, so the result is
        JSON-safe and matches the golden-trace / checkpoint header shape.
        """
        out: dict[str, Any] = {
            "system": self.system.value,
            "collusion": self.collusion.value,
        }
        out.update(self.world)
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict: ``{system, collusion, seed, run_index, world}``."""
        return {
            "system": self.system.value,
            "collusion": self.collusion.value,
            "seed": self.seed,
            "run_index": self.run_index,
            "world": dict(self.world),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        data = dict(data)
        unknown = sorted(
            set(data) - {"system", "collusion", "seed", "run_index", "world"}
        )
        if unknown:
            raise ValueError(f"ScenarioSpec.from_dict: unknown key(s) {unknown}")
        return cls(
            system=data.get("system", SystemKind.EIGENTRUST),
            collusion=data.get("collusion", CollusionKind.NONE),
            seed=int(data.get("seed", 0)),
            run_index=int(data.get("run_index", 0)),
            world=data.get("world", {}),
        )

    def with_updates(self, **changes: Any) -> "ScenarioSpec":
        """Copy of this spec with field- or world-level overrides.

        Spec fields (``system``, ``collusion``, ``seed``, ``run_index``,
        ``world``) replace wholesale; any other keyword is treated as a
        WorldConfig override merged into :attr:`world`.
        """
        spec_fields = {"system", "collusion", "seed", "run_index", "world"}
        direct = {k: v for k, v in changes.items() if k in spec_fields}
        world_updates = {k: v for k, v in changes.items() if k not in spec_fields}
        world = dict(direct.pop("world", self.world))
        world.update(world_updates)
        return replace(self, world=world, **direct)


@deprecated_alias(
    n_cycles="simulation_cycles",
    cycles="simulation_cycles",
    exploration="selection_exploration",
    policy="selection_policy",
    malicious_authentic_prob="colluder_b",
    ratings_per_cycle="pcm_ratings_per_cycle",
    query_cycles_per_simulation_cycle="query_cycles",
)
def build_scenario(
    spec: ScenarioSpec | None = None,
    *,
    seed: int = 0,
    run_index: int = 0,
    system: SystemKind | str = SystemKind.EIGENTRUST,
    use_socialtrust: bool | None = None,
    collusion: CollusionKind | str = CollusionKind.NONE,
    observability: bool | Observability | None = None,
    **config_fields,
) -> Scenario:
    """Build one fully wired scenario from a spec or keyword arguments.

    Pass either a :class:`ScenarioSpec` positionally (``observability`` is
    the only keyword that may accompany it) or the legacy keyword bag:
    ``system`` and ``collusion`` accept the enum members or their string
    names (``"EigenTrust+SocialTrust"``, ``"pcm"``, ...); setting
    ``use_socialtrust`` swaps a base system for its SocialTrust-wrapped
    variant (or back).  ``observability=True`` (or a pre-built
    :class:`~repro.obs.Observability`) attaches span tracing, the metrics
    registry and the detector audit log; the bundle comes back on
    :attr:`Scenario.observability` / :attr:`ScenarioResult.observability`.
    Every other keyword must be a
    :class:`~repro.experiments.setup.WorldConfig` field and is forwarded
    verbatim.  ``(seed, run_index)`` key the RNG streams exactly as
    :func:`~repro.experiments.setup.build_world` does.
    """
    if spec is not None:
        if not isinstance(spec, ScenarioSpec):
            raise TypeError(
                f"build_scenario() positional argument must be a "
                f"ScenarioSpec, got {type(spec).__name__}"
            )
        if (
            config_fields
            or seed != 0
            or run_index != 0
            or system is not SystemKind.EIGENTRUST
            or use_socialtrust is not None
            or collusion is not CollusionKind.NONE
        ):
            raise TypeError(
                "build_scenario() takes either a ScenarioSpec or scenario "
                "keywords, not both (observability may accompany a spec); "
                "use spec.with_updates(...) to vary a spec"
            )
        resolved_system = spec.system
        resolved_collusion = spec.collusion
        seed, run_index = spec.seed, spec.run_index
        config_fields = dict(spec.world)
    else:
        unknown = sorted(set(config_fields) - _WORLD_FIELDS)
        if unknown:
            raise TypeError(
                f"build_scenario() got unknown keyword(s) {unknown}; valid "
                f"keywords are the WorldConfig fields plus seed/run_index/"
                f"system/use_socialtrust/collusion/observability"
            )
        resolved_system = _resolve_system(system, use_socialtrust)
        resolved_collusion = _resolve_collusion(collusion)
    if observability is True:
        obs: Observability | None = Observability()
    elif observability is False:
        obs = None
    else:
        obs = observability
    config = WorldConfig(
        system=resolved_system,
        collusion=resolved_collusion,
        **config_fields,
    )
    world = build_world(config, seed=seed, run_index=run_index, observability=obs)
    return Scenario(config=config, seed=seed, run_index=run_index, world=world)


@deprecated_param(
    "progress",
    reason="the facade never rendered progress output; wrap the call at the "
    "call site if you need it",
)
@deprecated_alias(
    n_cycles="simulation_cycles",
    cycles="simulation_cycles",
    exploration="selection_exploration",
    policy="selection_policy",
    malicious_authentic_prob="colluder_b",
    ratings_per_cycle="pcm_ratings_per_cycle",
    query_cycles_per_simulation_cycle="query_cycles",
)
def run_scenario(
    spec: ScenarioSpec | None = None,
    *,
    seed: int = 0,
    run_index: int = 0,
    system: SystemKind | str = SystemKind.EIGENTRUST,
    use_socialtrust: bool | None = None,
    collusion: CollusionKind | str = CollusionKind.NONE,
    observability: bool | Observability | None = None,
    **config_fields,
) -> ScenarioResult:
    """Build and run a scenario in one call.

    Mirrors :func:`build_scenario` exactly — a :class:`ScenarioSpec`
    positionally, or the explicit keyword surface (``seed``,
    ``run_index``, ``system``, ``use_socialtrust``, ``collusion``,
    ``observability``, plus any WorldConfig field such as
    ``simulation_cycles``) — then runs the world to completion.
    """
    return build_scenario(
        spec,
        seed=seed,
        run_index=run_index,
        system=system,
        use_socialtrust=use_socialtrust,
        collusion=collusion,
        observability=observability,
        **config_fields,
    ).run()


def run_experiment(experiment_id: str, **kwargs):
    """Run one registered table/figure experiment and return its result.

    Thin wrapper over the :mod:`repro.experiments.registry` lookup so the
    CLI and the reproduction script share a single audited entry point;
    ``kwargs`` (``n_runs``, ``simulation_cycles``, ``seed``, ...) are
    forwarded to the experiment callable.
    """
    return get_experiment(experiment_id)(**kwargs)


# The streaming-service event surface is part of the public API.  The
# event module is a leaf (it never imports repro.api), so this import is
# cycle-safe in both directions; ReputationService lives higher in the
# stack and is re-exported lazily below.
from repro.serve.events import (  # noqa: E402
    ChurnEvent,
    InteractionEvent,
    QueryRequest,
    QueryResult,
    RatingEvent,
    WatermarkEvent,
)

__all__ += [
    "RatingEvent",
    "InteractionEvent",
    "ChurnEvent",
    "WatermarkEvent",
    "QueryRequest",
    "QueryResult",
    "ReputationService",
]


def __getattr__(name: str):
    # Lazy so that `import repro.serve` → `import repro.api` doesn't
    # recurse back into the partially initialised serve package.
    if name == "ReputationService":
        from repro.serve.service import ReputationService

        return ReputationService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
