"""Unstructured P2P network simulator.

A discrete-cycle simulator of the paper's experimental platform
(Section 5.1): an interest-based unstructured overlay where, each *query
cycle*, every active peer requests a resource in one of its interests from
an interest neighbour, rates the outcome (+1 authentic / -1 inauthentic),
and — at the end of each *simulation cycle* (30 query cycles) — the
attached reputation system recomputes global reputations that steer the
next cycles' server selection.
"""

from repro.p2p.dht import ChordRing
from repro.p2p.engine import BatchedQueryEngine, EngineMode
from repro.p2p.metrics import MetricsCollector
from repro.p2p.network import InterestOverlay
from repro.p2p.node import NodeKind, NodeSpec, Population
from repro.p2p.selection import SelectionPolicy, select_server
from repro.p2p.simulator import Simulation, SimulationConfig

__all__ = [
    "BatchedQueryEngine",
    "ChordRing",
    "EngineMode",
    "MetricsCollector",
    "InterestOverlay",
    "NodeKind",
    "NodeSpec",
    "Population",
    "SelectionPolicy",
    "select_server",
    "Simulation",
    "SimulationConfig",
]
