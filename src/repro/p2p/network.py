"""Interest-based unstructured overlay.

"Nodes with the same interests are connected with each other, and a node
requests resources from its interest neighbors" (Section 5.1).  The
overlay is therefore fully determined by the declared interest sets: two
peers are neighbours iff their interest sets intersect, and the candidate
servers for a request on interest ``l`` are the other peers declaring
``l``.

Both relations are precomputed as NumPy index arrays so the simulator's
inner loop does no set algebra.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["InterestOverlay"]


class InterestOverlay:
    """Neighbour/provider structure induced by declared interest sets."""

    def __init__(self, interest_sets: Sequence[frozenset[int]], n_interests: int) -> None:
        if not interest_sets:
            raise ValueError("overlay needs at least one node")
        if n_interests <= 0:
            raise ValueError(f"n_interests must be positive, got {n_interests}")
        n = len(interest_sets)
        membership = np.zeros((n, n_interests), dtype=bool)
        for node, interests in enumerate(interest_sets):
            if not interests:
                raise ValueError(f"node {node} has an empty interest set")
            for v in interests:
                if not 0 <= v < n_interests:
                    raise ValueError(
                        f"interest {v} of node {node} out of range [0, {n_interests})"
                    )
                membership[node, v] = True
        self._membership = membership
        shared = membership @ membership.T
        np.fill_diagonal(shared, 0)
        self._neighbor_mask = shared > 0
        self._providers = [
            np.flatnonzero(membership[:, interest]).astype(np.int64)
            for interest in range(n_interests)
        ]
        self._neighbors = [
            np.flatnonzero(self._neighbor_mask[i]).astype(np.int64) for i in range(n)
        ]

    @property
    def n_nodes(self) -> int:
        return self._membership.shape[0]

    @property
    def n_interests(self) -> int:
        return self._membership.shape[1]

    def neighbors(self, node: int) -> np.ndarray:
        """Ids of peers sharing at least one interest with ``node``."""
        return self._neighbors[node]

    def shares_interest(self, i: int, j: int) -> bool:
        return bool(self._neighbor_mask[i, j])

    def providers(self, interest: int) -> np.ndarray:
        """All peers declaring ``interest`` (including potential requesters)."""
        return self._providers[interest]

    def candidate_servers(self, node: int, interest: int) -> np.ndarray:
        """Peers that can serve ``node``'s request on ``interest``.

        Providers of the interest, excluding the requester itself.  (Every
        provider of one of the requester's interests is by construction an
        interest neighbour.)
        """
        providers = self._providers[interest]
        return providers[providers != node]

    def interest_membership(self) -> np.ndarray:
        """Read-only boolean node-by-interest membership matrix."""
        view = self._membership.view()
        view.flags.writeable = False
        return view
