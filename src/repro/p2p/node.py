"""Peer behaviour models.

The paper's node model (Section 5.1) has three kinds of peers:

* **pre-trusted** — always serve authentic resources (``B = 1``);
* **normal** — serve authentic resources with probability 0.8;
* **malicious** — serve authentic resources with probability ``B``
  (0.2 or 0.6 in the collusion experiments, uniform over [0.2, 0.6] in the
  colluder-free baseline).  Malicious peers optionally *collude* — the
  collusion behaviour itself lives in :mod:`repro.collusion`.

Each peer also carries a per-query-cycle service capacity (50 in the
paper), an activity probability drawn from [0.5, 1], and a declared
interest set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.rng import RngStream
from repro.utils.validation import check_probability

__all__ = ["NodeKind", "NodeSpec", "Population"]


class NodeKind(enum.Enum):
    """Behaviour class of a peer (Section 5.1's node model)."""

    PRETRUSTED = "pretrusted"
    NORMAL = "normal"
    MALICIOUS = "malicious"


@dataclass(frozen=True)
class NodeSpec:
    """Static behaviour parameters of one peer."""

    node_id: int
    kind: NodeKind
    #: Probability of serving an authentic resource (``B`` for malicious).
    authentic_prob: float
    #: Requests the node can serve per query cycle.
    capacity: int
    #: Probability the node issues a query in a given query cycle.
    activity: float
    #: Declared interest categories.
    interests: frozenset[int]

    def __post_init__(self) -> None:
        check_probability("authentic_prob", self.authentic_prob)
        check_probability("activity", self.activity)
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if not self.interests:
            raise ValueError("every node needs at least one interest")


class Population:
    """All peers of one simulated network, indexable by node id."""

    def __init__(self, specs: Sequence[NodeSpec]) -> None:
        specs = list(specs)
        if not specs:
            raise ValueError("population must not be empty")
        ids = [s.node_id for s in specs]
        if ids != list(range(len(specs))):
            raise ValueError("node ids must be dense 0..n-1 and in order")
        self._specs = tuple(specs)
        self._authentic = np.array([s.authentic_prob for s in specs])
        self._activity = np.array([s.activity for s in specs])
        self._capacity = np.array([s.capacity for s in specs], dtype=np.int64)

    def __len__(self) -> int:
        return len(self._specs)

    def __getitem__(self, node_id: int) -> NodeSpec:
        return self._specs[node_id]

    def __iter__(self):
        return iter(self._specs)

    @property
    def n_nodes(self) -> int:
        return len(self._specs)

    @property
    def authentic_probs(self) -> np.ndarray:
        return self._authentic

    @property
    def activity_probs(self) -> np.ndarray:
        return self._activity

    @property
    def capacities(self) -> np.ndarray:
        return self._capacity

    def ids_of_kind(self, kind: NodeKind) -> tuple[int, ...]:
        return tuple(s.node_id for s in self._specs if s.kind is kind)

    def kind_mask(self, kind: NodeKind) -> np.ndarray:
        return np.array([s.kind is kind for s in self._specs])

    @classmethod
    def build(
        cls,
        n_nodes: int,
        rng: RngStream,
        *,
        pretrusted_ids: Iterable[int] = (),
        malicious_ids: Iterable[int] = (),
        n_interests: int = 20,
        interests_per_node: tuple[int, int] = (1, 10),
        capacity: int = 50,
        activity_range: tuple[float, float] = (0.5, 1.0),
        normal_authentic_prob: float = 0.8,
        malicious_authentic_prob: float | tuple[float, float] = 0.2,
    ) -> "Population":
        """Construct the paper's population.

        ``malicious_authentic_prob`` may be a scalar ``B`` (all malicious
        peers share it — the collusion experiments) or a ``(low, high)``
        range sampled per node (the colluder-free baseline).
        """
        pretrusted = set(int(x) for x in pretrusted_ids)
        malicious = set(int(x) for x in malicious_ids)
        if pretrusted & malicious:
            raise ValueError("a node cannot be both pre-trusted and malicious")
        for x in pretrusted | malicious:
            if not 0 <= x < n_nodes:
                raise ValueError(f"node id {x} out of range [0, {n_nodes})")
        lo_i, hi_i = interests_per_node
        if not 1 <= lo_i <= hi_i <= n_interests:
            raise ValueError(
                f"interests_per_node {interests_per_node} incompatible with "
                f"{n_interests} interest categories"
            )
        lo_a, hi_a = activity_range
        specs = []
        for node_id in range(n_nodes):
            if node_id in pretrusted:
                kind = NodeKind.PRETRUSTED
                prob = 1.0
            elif node_id in malicious:
                kind = NodeKind.MALICIOUS
                if isinstance(malicious_authentic_prob, tuple):
                    b_lo, b_hi = malicious_authentic_prob
                    prob = float(rng.uniform(b_lo, b_hi))
                else:
                    prob = float(malicious_authentic_prob)
            else:
                kind = NodeKind.NORMAL
                prob = normal_authentic_prob
            k = int(rng.integers(lo_i, hi_i + 1))
            interests = frozenset(
                int(v) for v in rng.choice(n_interests, size=k, replace=False)
            )
            specs.append(
                NodeSpec(
                    node_id=node_id,
                    kind=kind,
                    authentic_prob=prob,
                    capacity=capacity,
                    activity=float(rng.uniform(lo_a, hi_a)),
                    interests=interests,
                )
            )
        return cls(specs)
