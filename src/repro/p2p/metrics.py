"""Simulation metrics.

Collects exactly what the evaluation section reports:

* per-simulation-cycle reputation snapshots (the Fig. 8-18 distributions);
* request routing counts — how many genuine service requests each node
  served, and what share went to a designated group (Table 1 and
  Fig. 7(c));
* convergence — the first simulation cycle after which every node of a
  group stays below a reputation threshold (Fig. 19);
* faults — when a :class:`~repro.faults.injector.FaultInjector` is
  attached, its :class:`~repro.faults.metrics.FaultMetrics` (event log,
  retry/timeout/fallback/reassignment counters, per-cycle degradation
  series) is exposed here next to the reputation history, and
  :meth:`MetricsCollector.reputation_error_series` turns the snapshots
  into the reputation-error-vs-fault-rate curves the robustness
  benchmarks plot.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.faults.metrics import FaultMetrics

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Accumulates routing counts and reputation history for one run."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        self._n = int(n_nodes)
        self._served = np.zeros(n_nodes, dtype=np.int64)
        self._issued = np.zeros(n_nodes, dtype=np.int64)
        self._unserved = 0
        self._snapshots: list[np.ndarray] = []
        self._faults = FaultMetrics()

    @property
    def n_nodes(self) -> int:
        return self._n

    # -- fault observability ----------------------------------------------------

    @property
    def faults(self) -> FaultMetrics:
        """Fault counters and series (empty unless an injector recorded)."""
        return self._faults

    def attach_faults(self, faults: FaultMetrics) -> None:
        """Adopt an external fault-metrics sink (the injector's), so all
        fault recording of one run lands in a single instance."""
        self._faults = faults

    def publish(self, registry, *, cycles_run: int | None = None) -> None:
        """Mirror the cumulative routing totals into a
        :class:`~repro.obs.registry.MetricsRegistry` as gauges.

        Called once per simulation cycle by an observability-enabled
        :class:`~repro.p2p.simulator.Simulation`; gauges (not counters)
        because the collector's totals are already cumulative.
        """
        registry.gauge("sim.requests.issued").set(self.total_requests)
        registry.gauge("sim.requests.served").set(self.total_served)
        registry.gauge("sim.requests.unserved").set(self._unserved)
        registry.gauge("sim.snapshots").set(self.n_snapshots)
        if cycles_run is not None:
            registry.gauge("sim.cycles_run").set(cycles_run)

    # -- request routing ------------------------------------------------------

    def record_request(self, client: int, server: int) -> None:
        self._issued[client] += 1
        self._served[server] += 1

    def record_unserved(self, client: int) -> None:
        self._issued[client] += 1
        self._unserved += 1

    def record_requests(self, clients: np.ndarray, servers: np.ndarray) -> None:
        """Batched :meth:`record_request` (counters are order-independent)."""
        c = np.asarray(clients, dtype=np.int64)
        s = np.asarray(servers, dtype=np.int64)
        if c.shape != s.shape or c.ndim != 1:
            raise ValueError("clients and servers must be 1-D arrays of equal length")
        if c.size == 0:
            return
        self._issued += np.bincount(c, minlength=self._n)
        self._served += np.bincount(s, minlength=self._n)

    def record_unserved_many(self, clients: np.ndarray) -> None:
        """Batched :meth:`record_unserved`."""
        c = np.asarray(clients, dtype=np.int64)
        if c.ndim != 1:
            raise ValueError("clients must be a 1-D array")
        if c.size == 0:
            return
        self._issued += np.bincount(c, minlength=self._n)
        self._unserved += int(c.size)

    @property
    def total_requests(self) -> int:
        return int(self._issued.sum())

    @property
    def total_served(self) -> int:
        return int(self._served.sum())

    @property
    def unserved(self) -> int:
        return self._unserved

    def served_by(self, nodes: Sequence[int]) -> int:
        ids = np.asarray(list(nodes), dtype=np.int64)
        return int(self._served[ids].sum()) if ids.size else 0

    def fraction_served_by(self, nodes: Sequence[int]) -> float:
        """Share of all *served* requests handled by ``nodes``."""
        total = self.total_served
        if total == 0:
            return 0.0
        return self.served_by(nodes) / total

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Routing counters and snapshot history.  The fault sink is *not*
        serialized here: when an injector is attached, :meth:`attach_faults`
        shares the injector's own :class:`FaultMetrics`, which the injector
        checkpoints — restoring it twice would fork the instance."""
        return {
            "served": self._served.copy(),
            "issued": self._issued.copy(),
            "unserved": self._unserved,
            "snapshots": [s.copy() for s in self._snapshots],
        }

    def restore_state(self, state: dict) -> None:
        served = np.asarray(state["served"], dtype=np.int64)
        issued = np.asarray(state["issued"], dtype=np.int64)
        if served.shape != (self._n,) or issued.shape != (self._n,):
            raise ValueError("routing counter shape does not match collector")
        self._served = served.copy()
        self._issued = issued.copy()
        self._unserved = int(state["unserved"])
        self._snapshots = [
            np.asarray(s, dtype=np.float64).copy() for s in state["snapshots"]
        ]

    # -- reputation history -----------------------------------------------------

    def snapshot(self, reputations: np.ndarray) -> None:
        reps = np.asarray(reputations, dtype=np.float64)
        if reps.shape != (self._n,):
            raise ValueError(
                f"snapshot shape {reps.shape} != ({self._n},)"
            )
        self._snapshots.append(reps.copy())

    @property
    def n_snapshots(self) -> int:
        return len(self._snapshots)

    def reputation_history(self) -> np.ndarray:
        """(n_cycles, n_nodes) array of end-of-cycle reputations."""
        if not self._snapshots:
            return np.zeros((0, self._n))
        return np.vstack(self._snapshots)

    def final_reputations(self) -> np.ndarray:
        if not self._snapshots:
            return np.zeros(self._n)
        return self._snapshots[-1].copy()

    def reputation_error_series(self, reference: np.ndarray) -> np.ndarray:
        """Per-cycle mean absolute reputation error against ``reference``.

        ``reference`` is either one vector (the converged fault-free
        reputations) or a per-cycle ``(n_cycles, n_nodes)`` history; the
        result is the L1 distance per node at each snapshot — the y-axis
        of the reputation-error-vs-fault-rate degradation curves.
        """
        history = self.reputation_history()
        ref = np.asarray(reference, dtype=np.float64)
        if ref.ndim == 1:
            if ref.shape != (self._n,):
                raise ValueError(f"reference shape {ref.shape} != ({self._n},)")
            return np.abs(history - ref[None, :]).mean(axis=1)
        if ref.shape != history.shape:
            raise ValueError(
                f"reference history shape {ref.shape} != {history.shape}"
            )
        return np.abs(history - ref).mean(axis=1)

    def cycles_until_mean_below(
        self, nodes: Sequence[int], threshold: float
    ) -> int | None:
        """First 1-based cycle from which the *mean* reputation of ``nodes``
        stays below ``threshold``; ``None`` if that never happens.

        The per-node variant (:meth:`cycles_until_below`) is strict — one
        node briefly popping above the bar resets it; the group mean is the
        robust summary Fig. 19's convergence comparison needs.
        """
        ids = np.asarray(list(nodes), dtype=np.int64)
        if ids.size == 0:
            raise ValueError("nodes must be non-empty")
        history = self.reputation_history()
        if history.shape[0] == 0:
            return None
        below = history[:, ids].mean(axis=1) < threshold
        failing = np.flatnonzero(~below)
        if failing.size == 0:
            return 1
        first = int(failing[-1]) + 1
        if first >= history.shape[0]:
            return None
        return first + 1

    def cycles_until_below(
        self, nodes: Sequence[int], threshold: float
    ) -> int | None:
        """First 1-based cycle from which every node in ``nodes`` stays below
        ``threshold`` until the end of the run; ``None`` if that never happens.
        """
        ids = np.asarray(list(nodes), dtype=np.int64)
        if ids.size == 0:
            raise ValueError("nodes must be non-empty")
        history = self.reputation_history()
        if history.shape[0] == 0:
            return None
        below = np.all(history[:, ids] < threshold, axis=1)
        # Last index where the condition fails; converged from the next one.
        failing = np.flatnonzero(~below)
        if failing.size == 0:
            return 1
        first = int(failing[-1]) + 1
        if first >= history.shape[0]:
            return None
        return first + 1
