"""Reputation-guided server selection.

The paper's selection rule: "a node randomly chooses a neighbor with
available capacity greater than 0 and reputation higher than T_R = 0.01".
Since every node starts at reputation 0, a pure threshold rule would
deadlock; the paper resolves this by random choice "at the initial stage"
and notes that chosen nodes "subsequently have a higher probability to be
chosen".  Three policies capture the space:

* :attr:`SelectionPolicy.RANDOM` — uniform over capacity-positive
  candidates (reputation ignored);
* :attr:`SelectionPolicy.THRESHOLD_RANDOM` — uniform over candidates above
  the reputation threshold, uniform over all capacity-positive candidates
  when none qualifies;
* :attr:`SelectionPolicy.REPUTATION_WEIGHTED` — probability proportional to
  reputation among candidates above the threshold, with the same uniform
  fallback.  This is the default: it reproduces the rich-get-richer
  dynamics the paper describes (high-reputed nodes attract more requests —
  the very dynamics that make reputation boosting profitable).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.utils.rng import RngStream

__all__ = ["SelectionPolicy", "select_server"]


class SelectionPolicy(enum.Enum):
    """How a requester chooses among capacity-positive candidate servers."""

    RANDOM = "random"
    THRESHOLD_RANDOM = "threshold_random"
    REPUTATION_WEIGHTED = "reputation_weighted"


def select_server(
    candidates: np.ndarray,
    reputations: np.ndarray,
    remaining_capacity: np.ndarray,
    rng: RngStream,
    *,
    threshold: float = 0.01,
    policy: SelectionPolicy = SelectionPolicy.REPUTATION_WEIGHTED,
    exploration: float = 0.0,
) -> int | None:
    """Pick a server for one request; ``None`` when no candidate has capacity.

    Parameters
    ----------
    candidates:
        Node ids eligible to serve the request (interest providers).
    reputations:
        Current global reputation vector.
    remaining_capacity:
        Per-node remaining capacity for the current query cycle.
    threshold:
        The paper's ``T_R`` reputation floor for preferred selection.
    policy:
        Selection rule applied to above-threshold candidates.
    exploration:
        Probability of ignoring reputations entirely and picking uniformly
        among capacity-positive candidates.  A strictly threshold-gated
        rule starves every sub-threshold node of traffic completely, which
        contradicts the trace dynamics the paper reports (low-reputed
        nodes attract *less* traffic, not none) and freezes the reputation
        system's ability to ever re-evaluate a node; a small exploration
        fraction keeps the market open.
    """
    if not 0.0 <= exploration <= 1.0:
        raise ValueError(f"exploration must be in [0, 1], got {exploration}")
    if candidates.size == 0:
        return None
    available = candidates[remaining_capacity[candidates] > 0]
    if available.size == 0:
        return None
    if policy is SelectionPolicy.RANDOM:
        return int(rng.choice(available))
    if exploration > 0.0 and rng.random() < exploration:
        return int(rng.choice(available))
    reps = reputations[available]
    qualified = available[reps > threshold]
    if qualified.size == 0:
        return int(rng.choice(available))
    if policy is SelectionPolicy.THRESHOLD_RANDOM:
        return int(rng.choice(qualified))
    weights = reputations[qualified]
    total = weights.sum()
    if total <= 0:
        return int(rng.choice(qualified))
    return int(rng.choice(qualified, p=weights / total))
