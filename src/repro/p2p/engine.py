"""Batched query-cycle engine — the vectorised simulation hot path.

The seed implementation of :meth:`repro.p2p.simulator.Simulation` walks a
Python loop over all peers and, for every active client, pays for

* one ``Generator.choice(interests, p=zipf)`` (~16 µs: numpy rebuilds the
  cumulative distribution on every call), and
* one :func:`repro.p2p.selection.select_server` (three boolean gathers plus
  another ``choice``), and
* four Python-level ledger/metric ``record`` calls.

:class:`BatchedQueryEngine` removes all of that **without changing a single
random draw**.  Three observations make this possible:

1. ``Generator.choice`` is exactly replicable with cheaper primitives:
   ``choice(a)`` consumes one bounded ``integers(0, a.size)`` draw, and
   ``choice(a, p=p)`` computes ``cdf = p.cumsum(); cdf /= cdf[-1]`` and
   inverts one ``random()`` draw with ``cdf.searchsorted(u, 'right')``.
   Pre-computing the cumulative weights once (per node for the Zipf
   interest choice, per interest group for reputation-weighted selection)
   and inverting with :func:`bisect.bisect_right` yields the identical
   server for the identical stream position at a fraction of the cost.

2. Reputations only change at simulation-cycle boundaries, so the
   available/qualified provider sets of every interest group are constant
   within an interval — except for capacity exhaustion.
   :meth:`BatchedQueryEngine.begin_interval` hoists those structures once
   per simulation cycle.

3. Capacity exhaustion is *monotone* within a query cycle (capacity never
   replenishes mid-cycle), so instead of re-filtering candidates per
   request, the engine removes a server from its interests' sorted
   candidate lists the moment its capacity hits zero and rebuilds the
   affected weighted cdfs from the surviving weights (``np.delete`` keeps
   the exact doubles a fresh gather would produce).  Per-request selection
   is then a couple of list lookups and one bisect, regardless of how
   saturated the cycle gets.

Outcomes are buffered per query cycle and flushed through the batched
``record_many`` entry points of the rating/interaction/profile/metric
ledgers (``np.add.at`` is unbuffered and the increments are exact
``float64`` integers, so batching preserves bit-identity as well).

The seed loop is kept verbatim behind :attr:`EngineMode.SCALAR` — it is
the reference implementation the property tests and the engine benchmark
compare against.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, bisect_right
from time import perf_counter

import numpy as np

from repro.collusion.models import CollusionSchedule
from repro.faults.injector import FaultInjector
from repro.obs import NULL_TRACER, Observability
from repro.p2p.metrics import MetricsCollector
from repro.p2p.network import InterestOverlay
from repro.p2p.node import Population
from repro.p2p.selection import SelectionPolicy
from repro.reputation.ledger import RatingLedger
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles
from repro.utils.rng import RngStream

__all__ = ["EngineMode", "BatchedQueryEngine"]


class EngineMode(enum.Enum):
    """Which query-cycle implementation a simulation runs.

    ``SCALAR`` is the seed per-client loop (reference implementation);
    ``BATCHED`` is the vectorised engine, bit-identical to it.
    """

    SCALAR = "scalar"
    BATCHED = "batched"


class BatchedQueryEngine:
    """Drop-in replacement for ``Simulation._run_query_cycle``.

    Consumes the simulation's :class:`~repro.utils.rng.RngStream` in
    exactly the seed order; see the module docstring for why the streams
    stay aligned.  :meth:`begin_interval` must be called once per
    simulation cycle (after fault-injector advance/decay, before the first
    query cycle) so the hoisted per-interest structures see the current
    reputations and online mask.
    """

    def __init__(
        self,
        population: Population,
        overlay: InterestOverlay,
        rng: RngStream,
        *,
        threshold: float,
        policy: SelectionPolicy,
        exploration: float,
        interest_choices: list[np.ndarray],
        interest_weights: list[np.ndarray],
        ledger: RatingLedger,
        interactions: InteractionLedger,
        profiles: InterestProfiles,
        metrics: MetricsCollector,
        collusion: CollusionSchedule,
        injector: FaultInjector | None,
        observability: Observability | None = None,
    ) -> None:
        self._n = population.n_nodes
        self._rng = rng
        # Observability hooks.  With no bundle attached the tracer is the
        # shared no-op and every phase costs one null context manager; the
        # per-request paths additionally gate on ``_trace_on`` so timing
        # calls vanish entirely (the ≤5% budget of the obs benchmark).
        self._obs = observability
        self._tracer = observability.tracer if observability is not None else NULL_TRACER
        self._trace_on = self._tracer.enabled
        self._cache_patch_s = 0.0
        self._threshold = float(threshold)
        self._policy = policy
        self._exploration = float(exploration)
        self._ledger = ledger
        self._interactions = interactions
        self._profiles = profiles
        self._metrics = metrics
        self._collusion = collusion
        self._injector = injector

        self._capacities = population.capacities
        self._activity = population.activity_probs
        self._authentic: list[float] = population.authentic_probs.tolist()

        membership = overlay.interest_membership()
        k = overlay.n_interests
        self._k = k
        self._all_providers = [np.flatnonzero(membership[:, li]) for li in range(k)]
        self._node_interests: list[list[int]] = [
            np.flatnonzero(membership[i]).tolist() for i in range(self._n)
        ]

        # Replicate ``choice(interests, p=weights)``: numpy's internal cdf
        # is weights.cumsum() normalised by its last entry.
        self._choice_lists: list[list[int]] = [c.tolist() for c in interest_choices]
        self._cdf_lists: list[list[float]] = []
        for w in interest_weights:
            cdf = w.cumsum()
            cdf /= cdf[-1]
            self._cdf_lists.append(cdf.tolist())

        # Interval masters, populated by begin_interval(); per-query-cycle
        # working copies diverge from them only on capacity exhaustion and
        # are restored lazily at the next cycle start.
        self._churned = False
        self._online: np.ndarray | None = None
        self._q_list: list[bool] = []
        self._q_mask: np.ndarray | None = None
        self._m_avail: list[list[int]] = []
        self._m_qual: list[list[int]] = []
        self._m_qual_w: list[np.ndarray] = []
        self._m_qual_total: list[float] = []
        self._m_qual_cdf: list[list[float]] = []
        self._avail: list[list[int]] = []
        self._qual: list[list[int]] = []
        self._qual_w: list[np.ndarray] = []
        self._qual_total: list[float] = []
        self._qual_cdf: list[list[float]] = []
        self._modified: set[int] = set()

    # -- per-interval precomputation -----------------------------------------

    def begin_interval(self, reputations: np.ndarray) -> None:
        """Hoist per-interest selection structures for one simulation cycle.

        Reputations and the churn mask are constant between reputation
        updates, so available, qualified and weighted-cdf structures are
        built once here instead of once per request.

        The hoisted structures assume every online server is reachable
        from every client, which a network partition breaks — partitioned
        intervals must run through the scalar reference loop instead
        (:class:`~repro.p2p.simulator.Simulation` routes them there).
        """
        if self._injector is not None and self._injector.partition_active:
            raise RuntimeError(
                "batched engine cannot run a partitioned interval; "
                "route partition cycles through the scalar loop"
            )
        with self._tracer.span("engine.candidate_build", interests=self._k):
            self._begin_interval(reputations)

    def _begin_interval(self, reputations: np.ndarray) -> None:
        reps = np.asarray(reputations, dtype=np.float64)
        online = self._injector.online_mask if self._injector is not None else None
        self._online = online
        self._churned = online is not None and not online.all()
        q_mask = reps > self._threshold
        self._q_mask = q_mask
        self._q_list = q_mask.tolist()

        weighted = self._policy is SelectionPolicy.REPUTATION_WEIGHTED
        threshold_based = self._policy is not SelectionPolicy.RANDOM
        self._m_avail = []
        self._m_qual = []
        self._m_qual_w = []
        self._m_qual_total = []
        self._m_qual_cdf = []
        for prov in self._all_providers:
            if self._churned:
                prov = prov[online[prov]]
            # Providers whose total capacity is zero can never clear the
            # seed's remaining-capacity filter; exclude them outright.
            avail = prov[self._capacities[prov] > 0]
            self._m_avail.append(avail.tolist())
            if not threshold_based:
                continue
            qual = avail[q_mask[avail]]
            self._m_qual.append(qual.tolist())
            if not weighted:
                continue
            w = reps[qual]
            total = float(w.sum())
            self._m_qual_w.append(w)
            self._m_qual_total.append(total)
            if qual.size and total > 0:
                # Same float sequence as select_server + Generator.choice:
                # p = w / total; cdf = p.cumsum(); cdf /= cdf[-1].
                cdf = (w / total).cumsum()
                cdf /= cdf[-1]
                self._m_qual_cdf.append(cdf.tolist())
            else:
                self._m_qual_cdf.append([])
        self._avail = [list(x) for x in self._m_avail]
        self._qual = [list(x) for x in self._m_qual]
        self._qual_w = list(self._m_qual_w)
        self._qual_total = list(self._m_qual_total)
        self._qual_cdf = list(self._m_qual_cdf)
        self._modified = set()

    def _restore_modified(self) -> None:
        """Reset the working candidate structures of interests touched by
        capacity exhaustion back to the interval masters."""
        threshold_based = self._policy is not SelectionPolicy.RANDOM
        weighted = self._policy is SelectionPolicy.REPUTATION_WEIGHTED
        for li in self._modified:
            self._avail[li] = list(self._m_avail[li])
            if threshold_based:
                self._qual[li] = list(self._m_qual[li])
            if weighted:
                self._qual_w[li] = self._m_qual_w[li]
                self._qual_total[li] = self._m_qual_total[li]
                self._qual_cdf[li] = self._m_qual_cdf[li]
        self._modified.clear()

    def _exhaust_server(self, server: int) -> None:
        """Drop a capacity-exhausted server from its interests' candidate
        structures; weighted cdfs are rebuilt with the exact float sequence
        the seed would produce over the surviving candidates."""
        if self._trace_on:
            start = perf_counter()
            try:
                self._exhaust_server_inner(server)
            finally:
                self._cache_patch_s += perf_counter() - start
            return
        self._exhaust_server_inner(server)

    def _exhaust_server_inner(self, server: int) -> None:
        q = self._q_list[server]
        threshold_based = self._policy is not SelectionPolicy.RANDOM
        weighted = self._policy is SelectionPolicy.REPUTATION_WEIGHTED
        for li in self._node_interests[server]:
            self._modified.add(li)
            al = self._avail[li]
            del al[bisect_left(al, server)]
            if not (threshold_based and q):
                continue
            ql = self._qual[li]
            qpos = bisect_left(ql, server)
            del ql[qpos]
            if not weighted:
                continue
            w = np.delete(self._qual_w[li], qpos)
            self._qual_w[li] = w
            total = float(w.sum())
            self._qual_total[li] = total
            if w.size and total > 0:
                cdf = (w / total).cumsum()
                cdf /= cdf[-1]
                self._qual_cdf[li] = cdf.tolist()
            else:
                self._qual_cdf[li] = []

    # -- the hot loop ------------------------------------------------------------

    def run_query_cycle(self, remaining_capacity: np.ndarray) -> None:
        """One query cycle, bit-identical to the seed scalar loop.

        Phase timings (candidate-build lives in :meth:`begin_interval`):

        * ``engine.cache_patch`` — master-restore at cycle start plus the
          per-exhaustion candidate-list patching, accumulated across the
          cycle and emitted as one pre-measured span;
        * ``engine.selection``   — the per-client loop, minus the cache
          patching it triggered (phases stay additive);
        * ``engine.rating_flush``— the batched ledger/metric flush.

        All timing is gated on ``_trace_on``; with tracing disabled the
        cycle runs the exact untimed path.
        """
        trace_on = self._trace_on
        rng = self._rng
        n = self._n
        active_draw = rng.random(n)
        np.copyto(remaining_capacity, self._capacities)
        online = self._online
        churned = self._churned
        if trace_on:
            self._cache_patch_s = 0.0
        if self._modified:
            if trace_on:
                start = perf_counter()
                self._restore_modified()
                self._cache_patch_s += perf_counter() - start
            else:
                self._restore_modified()
        skip = active_draw >= self._activity
        if churned:
            skip |= ~online
        skip_list = skip.tolist()
        perm = rng.permutation(n).tolist()

        random_policy = self._policy is SelectionPolicy.RANDOM
        weighted = self._policy is SelectionPolicy.REPUTATION_WEIGHTED
        exploration = self._exploration
        explore = exploration > 0.0 and not random_policy
        rnd = rng.random
        rint = rng.integers
        choice_lists = self._choice_lists
        cdf_lists = self._cdf_lists
        avail_cur = self._avail
        qual_cur = self._qual
        qual_w_cur = self._qual_w
        qual_total_cur = self._qual_total
        qual_cdf_cur = self._qual_cdf
        q_list = self._q_list
        authentic = self._authentic
        node_interests = self._node_interests

        ev_clients: list[int] = []
        ev_servers: list[int] = []
        ev_values: list[float] = []
        ev_interests: list[int] = []
        unserved: list[int] = []

        cache_before = self._cache_patch_s
        selection_start = perf_counter() if trace_on else 0.0
        for client in perm:
            if skip_list[client]:
                continue
            choices = choice_lists[client]
            if len(choices) == 1:
                interest = choices[0]
            else:
                interest = choices[bisect_right(cdf_lists[client], rnd())]
            al = avail_cur[interest]
            sz = len(al)
            pos = bisect_left(al, client)
            present = pos < sz and al[pos] == client
            m = sz - 1 if present else sz
            if m <= 0:
                unserved.append(client)
                continue
            if random_policy or (explore and rnd() < exploration):
                idx = int(rint(0, m))
                server = al[idx] if not present or idx < pos else al[idx + 1]
            else:
                ql = qual_cur[interest]
                qsz = len(ql)
                if qsz and q_list[client]:
                    qpos = bisect_left(ql, client)
                    qpresent = qpos < qsz and ql[qpos] == client
                else:
                    qpos = 0
                    qpresent = False
                eff_q = qsz - 1 if qpresent else qsz
                if eff_q == 0:
                    idx = int(rint(0, m))
                    server = al[idx] if not present or idx < pos else al[idx + 1]
                elif not weighted:
                    idx = int(rint(0, eff_q))
                    server = ql[idx] if not qpresent or idx < qpos else ql[idx + 1]
                elif qpresent:
                    w = np.delete(qual_w_cur[interest], qpos)
                    total = w.sum()
                    if total <= 0:
                        idx = int(rint(0, eff_q))
                        server = ql[idx] if idx < qpos else ql[idx + 1]
                    else:
                        cdf = (w / total).cumsum()
                        cdf /= cdf[-1]
                        idx = int(cdf.searchsorted(rnd(), side="right"))
                        server = ql[idx] if idx < qpos else ql[idx + 1]
                elif qual_total_cur[interest] <= 0.0:
                    server = ql[int(rint(0, eff_q))]
                else:
                    server = ql[bisect_right(qual_cdf_cur[interest], rnd())]
            left = remaining_capacity[server] - 1
            remaining_capacity[server] = left
            if left == 0:
                self._exhaust_server(server)
            value = 1.0 if rnd() < authentic[server] else -1.0
            ev_clients.append(client)
            ev_servers.append(server)
            ev_values.append(value)
            ev_interests.append(interest)

        if trace_on:
            patched = self._cache_patch_s - cache_before
            self._tracer.record(
                "engine.selection",
                perf_counter() - selection_start - patched,
                served=len(ev_clients),
                unserved=len(unserved),
            )
            flush_start = perf_counter()
        if ev_clients:
            clients = np.asarray(ev_clients, dtype=np.int64)
            servers = np.asarray(ev_servers, dtype=np.int64)
            values = np.asarray(ev_values, dtype=np.float64)
            interests = np.asarray(ev_interests, dtype=np.int64)
            self._ledger.record_many(clients, servers, values)
            self._interactions.record_many(clients, servers)
            self._profiles.record_requests(clients, interests)
            self._metrics.record_requests(clients, servers)
        if unserved:
            self._metrics.record_unserved_many(np.asarray(unserved, dtype=np.int64))
        if trace_on:
            self._tracer.record(
                "engine.rating_flush", perf_counter() - flush_start
            )
            if self._cache_patch_s:
                self._tracer.record("engine.cache_patch", self._cache_patch_s)
        if self._obs is not None:
            metrics = self._obs.metrics
            metrics.counter("engine.requests.served").inc(len(ev_clients))
            metrics.counter("engine.requests.unserved").inc(len(unserved))

        # Collusion bursts: same order and semantics as the seed loop.
        for burst in self._collusion.bursts(rng):
            if churned and not (online[burst.rater] and online[burst.ratee]):
                continue
            self._ledger.record_batch(
                burst.rater, burst.ratee, burst.value, burst.count
            )
            self._interactions.record(burst.rater, burst.ratee, burst.count)
