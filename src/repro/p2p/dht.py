"""Chord-style distributed hash table.

The paper's reputation substrates "depend on the distributed hash tables to
collect reputation ratings and calculate the global reputation value of
each peer" (EigenTrust, PowerTrust).  This module provides that substrate:
a consistent-hashing ring over the manager nodes with Chord finger tables,
used to decide *which* resource manager is responsible for a node's
ratings and to account the lookup cost of reaching it.

* Keys and node positions live on a ``2^m`` identifier ring (ids are
  deterministic salted hashes, so placement is reproducible).
* ``manager_for(key)`` returns the responsible manager — the ring
  successor of the key's position.
* ``lookup(origin, key)`` walks greedy finger-table routing from an
  origin manager and returns the route; its length is the O(log n) hop
  cost a real deployment would pay per rating report.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, bisect_right
from typing import Sequence

__all__ = ["ChordRing"]


def _hash_to_ring(value: str, bits: int) -> int:
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


class ChordRing:
    """Consistent-hashing ring with Chord finger tables.

    Parameters
    ----------
    manager_ids:
        The participating manager nodes (arbitrary distinct ints).
    bits:
        Identifier-space size (``2^bits`` positions).
    salt:
        Namespace string mixed into every hash, so distinct deployments
        place nodes differently but reproducibly.
    """

    def __init__(
        self,
        manager_ids: Sequence[int],
        *,
        bits: int = 32,
        salt: str = "socialtrust",
    ) -> None:
        managers = sorted(set(int(m) for m in manager_ids))
        if not managers:
            raise ValueError("need at least one manager")
        if not 8 <= bits <= 60:
            raise ValueError(f"bits must be in [8, 60], got {bits}")
        self._bits = bits
        self._salt = salt
        self._positions: dict[int, int] = {}
        used: set[int] = set()
        for manager in managers:
            position = _hash_to_ring(f"{salt}:manager:{manager}", bits)
            # Resolve (vanishingly rare) position collisions determinately.
            while position in used:
                position = (position + 1) % (1 << bits)
            used.add(position)
            self._positions[manager] = position
        self._ring = sorted((pos, mid) for mid, pos in self._positions.items())
        self._ring_positions = [pos for pos, _ in self._ring]
        self._fingers: dict[int, list[int]] = {
            mid: self._build_fingers(pos) for mid, pos in self._positions.items()
        }

    # -- structure ----------------------------------------------------------

    @property
    def managers(self) -> tuple[int, ...]:
        return tuple(mid for _, mid in self._ring)

    @property
    def bits(self) -> int:
        return self._bits

    def position_of(self, manager_id: int) -> int:
        """Ring position of a manager."""
        return self._positions[manager_id]

    def _successor(self, position: int) -> int:
        """Manager responsible for ``position`` (first at or after it)."""
        idx = bisect_left(self._ring_positions, position % (1 << self._bits))
        if idx == len(self._ring_positions):
            idx = 0
        return self._ring[idx][1]

    def successor_of(self, manager_id: int) -> int:
        """The next manager clockwise on the ring after ``manager_id`` —
        the failover target that inherits a crashed manager's keys.

        With a single manager on the ring, that manager is its own
        successor.
        """
        position = self._positions[manager_id]
        idx = bisect_right(self._ring_positions, position)
        if idx == len(self._ring_positions):
            idx = 0
        return self._ring[idx][1]

    def _build_fingers(self, position: int) -> list[int]:
        fingers = []
        for k in range(self._bits):
            target = (position + (1 << k)) % (1 << self._bits)
            fingers.append(self._successor(target))
        return fingers

    # -- key routing ----------------------------------------------------------

    def key_position(self, node: int) -> int:
        """Ring position of a P2P node's rating-storage key."""
        return _hash_to_ring(f"{self._salt}:key:{node}", self._bits)

    def manager_for(self, node: int, *, exclude: frozenset[int] = frozenset()) -> int:
        """The manager responsible for ``node``'s ratings.

        ``exclude`` names managers currently considered down; consistent
        hashing then hands the key to the next live ring successor — the
        same answer every surviving manager computes independently, which
        is what makes the failover coordination-free.  Raises
        ``RuntimeError`` when every manager is excluded.
        """
        responsible = self._successor(self.key_position(node))
        if not exclude:
            return responsible
        seen = 0
        while responsible in exclude:
            responsible = self.successor_of(responsible)
            seen += 1
            if seen > len(self._ring):
                raise RuntimeError("no live manager on the ring")
        return responsible

    def assignment(self, n_nodes: int) -> list[int]:
        """Node → manager mapping for a dense node-id range."""
        return [self.manager_for(node) for node in range(n_nodes)]

    def lookup(self, origin: int, node: int) -> list[int]:
        """Greedy finger-table route from ``origin`` to ``node``'s manager.

        Returns the managers visited, starting with ``origin`` and ending
        with the responsible manager; ``len(route) - 1`` is the hop count.
        """
        if origin not in self._positions:
            raise KeyError(f"unknown origin manager {origin}")
        target = self.manager_for(node)
        key_pos = self.key_position(node)
        size = 1 << self._bits
        route = [origin]
        current = origin
        while current != target:
            cur_pos = self._positions[current]
            distance = (key_pos - cur_pos) % size
            # Largest finger that does not overshoot the key.
            best = None
            for k in reversed(range(self._bits)):
                if (1 << k) <= distance:
                    candidate = self._fingers[current][k]
                    if candidate != current:
                        cand_pos = self._positions[candidate]
                        if ((cand_pos - cur_pos) % size) <= distance:
                            best = candidate
                            break
            if best is None:
                best = target  # adjacent on the ring: final hop
            route.append(best)
            current = best
            if len(route) > len(self._ring) + 1:
                raise RuntimeError("routing failed to converge")
        return route

    def mean_lookup_hops(self, n_nodes: int) -> float:
        """Average route length over all (origin, node) pairs — the per-
        report overhead a deployment pays; O(log n) for healthy rings."""
        total = 0
        count = 0
        for origin in self.managers:
            for node in range(n_nodes):
                total += len(self.lookup(origin, node)) - 1
                count += 1
        return total / count if count else 0.0
