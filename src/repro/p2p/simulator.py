"""The discrete-cycle simulation engine.

One :class:`Simulation` couples a peer population, the interest overlay, a
reputation system (optionally wrapped by SocialTrust), and a collusion
schedule.  Time advances in the paper's two-level cycles:

* **query cycle** — every active peer issues one resource request on one of
  its interests (interest choice is Zipf-distributed per node, matching the
  trace's power-law category ranks), a server is selected by reputation,
  the service outcome is rated ±1, and the colluders inject their rating
  bursts;
* **simulation cycle** — after ``query_cycles_per_simulation_cycle`` (30)
  query cycles, the accumulated interval ratings feed the reputation
  update and a metrics snapshot is taken.

Genuine requests update three behavioural ledgers shared with SocialTrust:
the rating ledger, the interaction-frequency ledger and the per-interest
request counters.  Collusion bursts update the rating and interaction
ledgers only (a rating exchange without a genuine resource transfer leaves
no request trace — see :mod:`repro.collusion.models`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collusion.models import CollusionSchedule, NoCollusion
from repro.faults.injector import FaultInjector
from repro.obs import NULL_TRACER, Observability
from repro.p2p.engine import BatchedQueryEngine, EngineMode
from repro.p2p.metrics import MetricsCollector
from repro.p2p.network import InterestOverlay
from repro.p2p.node import Population
from repro.p2p.selection import SelectionPolicy, select_server
from repro.reputation.base import Rating, ReputationSystem
from repro.reputation.ledger import RatingLedger
from repro.social.interactions import InteractionLedger
from repro.social.interests import InterestProfiles
from repro.utils.rng import RngStream
from repro.utils.validation import check_probability

__all__ = ["SimulationConfig", "Simulation", "EngineMode"]


@dataclass(frozen=True)
class SimulationConfig:
    """Engine parameters (defaults are the paper's Section 5.1 values)."""

    simulation_cycles: int = 50
    query_cycles_per_simulation_cycle: int = 30
    #: The paper's ``T_R`` server-selection reputation floor.
    selection_threshold: float = 0.01
    selection_policy: SelectionPolicy = SelectionPolicy.REPUTATION_WEIGHTED
    #: Probability of reputation-blind uniform selection (see
    #: :func:`repro.p2p.selection.select_server`).
    selection_exploration: float = 0.0
    #: Zipf exponent for per-node interest choice (trace: the top 3
    #: categories cover ~88% of a user's purchases).
    interest_zipf_exponent: float = 2.0
    #: Query-cycle implementation.  ``BATCHED`` (default) is the vectorised
    #: engine, bit-identical to the ``SCALAR`` seed loop (see
    #: :mod:`repro.p2p.engine`); accepts the enum or its string value.
    engine: EngineMode = EngineMode.BATCHED

    def __post_init__(self) -> None:
        if not isinstance(self.engine, EngineMode):
            object.__setattr__(self, "engine", EngineMode(self.engine))
        if self.simulation_cycles < 1:
            raise ValueError("simulation_cycles must be >= 1")
        if self.query_cycles_per_simulation_cycle < 1:
            raise ValueError("query_cycles_per_simulation_cycle must be >= 1")
        check_probability("selection_threshold", self.selection_threshold)
        check_probability("selection_exploration", self.selection_exploration)
        if self.interest_zipf_exponent < 0:
            raise ValueError("interest_zipf_exponent must be >= 0")


class Simulation:
    """Couples all substrates and runs the two-level cycle loop."""

    def __init__(
        self,
        population: Population,
        overlay: InterestOverlay,
        system: ReputationSystem,
        rng: RngStream,
        *,
        config: SimulationConfig | None = None,
        collusion: CollusionSchedule | None = None,
        interactions: InteractionLedger | None = None,
        profiles: InterestProfiles | None = None,
        fault_injector: FaultInjector | None = None,
        observability: Observability | None = None,
    ) -> None:
        n = population.n_nodes
        if overlay.n_nodes != n:
            raise ValueError("overlay and population disagree on network size")
        if system.n_nodes != n:
            raise ValueError("reputation system and population disagree on size")
        if fault_injector is not None and fault_injector.n_nodes != n:
            raise ValueError(
                f"fault injector covers {fault_injector.n_nodes} nodes, "
                f"population has {n}"
            )
        self._population = population
        self._overlay = overlay
        self._system = system
        self._rng = rng
        self._config = config or SimulationConfig()
        self._collusion = collusion or NoCollusion()
        self._injector = fault_injector
        self._interactions = interactions or InteractionLedger(n)
        if profiles is None:
            profiles = InterestProfiles(n, overlay.n_interests)
            for spec in population:
                profiles.set_declared(spec.node_id, spec.interests)
        self._profiles = profiles
        self._ledger = RatingLedger(n)
        self._metrics = MetricsCollector(n)
        self._obs = observability
        self._tracer = observability.tracer if observability is not None else NULL_TRACER
        if fault_injector is not None:
            # One shared fault-metrics sink: injector, transport, manager
            # layer and simulation all record into the collector's series.
            self._metrics.attach_faults(fault_injector.metrics)
            if observability is not None:
                fault_injector.bind_observability(observability)
        self._cycles_run = 0
        # Scratch buffer for per-query-cycle remaining capacities; reset
        # from the population's capacities at each query cycle.
        self._remaining_capacity = np.empty_like(population.capacities)
        # Per-node Zipf weights over the node's own (sorted) interest list.
        s = self._config.interest_zipf_exponent
        self._interest_choices: list[np.ndarray] = []
        self._interest_weights: list[np.ndarray] = []
        for spec in population:
            interests = np.array(sorted(spec.interests), dtype=np.int64)
            ranks = np.arange(1, interests.size + 1, dtype=np.float64)
            weights = ranks**-s if s > 0 else np.ones_like(ranks)
            self._interest_choices.append(interests)
            self._interest_weights.append(weights / weights.sum())
        self._engine: BatchedQueryEngine | None = None
        if self._config.engine is EngineMode.BATCHED:
            self._engine = BatchedQueryEngine(
                population,
                overlay,
                rng,
                threshold=self._config.selection_threshold,
                policy=self._config.selection_policy,
                exploration=self._config.selection_exploration,
                interest_choices=self._interest_choices,
                interest_weights=self._interest_weights,
                ledger=self._ledger,
                interactions=self._interactions,
                profiles=self._profiles,
                metrics=self._metrics,
                collusion=self._collusion,
                injector=self._injector,
                observability=observability,
            )

    @property
    def population(self) -> Population:
        return self._population

    @property
    def system(self) -> ReputationSystem:
        return self._system

    @property
    def metrics(self) -> MetricsCollector:
        return self._metrics

    @property
    def interactions(self) -> InteractionLedger:
        return self._interactions

    @property
    def profiles(self) -> InterestProfiles:
        return self._profiles

    @property
    def ledger(self) -> RatingLedger:
        """The live per-interval rating ledger (drained each cycle).

        Exposed for the :mod:`repro.qa` fuzz harnesses, which interleave
        out-of-band rating bursts with the engine's own traffic.
        """
        return self._ledger

    @property
    def cycles_run(self) -> int:
        return self._cycles_run

    @property
    def fault_injector(self) -> FaultInjector | None:
        return self._injector

    def _draw_interest(self, node: int) -> int:
        choices = self._interest_choices[node]
        if choices.size == 1:
            return int(choices[0])
        return int(self._rng.choice(choices, p=self._interest_weights[node]))

    def _run_query_cycle(
        self,
        remaining_capacity: np.ndarray,
        partition: np.ndarray | None = None,
    ) -> None:
        """Seed scalar query-cycle loop (:attr:`EngineMode.SCALAR`).

        Kept verbatim as the reference implementation; the batched engine
        in :mod:`repro.p2p.engine` is property-tested to be bit-identical
        to it.  ``partition`` is the injector's boolean side mask during a
        network partition: clients can only reach servers on their own
        side, and cross-side collusion bursts cannot happen either.
        """
        rng = self._rng
        population = self._population
        reputations = self._system.reputations
        active_draw = rng.random(population.n_nodes)
        np.copyto(remaining_capacity, population.capacities)
        # Departed peers neither issue nor serve queries.  The mask is
        # only consulted when someone is actually offline, so a zero-rate
        # injector leaves the run bit-identical to an injector-free one.
        online = self._injector.online_mask if self._injector is not None else None
        churned = online is not None and not online.all()
        for client in rng.permutation(population.n_nodes):
            client = int(client)
            if churned and not online[client]:
                continue
            if active_draw[client] >= population.activity_probs[client]:
                continue
            interest = self._draw_interest(client)
            candidates = self._overlay.candidate_servers(client, interest)
            if churned:
                candidates = candidates[online[candidates]]
            if partition is not None:
                candidates = candidates[
                    partition[candidates] == partition[client]
                ]
            server = select_server(
                candidates,
                reputations,
                remaining_capacity,
                rng,
                threshold=self._config.selection_threshold,
                policy=self._config.selection_policy,
                exploration=self._config.selection_exploration,
            )
            if server is None:
                self._metrics.record_unserved(client)
                continue
            remaining_capacity[server] -= 1
            authentic = rng.random() < population.authentic_probs[server]
            value = 1.0 if authentic else -1.0
            self._ledger.record(
                Rating(rater=client, ratee=server, value=value, interest=interest)
            )
            self._interactions.record(client, server)
            self._profiles.record_request(client, interest)
            self._metrics.record_request(client, server)
        # Collusion bursts: ratings + interactions, no genuine requests.
        # Offline colluders cannot exchange ratings either, and a network
        # partition silences cross-side rating exchange.
        for burst in self._collusion.bursts(rng):
            if churned and not (online[burst.rater] and online[burst.ratee]):
                continue
            if partition is not None and partition[burst.rater] != partition[burst.ratee]:
                self._metrics.faults.record_partition_block()
                continue
            self._ledger.record_batch(
                burst.rater, burst.ratee, burst.value, burst.count
            )
            self._interactions.record(burst.rater, burst.ratee, burst.count)

    def run_simulation_cycle(self) -> np.ndarray:
        """Run one simulation cycle; returns the updated reputation vector."""
        with self._tracer.span("sim.cycle", cycle=self._cycles_run):
            return self._run_simulation_cycle()

    def _run_simulation_cycle(self) -> np.ndarray:
        tracer = self._tracer
        if self._injector is not None:
            with tracer.span("faults.advance"):
                self._injector.advance()
                offline = self._injector.offline_nodes()
                if offline.size:
                    # Age out departed peers' interaction history so
                    # rejoiners resume with decayed — not stale
                    # full-strength — state.
                    self._interactions.decay_nodes(
                        offline, self._injector.config.offline_decay
                    )
        # During a network partition, route the interval through the
        # scalar reference loop: it consumes the identical RNG stream
        # (the batched engine is bit-compatible with it), and partition
        # filtering is a per-client candidate restriction that the
        # engine's hoisted per-interest structures do not model.
        partition = None
        if self._injector is not None and self._injector.partition_active:
            partition = self._injector.partition_mask
        if self._engine is not None and partition is None:
            # Reputations and the churn mask are fixed for the whole
            # interval; hoist the per-interest selection structures once.
            self._engine.begin_interval(self._system.reputations)
            for _ in range(self._config.query_cycles_per_simulation_cycle):
                self._engine.run_query_cycle(self._remaining_capacity)
        else:
            with tracer.span("engine.scalar_interval"):
                for _ in range(self._config.query_cycles_per_simulation_cycle):
                    self._run_query_cycle(self._remaining_capacity, partition)
        interval = self._ledger.drain()
        with tracer.span("reputation.update", system=self._system.name):
            reputations = self._system.update(interval)
        with tracer.span("metrics.snapshot"):
            self._metrics.snapshot(reputations)
        self._cycles_run += 1
        if self._injector is not None:
            self._metrics.faults.snapshot_cycle(
                self._cycles_run,
                peers_online=self._injector.peers_online,
                managers_up=self._injector.managers_up_count,
            )
        if self._obs is not None:
            self._metrics.publish(self._obs.metrics, cycles_run=self._cycles_run)
        return reputations

    # -- checkpoint / recovery -----------------------------------------------

    def checkpoint(self) -> dict:
        """Full mutable state at a simulation-cycle boundary.

        Everything a resumed process needs to continue **bit-identically**
        to the uninterrupted run: the shared RNG stream, the reputation
        system (including SocialTrust's detector/recidivism state and the
        Ωc/Ωs value caches, whose incremental updates are not bitwise
        equal to a rebuild), the three behavioural ledgers, the metrics
        history, and — when chaos is wired in — the fault injector with
        its schedule RNG, partition/Byzantine state and retry budget.
        Static structure (population, overlay, social graph, collusion
        schedule) is *not* included; it is reconstructed deterministically
        from the build configuration by the caller
        (:func:`repro.chaos.checkpoint.save_checkpoint` stores that
        configuration next to this payload).
        """
        return {
            "cycles_run": self._cycles_run,
            "rng": self._rng.bit_generator.state,
            "system": self._system.state_dict(),
            "ledger": self._ledger.state_dict(),
            "interactions": self._interactions.state_dict(),
            "profiles": self._profiles.state_dict(),
            "metrics": self._metrics.state_dict(),
            "injector": (
                self._injector.state_dict() if self._injector is not None else None
            ),
        }

    def resume(self, state: dict) -> None:
        """Restore a :meth:`checkpoint` payload into a freshly built,
        identically configured simulation."""
        injector_state = state.get("injector")
        if injector_state is not None and self._injector is None:
            raise ValueError(
                "checkpoint carries fault-injector state but this "
                "simulation was built without an injector"
            )
        self._cycles_run = int(state["cycles_run"])
        self._rng.bit_generator.state = state["rng"]
        self._system.restore_state(state["system"])
        self._ledger.restore_state(state["ledger"])
        self._interactions.restore_state(state["interactions"])
        self._profiles.restore_state(state["profiles"])
        self._metrics.restore_state(state["metrics"])
        if self._injector is not None and injector_state is not None:
            self._injector.restore_state(injector_state)

    def run(self, simulation_cycles: int | None = None) -> MetricsCollector:
        """Run the configured number of simulation cycles; returns metrics."""
        cycles = (
            simulation_cycles
            if simulation_cycles is not None
            else self._config.simulation_cycles
        )
        if cycles < 1:
            raise ValueError("simulation_cycles must be >= 1")
        for _ in range(cycles):
            self.run_simulation_cycle()
        return self._metrics
