"""Cache-vs-recompute audit for the incremental Ωc/Ωs matrices.

The incremental caches in :class:`~repro.core.closeness.ClosenessComputer`
and :class:`~repro.core.similarity.SimilarityComputer` patch their cached
matrices row-wise (and, for the closeness ``T2`` term, with a low-rank
correction) instead of rebuilding from scratch.  The ``decay_nodes``
divergence fixed in an earlier PR was exactly this class of bug: a cache
that silently drifted from what a from-scratch evaluation would produce.

:func:`audit_caches` rebuilds both matrices with *fresh* computers over
the same social view / interaction ledger / interest profiles and diffs
them against the live cached matrices.  The fresh computers share no
cache state with the audited ones, so any disagreement is a real cache
bug, not a measurement artifact.  The fuzz harness calls this from its
teardown; tests and operators can call it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.socialtrust import SocialTrust

__all__ = ["CacheAuditReport", "audit_caches", "assert_caches_consistent"]

#: The closeness T2 term is maintained with a floating-point low-rank
#: correction, so a tiny accumulation drift against the from-scratch
#: product is legitimate; anything beyond these bounds is a cache bug.
DEFAULT_RTOL = 1e-9
DEFAULT_ATOL = 1e-12


@dataclass(frozen=True)
class CacheAuditReport:
    """Outcome of one cache-vs-recompute audit."""

    closeness_max_abs_diff: float
    similarity_max_abs_diff: float
    n_closeness_mismatches: int
    n_similarity_mismatches: int
    rtol: float
    atol: float

    @property
    def ok(self) -> bool:
        return not (self.n_closeness_mismatches or self.n_similarity_mismatches)

    def summary(self) -> str:
        status = "CONSISTENT" if self.ok else "DIVERGED"
        return (
            f"cache audit: {status} "
            f"(rtol={self.rtol:g}, atol={self.atol:g})\n"
            f"  omega_c: {self.n_closeness_mismatches} mismatched pair(s), "
            f"max |cached - fresh| = {self.closeness_max_abs_diff:.3e}\n"
            f"  omega_s: {self.n_similarity_mismatches} mismatched pair(s), "
            f"max |cached - fresh| = {self.similarity_max_abs_diff:.3e}"
        )


def _diff(cached: np.ndarray, fresh: np.ndarray, rtol: float, atol: float) -> tuple[float, int]:
    delta = np.abs(cached - fresh)
    mismatched = ~np.isclose(cached, fresh, rtol=rtol, atol=atol)
    return float(delta.max()) if delta.size else 0.0, int(mismatched.sum())


def audit_caches(
    system: SocialTrust,
    *,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> CacheAuditReport:
    """Diff the live Ωc/Ωs caches against a from-scratch recomputation.

    The fresh computers are of the *same backend class* as the audited
    ones, so a sparse-backend system is audited sparse-vs-fresh-sparse —
    the incremental CSR caches have the same drift mode as the dense
    ones (the low-rank T2 correction) and deserve the same bound.
    """
    closeness = system.closeness_computer
    similarity = system.similarity_computer
    cached_c = np.asarray(closeness.closeness_matrix())
    cached_s = np.asarray(similarity.similarity_matrix())
    fresh_c = np.asarray(
        type(closeness)(
            closeness.view, closeness.interactions, closeness.config
        ).closeness_matrix()
    )
    fresh_s = np.asarray(
        type(similarity)(
            similarity.profiles, similarity.config
        ).similarity_matrix()
    )
    c_max, c_bad = _diff(cached_c, fresh_c, rtol, atol)
    s_max, s_bad = _diff(cached_s, fresh_s, rtol, atol)
    return CacheAuditReport(
        closeness_max_abs_diff=c_max,
        similarity_max_abs_diff=s_max,
        n_closeness_mismatches=c_bad,
        n_similarity_mismatches=s_bad,
        rtol=rtol,
        atol=atol,
    )


def assert_caches_consistent(
    system: SocialTrust,
    *,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> CacheAuditReport:
    """:func:`audit_caches`, raising ``AssertionError`` on divergence."""
    report = audit_caches(system, rtol=rtol, atol=atol)
    if not report.ok:
        raise AssertionError(report.summary())
    return report
