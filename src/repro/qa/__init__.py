"""Correctness tooling: golden traces, invariant fuzzing, differential runs.

Three generations of hot-path rewrites (the batched engine, the
incremental Ωc/Ωs caches, the manager failover paths) rest on point
equivalence tests; this package is the mechanical safety net every future
rewrite must pass through:

* :mod:`repro.qa.golden` — records a full scenario run (per-cycle
  reputation vectors, detector decisions with fired thresholds, Gaussian
  damping weights, Ωc/Ωs digests) into compact JSONL goldens under
  ``tests/golden/`` and diffs a replay against them, in strict
  (bit-identical) or tolerance mode, with a human-readable
  first-divergence report;
* :mod:`repro.qa.fuzz` — stateful fuzz harnesses that drive the live
  engine with interleaved queries, rating bursts, churn joins/leaves,
  collusion activations and manager failovers while asserting
  machine-checked invariants (bounded reputations, batched≡scalar,
  Ωs symmetry, audit-log completeness, cache≡recompute);
* :mod:`repro.qa.differential` — replays one seeded scenario across every
  reputation backend × engine mode and cross-checks the shared
  invariants;
* :mod:`repro.qa.cache_audit` — recomputes Ωc/Ωs from scratch and diffs
  the incremental matrices (the ``decay_nodes`` divergence class);
* :mod:`repro.qa.reconvergence` — injects scripted chaos (partitions,
  Byzantine managers), heals it, and asserts every backend's reputation
  aggregates return within tolerance of the fault-free twin.

CLI: ``repro qa record`` / ``repro qa check`` / ``repro qa fuzz`` /
``repro qa reconverge``.
"""

from __future__ import annotations

from repro.qa.cache_audit import (
    CacheAuditReport,
    assert_caches_consistent,
    audit_caches,
)
from repro.qa.differential import (
    BACKENDS,
    BackendComparison,
    CellResult,
    CoefficientDifferentialReport,
    DifferentialReport,
    run_coefficient_differential,
    run_differential,
)
from repro.qa.fuzz import (
    EngineFuzzHarness,
    FuzzReport,
    InvariantViolation,
    ManagerFuzzHarness,
    build_engine_machine,
    build_manager_machine,
    run_fuzz,
)
from repro.qa.reconvergence import (
    ReconvergenceReport,
    ReconvergenceResult,
    run_reconvergence,
)
from repro.qa.golden import (
    Divergence,
    GoldenScenario,
    TraceDiff,
    check_golden,
    diff_traces,
    load_trace,
    record_trace,
    write_trace,
)
from repro.qa.scenarios import (
    DEFAULT_GOLDEN_DIR,
    GOLDEN_SCENARIOS,
    check_all,
    record_all,
)

__all__ = [
    "BACKENDS",
    "BackendComparison",
    "CacheAuditReport",
    "CellResult",
    "CoefficientDifferentialReport",
    "DEFAULT_GOLDEN_DIR",
    "DifferentialReport",
    "Divergence",
    "EngineFuzzHarness",
    "FuzzReport",
    "GOLDEN_SCENARIOS",
    "GoldenScenario",
    "InvariantViolation",
    "ManagerFuzzHarness",
    "ReconvergenceReport",
    "ReconvergenceResult",
    "TraceDiff",
    "assert_caches_consistent",
    "audit_caches",
    "build_engine_machine",
    "build_manager_machine",
    "check_all",
    "check_golden",
    "diff_traces",
    "load_trace",
    "record_all",
    "record_trace",
    "run_coefficient_differential",
    "run_differential",
    "run_fuzz",
    "run_reconvergence",
    "write_trace",
]
