"""Stateful invariant fuzzing for the SocialTrust pipeline.

Two harnesses drive the *live* engine through interleaved operations and
assert the pipeline's structural invariants after every step:

* :class:`EngineFuzzHarness` — twin worlds built from the same seed, one
  on the batched query engine and one on the scalar reference loop.
  Rules run simulation cycles, inject out-of-band rating bursts, activate
  collusion-style mutual-rating exchanges, and churn peers offline and
  back.  After every cycle the twins must agree **bit-for-bit**, the
  reputations must stay in ``[0, 1]``, Ωs must stay symmetric, Ωc must
  stay a zero-diagonal non-negative matrix, and the detector audit log
  must contain exactly one event per examined pair.

* :class:`ManagerFuzzHarness` — a centralised :class:`SocialTrust` and a
  :class:`DistributedSocialTrust` sharing one world.  Rules buffer rating
  bursts, flush reputation-update intervals, and crash / recover resource
  managers.  While no manager is down the two executions must agree
  bit-for-bit; once an interval flushes under failover the harness stops
  expecting equality (neutral-damping fallbacks legitimately diverge) but
  keeps asserting bounds — and when *every* manager is down, each finding
  must take exactly one neutral fallback.

Both harnesses finish with :func:`repro.qa.cache_audit.audit_caches`, so
every fuzz run ends by recomputing the incremental Ωc/Ωs caches from
scratch and comparing.

The harnesses are plain classes, so they can be driven two ways:

* :func:`run_fuzz` — a seeded, self-contained driver for the CLI
  (``repro qa fuzz``) and the CI smoke job; no third-party dependency;
* :func:`build_engine_machine` / :func:`build_manager_machine` — factories
  returning ``hypothesis.stateful.RuleBasedStateMachine`` subclasses for
  property-based shrinking.  ``hypothesis`` is imported lazily inside the
  factories so :mod:`repro.qa` never hard-depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.qa.cache_audit import CacheAuditReport, audit_caches

__all__ = [
    "InvariantViolation",
    "FuzzReport",
    "EngineFuzzHarness",
    "ManagerFuzzHarness",
    "run_fuzz",
    "build_engine_machine",
    "build_manager_machine",
]

#: Engine-harness world (small: every rule costs a full twin step).
ENGINE_N_NODES = 16
ENGINE_N_INTERESTS = 5
ENGINE_PRETRUSTED = (0, 1)
ENGINE_COLLUDERS = (2, 3, 4, 5)

#: Manager-harness world.
MANAGER_N_NODES = 20
MANAGER_N_INTERESTS = 5
MANAGER_PRETRUSTED = (0, 1)
MANAGER_N_MANAGERS = 4

_SUM_SLACK = 1e-9


class InvariantViolation(AssertionError):
    """A pipeline invariant failed under fuzzing (subclasses
    ``AssertionError`` so both pytest and hypothesis treat it natively)."""


def _check_reputation_bounds(reputations: np.ndarray, label: str) -> None:
    if not np.all(np.isfinite(reputations)):
        raise InvariantViolation(f"{label}: non-finite reputations")
    if reputations.min() < 0.0 or reputations.max() > 1.0:
        raise InvariantViolation(
            f"{label}: reputations outside [0, 1] "
            f"(min={reputations.min():.6g}, max={reputations.max():.6g})"
        )
    if float(reputations.sum()) > 1.0 + _SUM_SLACK:
        raise InvariantViolation(
            f"{label}: reputation mass {float(reputations.sum()):.12g} exceeds 1"
        )


class EngineFuzzHarness:
    """Twin batched/scalar worlds driven in lock-step.

    Every mutating rule is applied identically to both twins; the
    invariant bundle (:meth:`check_invariants`) runs after each cycle.
    """

    n_nodes = ENGINE_N_NODES
    colluders = ENGINE_COLLUDERS

    def __init__(self, *, seed: int = 0) -> None:
        from repro.p2p.engine import EngineMode

        self.seed = seed
        self.cycles = 0
        self._twins = {}
        self._obs = {}
        for name, mode in (("batched", EngineMode.BATCHED), ("scalar", EngineMode.SCALAR)):
            self._twins[name], self._obs[name] = self._build_twin(mode)

    def _build_twin(self, engine):
        """One world; both twins share the seed so they start identical."""
        from repro.collusion import PairwiseCollusion
        from repro.core import SocialTrust
        from repro.faults import FaultConfig, FaultInjector
        from repro.obs import Observability
        from repro.p2p import (
            InterestOverlay,
            Population,
            Simulation,
            SimulationConfig,
        )
        from repro.reputation import EigenTrust
        from repro.social import InteractionLedger, InterestProfiles
        from repro.social.generators import paper_social_network
        from repro.utils.rng import spawn_rng

        n = self.n_nodes
        rng = spawn_rng(self.seed, 0)
        population = Population.build(
            n,
            rng,
            pretrusted_ids=ENGINE_PRETRUSTED,
            malicious_ids=ENGINE_COLLUDERS,
            n_interests=ENGINE_N_INTERESTS,
            interests_per_node=(1, 4),
            capacity=8,
            malicious_authentic_prob=0.3,
        )
        interests = [spec.interests for spec in population]
        overlay = InterestOverlay(interests, ENGINE_N_INTERESTS)
        network = paper_social_network(n, ENGINE_COLLUDERS, rng)
        interactions = InteractionLedger(n)
        profiles = InterestProfiles(n, ENGINE_N_INTERESTS)
        for spec in population:
            profiles.set_declared(spec.node_id, spec.interests)
        observability = Observability(tracing=False)
        system = SocialTrust(
            EigenTrust(n, ENGINE_PRETRUSTED, pretrust_weight=0.05),
            network,
            interactions,
            profiles,
            observability=observability,
        )
        # Zero-rate config: the injector never draws randomness, it only
        # carries the manual churn controls — so an untouched injector
        # leaves the twin bit-identical to an injector-free build.
        injector = FaultInjector(n, config=FaultConfig())
        simulation = Simulation(
            population,
            overlay,
            system,
            rng,
            config=SimulationConfig(
                query_cycles_per_simulation_cycle=3, engine=engine
            ),
            collusion=PairwiseCollusion(
                list(ENGINE_COLLUDERS), interests, ratings_per_cycle=4
            ),
            interactions=interactions,
            profiles=profiles,
            fault_injector=injector,
            observability=observability,
        )
        return simulation, observability

    @property
    def simulations(self):
        return dict(self._twins)

    # -- rules ---------------------------------------------------------------

    def run_cycle(self) -> None:
        """One simulation cycle on both twins, then the invariant bundle."""
        reps = {
            name: sim.run_simulation_cycle() for name, sim in self._twins.items()
        }
        self.cycles += 1
        self.check_invariants(reps)

    def inject_ratings(
        self, rater: int, ratee: int, *, positive: bool, count: int
    ) -> None:
        """Out-of-band rating burst, mirrored into both twins' ledgers."""
        rater %= self.n_nodes
        ratee %= self.n_nodes
        if rater == ratee:
            ratee = (ratee + 1) % self.n_nodes
        value = 1.0 if positive else -1.0
        for sim in self._twins.values():
            sim.ledger.record_batch(rater, ratee, value, count)
            sim.interactions.record(rater, ratee, count)

    def collusion_burst(self, pair_index: int, count: int) -> None:
        """A mutual positive-rating exchange inside the colluder group."""
        pairs = [
            (a, b)
            for i, a in enumerate(self.colluders)
            for b in self.colluders[i + 1 :]
        ]
        a, b = pairs[pair_index % len(pairs)]
        self.inject_ratings(a, b, positive=True, count=count)
        self.inject_ratings(b, a, positive=True, count=count)

    def churn_leave(self, node: int) -> None:
        node %= self.n_nodes
        for sim in self._twins.values():
            sim.fault_injector.fail_peer(node)

    def churn_rejoin(self, node: int) -> None:
        node %= self.n_nodes
        for sim in self._twins.values():
            sim.fault_injector.restore_peer(node)

    @property
    def offline_nodes(self) -> list[int]:
        sim = self._twins["batched"]
        return [int(x) for x in sim.fault_injector.offline_nodes()]

    # -- invariants ----------------------------------------------------------

    def check_invariants(self, reps: dict[str, np.ndarray]) -> None:
        batched, scalar = reps["batched"], reps["scalar"]
        if not np.array_equal(batched, scalar):
            delta = float(np.abs(batched - scalar).max())
            raise InvariantViolation(
                f"cycle {self.cycles}: batched and scalar engines diverged "
                f"(max |delta| = {delta:.3e})"
            )
        for name, values in reps.items():
            _check_reputation_bounds(values, f"cycle {self.cycles} [{name}]")
        for name, sim in self._twins.items():
            self._check_social_matrices(sim, name)
            self._check_audit_completeness(sim, name)

    def _check_social_matrices(self, sim, name: str) -> None:
        system = sim.system
        omega_s = system.similarity_computer.similarity_matrix()
        if not np.allclose(omega_s, omega_s.T, rtol=1e-9, atol=1e-12):
            raise InvariantViolation(f"[{name}] Ωs is not symmetric")
        if float(np.abs(np.diag(omega_s)).max(initial=0.0)) != 0.0:
            raise InvariantViolation(f"[{name}] Ωs has a non-zero diagonal")
        omega_c = system.closeness_computer.closeness_matrix()
        if not np.all(np.isfinite(omega_c)):
            raise InvariantViolation(f"[{name}] Ωc has non-finite entries")
        if omega_c.min() < 0.0:
            raise InvariantViolation(f"[{name}] Ωc has negative entries")
        if float(np.abs(np.diag(omega_c)).max(initial=0.0)) != 0.0:
            raise InvariantViolation(f"[{name}] Ωc has a non-zero diagonal")

    def _check_audit_completeness(self, sim, name: str) -> None:
        obs = self._obs[name]
        audit = obs.audit
        examined = obs.metrics.counter("detector.pairs_examined").value
        recorded = len(audit) + audit.n_dropped
        if recorded != int(examined):
            raise InvariantViolation(
                f"[{name}] audit log holds {recorded} events but the "
                f"detector examined {int(examined)} pairs"
            )
        last = sim.system.last_detection
        if last is None:
            return
        latest = self.cycles - 1
        damped = {
            (e.rater, e.ratee)
            for e in audit
            if e.interval == latest and e.decision == "damped"
        }
        findings = {(f.rater, f.ratee) for f in last.findings}
        if damped != findings:
            raise InvariantViolation(
                f"[{name}] interval {latest}: damped audit events "
                f"{sorted(damped)} do not match detector findings "
                f"{sorted(findings)}"
            )

    def teardown(self) -> list[CacheAuditReport]:
        """Recompute both twins' Ωc/Ωs caches from scratch and compare."""
        reports = []
        for name, sim in self._twins.items():
            report = audit_caches(sim.system)
            if not report.ok:
                raise InvariantViolation(f"[{name}] {report.summary()}")
            reports.append(report)
        return reports


class ManagerFuzzHarness:
    """Centralised vs distributed SocialTrust under manager failures.

    Both systems share one world (social view, interaction ledger,
    interest profiles) and consume the same drained intervals, so while
    every manager is up they are provably bit-identical.  The first flush
    that happens under failover sets :attr:`diverged` — from then on only
    the bounds invariants apply (fallback damping legitimately changes
    the numbers).
    """

    n_nodes = MANAGER_N_NODES
    n_managers = MANAGER_N_MANAGERS

    def __init__(self, *, seed: int = 0) -> None:
        from repro.core import DistributedSocialTrust, SocialTrust
        from repro.faults import FaultConfig, FaultInjector
        from repro.p2p import Population
        from repro.reputation import EigenTrust
        from repro.reputation.ledger import RatingLedger
        from repro.social import InteractionLedger, InterestProfiles
        from repro.social.generators import paper_social_network
        from repro.utils.rng import spawn_rng

        n = self.n_nodes
        rng = spawn_rng(seed, 1)
        colluders = tuple(range(2, 8))
        population = Population.build(
            n,
            rng,
            pretrusted_ids=MANAGER_PRETRUSTED,
            malicious_ids=colluders,
            n_interests=MANAGER_N_INTERESTS,
            interests_per_node=(1, 4),
            malicious_authentic_prob=0.3,
        )
        network = paper_social_network(n, colluders, rng)
        self.interactions = InteractionLedger(n)
        self.profiles = InterestProfiles(n, MANAGER_N_INTERESTS)
        for spec in population:
            self.profiles.set_declared(spec.node_id, spec.interests)
        self.central = SocialTrust(
            EigenTrust(n, MANAGER_PRETRUSTED, pretrust_weight=0.05),
            network,
            self.interactions,
            self.profiles,
        )
        self.injector = FaultInjector(n, config=FaultConfig())
        self.distributed = DistributedSocialTrust(
            EigenTrust(n, MANAGER_PRETRUSTED, pretrust_weight=0.05),
            network,
            self.interactions,
            self.profiles,
            n_managers=self.n_managers,
            injector=self.injector,
        )
        self.ledger = RatingLedger(n)
        self.colluders = colluders
        self.diverged = False
        self.flushes = 0

    # -- rules ---------------------------------------------------------------

    def add_burst(
        self, rater: int, ratee: int, *, positive: bool, count: int
    ) -> None:
        rater %= self.n_nodes
        ratee %= self.n_nodes
        if rater == ratee:
            ratee = (ratee + 1) % self.n_nodes
        self.ledger.record_batch(rater, ratee, 1.0 if positive else -1.0, count)
        self.interactions.record(rater, ratee, count)

    def collusion_burst(self, pair_index: int, count: int) -> None:
        pairs = [
            (a, b)
            for i, a in enumerate(self.colluders)
            for b in self.colluders[i + 1 :]
        ]
        a, b = pairs[pair_index % len(pairs)]
        self.add_burst(a, b, positive=True, count=count)
        self.add_burst(b, a, positive=True, count=count)

    def crash_manager(self, manager_id: int) -> None:
        self.injector.fail_manager(manager_id % self.n_managers)

    def recover_manager(self, manager_id: int) -> None:
        self.injector.restore_manager(manager_id % self.n_managers)

    def flush_interval(self) -> None:
        """Drain the buffered ratings through both executions."""
        interval = self.ledger.drain()
        down = self.injector.down_managers()
        all_down = len(down) == self.n_managers
        fallbacks_before = self.injector.metrics.fallbacks
        rep_c = self.central.update(interval)
        rep_d = self.distributed.update(interval)
        self.flushes += 1
        _check_reputation_bounds(rep_c, f"flush {self.flushes} [central]")
        _check_reputation_bounds(rep_d, f"flush {self.flushes} [distributed]")
        if down:
            # Fallback damping may lawfully change the distributed result;
            # equality is no longer owed for the rest of the run.
            self.diverged = True
        elif not self.diverged and not np.array_equal(rep_c, rep_d):
            delta = float(np.abs(rep_c - rep_d).max())
            raise InvariantViolation(
                f"flush {self.flushes}: fault-free distributed execution "
                f"diverged from centralised (max |delta| = {delta:.3e})"
            )
        if all_down:
            findings = self.distributed.last_detection.findings
            expected = fallbacks_before + len(findings)
            if self.injector.metrics.fallbacks != expected:
                raise InvariantViolation(
                    f"flush {self.flushes}: all managers down with "
                    f"{len(findings)} findings, expected {expected} total "
                    f"fallbacks, saw {self.injector.metrics.fallbacks}"
                )

    def teardown(self) -> list[CacheAuditReport]:
        reports = []
        for label, system in (("central", self.central), ("distributed", self.distributed)):
            report = audit_caches(system)
            if not report.ok:
                raise InvariantViolation(f"[{label}] {report.summary()}")
            reports.append(report)
        return reports


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` session."""

    harness: str
    steps: int
    seed: int
    rule_counts: dict[str, int] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    cache_audits: list[CacheAuditReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        rules = ", ".join(
            f"{name}={count}" for name, count in sorted(self.rule_counts.items())
        )
        lines = [
            f"fuzz[{self.harness}]: {self.steps} steps, seed={self.seed} ({rules})"
        ]
        lines.extend(
            "  " + line
            for report in self.cache_audits
            for line in report.summary().splitlines()
        )
        if self.violations:
            lines.append(f"  {len(self.violations)} INVARIANT VIOLATION(S):")
            lines.extend(f"    {v}" for v in self.violations)
        else:
            lines.append("  all invariants held")
        return "\n".join(lines)


def _fuzz_engine(steps: int, seed: int) -> FuzzReport:
    rng = np.random.default_rng(seed)
    harness = EngineFuzzHarness(seed=seed)
    report = FuzzReport(harness="engine", steps=steps, seed=seed)
    rules = ("run_cycle", "inject", "burst", "leave", "rejoin")
    weights = np.array([0.35, 0.25, 0.15, 0.15, 0.10])
    try:
        for _ in range(steps):
            rule = rules[int(rng.choice(len(rules), p=weights))]
            report.rule_counts[rule] = report.rule_counts.get(rule, 0) + 1
            if rule == "run_cycle":
                harness.run_cycle()
            elif rule == "inject":
                harness.inject_ratings(
                    int(rng.integers(harness.n_nodes)),
                    int(rng.integers(harness.n_nodes)),
                    positive=bool(rng.random() < 0.7),
                    count=int(rng.integers(1, 6)),
                )
            elif rule == "burst":
                harness.collusion_burst(
                    int(rng.integers(16)), int(rng.integers(1, 8))
                )
            elif rule == "leave":
                # Keep a majority online so the world stays live.
                if len(harness.offline_nodes) < harness.n_nodes // 2:
                    harness.churn_leave(int(rng.integers(harness.n_nodes)))
            else:
                offline = harness.offline_nodes
                if offline:
                    harness.churn_rejoin(offline[int(rng.integers(len(offline)))])
        report.cache_audits = harness.teardown()
    except InvariantViolation as exc:
        report.violations.append(str(exc))
    return report


def _fuzz_manager(steps: int, seed: int) -> FuzzReport:
    rng = np.random.default_rng(seed + 1)
    harness = ManagerFuzzHarness(seed=seed)
    report = FuzzReport(harness="manager", steps=steps, seed=seed)
    rules = ("burst", "collude", "flush", "crash", "recover")
    weights = np.array([0.35, 0.15, 0.25, 0.15, 0.10])
    try:
        for _ in range(steps):
            rule = rules[int(rng.choice(len(rules), p=weights))]
            report.rule_counts[rule] = report.rule_counts.get(rule, 0) + 1
            if rule == "burst":
                harness.add_burst(
                    int(rng.integers(harness.n_nodes)),
                    int(rng.integers(harness.n_nodes)),
                    positive=bool(rng.random() < 0.7),
                    count=int(rng.integers(1, 6)),
                )
            elif rule == "collude":
                harness.collusion_burst(
                    int(rng.integers(16)), int(rng.integers(1, 8))
                )
            elif rule == "flush":
                harness.flush_interval()
            elif rule == "crash":
                harness.crash_manager(int(rng.integers(harness.n_managers)))
            else:
                harness.recover_manager(int(rng.integers(harness.n_managers)))
        report.cache_audits = harness.teardown()
    except InvariantViolation as exc:
        report.violations.append(str(exc))
    return report


def run_fuzz(
    steps: int = 200, seed: int = 0, harness: str = "both"
) -> list[FuzzReport]:
    """Seeded fuzz session; returns one report per harness run.

    The driver needs no third-party packages — rule selection comes from
    a ``numpy`` generator — so the CI smoke job can run it anywhere the
    library itself runs.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if harness not in ("engine", "manager", "both"):
        raise ValueError(
            f"harness must be 'engine', 'manager' or 'both', got {harness!r}"
        )
    reports = []
    if harness in ("engine", "both"):
        reports.append(_fuzz_engine(steps, seed))
    if harness in ("manager", "both"):
        reports.append(_fuzz_manager(steps, seed))
    return reports


def build_engine_machine(*, seed: int = 0):
    """Hypothesis ``RuleBasedStateMachine`` over :class:`EngineFuzzHarness`.

    ``hypothesis`` is imported here, not at module load, so the rest of
    :mod:`repro.qa` works without it installed.
    """
    from hypothesis import strategies as st
    from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

    n = ENGINE_N_NODES

    class EngineMachine(RuleBasedStateMachine):
        def __init__(self) -> None:
            super().__init__()
            self.harness = EngineFuzzHarness(seed=seed)

        @rule()
        def run_cycle(self) -> None:
            self.harness.run_cycle()

        @rule(
            rater=st.integers(0, n - 1),
            ratee=st.integers(0, n - 1),
            positive=st.booleans(),
            count=st.integers(1, 5),
        )
        def inject(self, rater: int, ratee: int, positive: bool, count: int) -> None:
            self.harness.inject_ratings(rater, ratee, positive=positive, count=count)

        @rule(pair_index=st.integers(0, 15), count=st.integers(1, 7))
        def burst(self, pair_index: int, count: int) -> None:
            self.harness.collusion_burst(pair_index, count)

        @precondition(lambda self: len(self.harness.offline_nodes) < n // 2)
        @rule(node=st.integers(0, n - 1))
        def leave(self, node: int) -> None:
            self.harness.churn_leave(node)

        @precondition(lambda self: self.harness.offline_nodes)
        @rule(index=st.integers(0, n - 1))
        def rejoin(self, index: int) -> None:
            offline = self.harness.offline_nodes
            self.harness.churn_rejoin(offline[index % len(offline)])

        def teardown(self) -> None:
            self.harness.teardown()

    return EngineMachine


def build_manager_machine(*, seed: int = 0):
    """Hypothesis ``RuleBasedStateMachine`` over :class:`ManagerFuzzHarness`."""
    from hypothesis import strategies as st
    from hypothesis.stateful import RuleBasedStateMachine, rule

    n = MANAGER_N_NODES
    m = MANAGER_N_MANAGERS

    class ManagerMachine(RuleBasedStateMachine):
        def __init__(self) -> None:
            super().__init__()
            self.harness = ManagerFuzzHarness(seed=seed)

        @rule(
            rater=st.integers(0, n - 1),
            ratee=st.integers(0, n - 1),
            positive=st.booleans(),
            count=st.integers(1, 5),
        )
        def burst(self, rater: int, ratee: int, positive: bool, count: int) -> None:
            self.harness.add_burst(rater, ratee, positive=positive, count=count)

        @rule(pair_index=st.integers(0, 15), count=st.integers(1, 7))
        def collude(self, pair_index: int, count: int) -> None:
            self.harness.collusion_burst(pair_index, count)

        @rule()
        def flush(self) -> None:
            self.harness.flush_interval()

        @rule(manager_id=st.integers(0, m - 1))
        def crash(self, manager_id: int) -> None:
            self.harness.crash_manager(manager_id)

        @rule(manager_id=st.integers(0, m - 1))
        def recover(self, manager_id: int) -> None:
            self.harness.recover_manager(manager_id)

        def teardown(self) -> None:
            self.harness.teardown()

    return ManagerMachine
