"""The checked-in golden scenarios and their record/check drivers.

Three scenarios cover the three base reputation stacks, the three
collusion structures and both detector coefficient paths at a scale that
keeps each golden file a few tens of kilobytes.  Regenerate with::

    repro qa record --update

after any *deliberate* numerical behaviour change, and say why in the
commit message — an unexplained regeneration defeats the whole net.
"""

from __future__ import annotations

from pathlib import Path

from repro.qa.golden import (
    GoldenScenario,
    TraceDiff,
    check_golden,
    record_trace,
    write_trace,
)

__all__ = [
    "DEFAULT_GOLDEN_DIR",
    "GOLDEN_SCENARIOS",
    "record_all",
    "check_all",
]

#: Repo-relative home of the checked-in goldens.
DEFAULT_GOLDEN_DIR = Path("tests") / "golden"

_COMMON = dict(
    n_nodes=30,
    n_pretrusted=3,
    n_colluders=6,
    n_interests=8,
    interests_per_node=[1, 4],
    capacity=12,
    colluder_b=0.2,
    query_cycles=6,
    simulation_cycles=8,
)

GOLDEN_SCENARIOS: dict[str, GoldenScenario] = {
    scenario.name: scenario
    for scenario in (
        GoldenScenario(
            name="eigentrust_pcm",
            build=dict(
                _COMMON,
                system="EigenTrust+SocialTrust",
                collusion="pcm",
                pcm_ratings_per_cycle=8,
            ),
            cycles=8,
            seed=2011,
        ),
        GoldenScenario(
            name="ebay_mcm",
            build=dict(
                _COMMON,
                system="eBay+SocialTrust",
                collusion="mcm",
                mcm_n_boosted=3,
            ),
            cycles=8,
            seed=2012,
        ),
        GoldenScenario(
            name="powertrust_mmm",
            build=dict(
                _COMMON,
                system="PowerTrust+SocialTrust",
                collusion="mmm",
                mmm_forward_ratings=10,
                mmm_back_ratings=3,
            ),
            cycles=8,
            seed=2013,
        ),
    )
}


def _select(names: list[str] | None) -> list[GoldenScenario]:
    if names is None:
        return list(GOLDEN_SCENARIOS.values())
    unknown = sorted(set(names) - set(GOLDEN_SCENARIOS))
    if unknown:
        raise KeyError(
            f"unknown golden scenario(s) {unknown}; "
            f"available: {sorted(GOLDEN_SCENARIOS)}"
        )
    return [GOLDEN_SCENARIOS[name] for name in names]


def record_all(
    golden_dir: Path | str = DEFAULT_GOLDEN_DIR,
    *,
    names: list[str] | None = None,
    update: bool = False,
) -> list[Path]:
    """Record the selected scenarios into ``golden_dir``.

    Refuses to overwrite existing goldens unless ``update`` is set — the
    ``--update`` flag is the explicit "yes, the numbers changed on
    purpose" gesture.
    """
    golden_dir = Path(golden_dir)
    written: list[Path] = []
    for scenario in _select(names):
        path = golden_dir / scenario.filename
        if path.exists() and not update:
            raise FileExistsError(
                f"{path} already exists; pass update=True (CLI: --update) "
                f"to regenerate"
            )
        write_trace(record_trace(scenario), path)
        written.append(path)
    return written


def check_all(
    golden_dir: Path | str = DEFAULT_GOLDEN_DIR,
    *,
    names: list[str] | None = None,
    mode: str = "strict",
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> dict[str, TraceDiff]:
    """Replay and diff every selected golden; returns name → diff."""
    golden_dir = Path(golden_dir)
    results: dict[str, TraceDiff] = {}
    for scenario in _select(names):
        path = golden_dir / scenario.filename
        results[scenario.name] = check_golden(
            path, mode=mode, rtol=rtol, atol=atol
        )
    return results
