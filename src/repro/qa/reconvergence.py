"""Reconvergence harness: inject chaos, heal, measure recovery.

For every reputation backend the harness runs two structurally identical
worlds from the same seed — one fault-free, one with a scripted
:class:`~repro.chaos.ChaosSpec` — and tracks the per-cycle reputation
error between them.  During the fault window the error is allowed to
grow arbitrarily; the assertion is about what happens *after the last
heal*: the error must drop below ``tolerance`` within ``budget`` cycles
and stay there for the rest of the run.

The error metric is the **max group-mean error** — the largest
``|mean(chaos[g]) − mean(ref[g])|`` over the world's node groups
(colluders / pre-trusted / normal) with at least
:data:`MIN_GROUP_SIZE` members.  Per-node error cannot be the criterion:
the fault window changes which requests happen, so the two runs' RNG
streams permanently diverge and individual trajectories never re-align —
what recovers after the heal is the aggregate fixed point (colluder
containment, normal-node reputation mass), and that is exactly what the
groups measure.  Tiny groups are excluded because a 2-node mean carries
irreducible sampling noise.

That is the checkable core of the convergence results for decentralised
trust aggregation (see PAPERS.md — Awasthi & Singh's analysis bounds the
post-perturbation convergence of iterative trust propagation): once the
perturbation stops, repeated aggregation contracts back toward the
unperturbed fixed point.  The harness does not assume a rate — it
measures one and enforces a budget.

Byzantine windows only exist where resource managers do, so for backends
without a SocialTrust wrapper (TrustGuard, GossipTrust) the spec's
Byzantine events are dropped and only the partition windows apply; the
per-backend result records which spec actually ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.chaos.spec import ChaosSpec
from repro.qa.differential import _WRAPPABLE, BACKENDS

__all__ = [
    "MIN_GROUP_SIZE",
    "ReconvergenceResult",
    "ReconvergenceReport",
    "run_reconvergence",
]

#: Node groups smaller than this are excluded from the error metric.
MIN_GROUP_SIZE = 3


@dataclass(frozen=True)
class ReconvergenceResult:
    """Recovery measurement for one backend."""

    backend: str
    system_name: str
    #: The spec this cell actually ran (Byzantine windows stripped for
    #: unwrapped backends).
    chaos: dict[str, Any]
    #: Cycle index (0-based) of the last scripted heal.
    heal_cycle: int
    #: Max group-mean reputation error per cycle (see module docstring).
    error_series: tuple[float, ...]
    #: Peak error during/after the fault window (evidence the chaos bit).
    peak_error: float
    #: Cycles after the heal until the error drops below tolerance and
    #: stays there; ``None`` if it never does within the run.
    cycles_to_reconverge: int | None
    tolerance: float
    budget: int

    @property
    def ok(self) -> bool:
        return (
            self.cycles_to_reconverge is not None
            and self.cycles_to_reconverge <= self.budget
        )


@dataclass
class ReconvergenceReport:
    """Outcome of one reconvergence sweep."""

    seed: int
    cycles: int
    chaos: dict[str, Any]
    tolerance: float
    budget: int
    results: list[ReconvergenceResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def summary(self) -> str:
        lines = [
            f"reconvergence run: seed={self.seed} cycles={self.cycles} "
            f"tolerance={self.tolerance} budget={self.budget}"
        ]
        for r in self.results:
            took = (
                f"{r.cycles_to_reconverge} cycle(s) after heal"
                if r.cycles_to_reconverge is not None
                else "NEVER"
            )
            status = "ok" if r.ok else "FAILED"
            lines.append(
                f"  {r.backend:<11} {r.system_name:<28} peak={r.peak_error:.4f} "
                f"reconverged in {took} [{status}]"
            )
        lines.append(
            "result: " + ("ALL BACKENDS RECONVERGED" if self.ok else "RECOVERY FAILED")
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the CI artifact)."""
        return {
            "seed": self.seed,
            "cycles": self.cycles,
            "chaos": self.chaos,
            "tolerance": self.tolerance,
            "budget": self.budget,
            "ok": self.ok,
            "results": [
                {
                    "backend": r.backend,
                    "system": r.system_name,
                    "chaos": r.chaos,
                    "heal_cycle": r.heal_cycle,
                    "peak_error": r.peak_error,
                    "cycles_to_reconverge": r.cycles_to_reconverge,
                    "ok": r.ok,
                    "error_series": list(r.error_series),
                }
                for r in self.results
            ],
        }


def _last_heal_cycle(spec: ChaosSpec, cycles: int) -> int:
    """0-based cycle index by which every scripted fault has healed."""
    heal = 0
    for p in spec.partitions:
        heal = max(heal, p.heal_cycle)
    for b in spec.byzantines:
        heal = max(heal, b.heal_cycle if b.heal_cycle is not None else cycles)
    return heal


def _group_error_series(
    reference_history: np.ndarray,
    chaos_history: np.ndarray,
    groups: Sequence[Sequence[int]],
) -> np.ndarray:
    """Per-cycle max over groups of |Δ group-mean reputation|."""
    if reference_history.shape != chaos_history.shape:
        raise ValueError(
            f"history shapes differ: {reference_history.shape} vs "
            f"{chaos_history.shape}"
        )
    eligible = [list(g) for g in groups if len(g) >= MIN_GROUP_SIZE]
    if not eligible:
        raise ValueError(
            f"no node group has >= {MIN_GROUP_SIZE} members; the error "
            "metric needs at least one aggregate to track"
        )
    per_group = [
        np.abs(
            reference_history[:, ids].mean(axis=1)
            - chaos_history[:, ids].mean(axis=1)
        )
        for ids in eligible
    ]
    return np.max(per_group, axis=0)


def _cycles_to_reconverge(
    errors: np.ndarray, heal_cycle: int, tolerance: float
) -> int | None:
    """Cycles past ``heal_cycle`` until ``errors`` stays below tolerance."""
    below = errors < tolerance
    # Snapshot t covers cycle t (0-based); recovery can begin at the heal
    # cycle itself (the heal event applies before that cycle's queries).
    start = min(heal_cycle, errors.size)
    above = np.flatnonzero(~below[start:])
    if above.size == 0:
        return 0
    first = int(above[-1]) + 1
    if start + first >= errors.size:
        return None
    return first


def run_reconvergence(
    *,
    seed: int = 0,
    cycles: int = 12,
    chaos: ChaosSpec | dict[str, Any] | None = None,
    tolerance: float = 0.02,
    budget: int = 5,
    n_managers: int = 3,
    use_socialtrust: bool = True,
    backends: Sequence[str] = BACKENDS,
    **overrides: Any,
) -> ReconvergenceReport:
    """Measure post-chaos recovery for every backend.

    Each backend runs a fault-free reference and a chaos twin from the
    same seed (same world, same RNG streams — the chaos events are the
    *only* difference) for ``cycles`` simulation cycles; ``overrides``
    are forwarded to :func:`repro.api.build_scenario`.  The default
    ``chaos`` is one mid-run partition window plus a Byzantine window on
    every one of the ``n_managers`` managers, all healing together.
    """
    from repro.api import build_scenario

    if n_managers < 1:
        raise ValueError(f"n_managers must be >= 1, got {n_managers}")
    if chaos is None:
        third = max(1, cycles // 3)
        spec = ChaosSpec.from_dict(
            {
                "partitions": [{"start_cycle": third, "heal_cycle": 2 * third}],
                "byzantines": [
                    {"manager_id": m, "start_cycle": third, "heal_cycle": 2 * third}
                    for m in range(n_managers)
                ],
            }
        )
    elif isinstance(chaos, dict):
        spec = ChaosSpec.from_dict(chaos)
    else:
        spec = chaos
    if spec.empty:
        raise ValueError("chaos spec is empty; nothing to reconverge from")
    heal = _last_heal_cycle(spec, cycles)
    if heal >= cycles:
        raise ValueError(
            f"last heal at cycle {heal} but the run only has {cycles} cycles"
        )
    unknown = sorted(set(backends) - set(BACKENDS))
    if unknown:
        raise ValueError(f"unknown backend(s) {unknown}; choose from {BACKENDS}")

    build: dict[str, Any] = dict(
        n_nodes=24,
        n_pretrusted=2,
        n_colluders=5,
        n_interests=6,
        interests_per_node=(1, 3),
        capacity=10,
        query_cycles=4,
        simulation_cycles=cycles,
        collusion="pcm",
    )
    build.update(overrides)
    report = ReconvergenceReport(
        seed=seed,
        cycles=cycles,
        chaos=spec.to_dict(),
        tolerance=tolerance,
        budget=budget,
    )
    for backend in backends:
        wrap = use_socialtrust and backend in _WRAPPABLE
        cell_spec = spec if wrap else ChaosSpec(partitions=spec.partitions)
        if cell_spec.empty:
            raise ValueError(
                f"backend {backend!r} has no SocialTrust managers and the "
                "spec has no partition windows; nothing applies to it"
            )
        cell_build = dict(build)
        if wrap and "n_managers" not in cell_build:
            cell_build["n_managers"] = max(
                n_managers,
                max((b.manager_id + 1 for b in cell_spec.byzantines), default=0),
            )
        common = dict(
            seed=seed,
            system=backend,
            use_socialtrust=True if wrap else None,
            **cell_build,
        )
        reference = build_scenario(**common).run(cycles)
        chaotic = build_scenario(chaos=cell_spec.to_dict(), **common).run(cycles)
        errors = _group_error_series(
            reference.history,
            chaotic.history,
            (
                reference.colluder_ids,
                reference.pretrusted_ids,
                reference.normal_ids,
            ),
        )
        cell_heal = _last_heal_cycle(cell_spec, cycles)
        report.results.append(
            ReconvergenceResult(
                backend=backend,
                system_name=chaotic.world.system.name,
                chaos=cell_spec.to_dict(),
                heal_cycle=cell_heal,
                error_series=tuple(float(e) for e in errors),
                peak_error=float(errors.max()) if errors.size else 0.0,
                cycles_to_reconverge=_cycles_to_reconverge(
                    errors, cell_heal, tolerance
                ),
                tolerance=tolerance,
                budget=budget,
            )
        )
    return report
