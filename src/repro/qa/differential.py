"""Differential runner: one seeded scenario × every backend × engine mode.

Replays the same scenario keywords across all five reputation backends
(EigenTrust, eBay, PowerTrust, TrustGuard, GossipTrust) and both
query-cycle engines (batched, scalar) and cross-checks the invariants
every cell must share regardless of backend:

* reputations are finite, lie in ``[0, 1]``, and sum to at most 1 (every
  backend normalises its positive mass);
* the history has exactly one snapshot per cycle run;
* within a backend, the batched and scalar engines are **bit-identical**
  — same reputations, same history, same request-routing totals.

The formal analyses of trust aggregation cited in the roadmap (bounded
reputations, convergence under repeated aggregation) make exactly these
properties checkable without knowing the right answer — which is the
point: a differential run needs no golden file, so it can sweep
configurations no golden covers.

:func:`run_coefficient_differential` extends the same idea to the
numerical Ωc/Ωs backends: the dense (seed) and sparse (CSR) coefficient
cores implement the same mathematics with different summation orders, so
every backend × engine cell must produce the same reputations within
floating-point tolerance when run once per
:class:`~repro.core.config.CoefficientBackend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

__all__ = [
    "BACKENDS",
    "ENGINE_MODES",
    "CellResult",
    "DifferentialReport",
    "run_differential",
    "BackendComparison",
    "CoefficientDifferentialReport",
    "run_coefficient_differential",
]

#: Base reputation stacks the runner sweeps.  The first three get their
#: SocialTrust-wrapped variant when ``use_socialtrust`` is on; TrustGuard
#: and GossipTrust embed their own defence and always run bare.
BACKENDS: tuple[str, ...] = (
    "eigentrust",
    "ebay",
    "powertrust",
    "trustguard",
    "gossip",
)

ENGINE_MODES: tuple[str, ...] = ("batched", "scalar")

#: Backends with a SocialTrust-wrapped variant.
_WRAPPABLE = frozenset({"eigentrust", "ebay", "powertrust"})

_SUM_SLACK = 1e-9

#: Tolerance for the dense-vs-sparse coefficient comparison.  The sparse
#: core is the same mathematics with a different float summation order
#: (CSR matmul vs dense matmul), so the reputations agree to within a
#: few ulps; the bound below leaves generous headroom while still
#: catching any genuine semantic divergence.
COEFFICIENT_RTOL = 1e-9
COEFFICIENT_ATOL = 1e-12


@dataclass(frozen=True)
class CellResult:
    """One (backend, engine) cell of the differential grid."""

    backend: str
    engine: str
    system_name: str
    reputations: np.ndarray
    history: np.ndarray
    total_requests: int
    total_served: int
    unserved: int
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class DifferentialReport:
    """Outcome of one differential sweep."""

    seed: int
    cycles: int
    cells: list[CellResult] = field(default_factory=list)
    #: Cross-cell violations (engine-equivalence breaks), on top of the
    #: per-cell invariant violations carried by each cell.
    cross_violations: list[str] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        out = [
            f"{cell.backend}/{cell.engine}: {violation}"
            for cell in self.cells
            for violation in cell.violations
        ]
        out.extend(self.cross_violations)
        return out

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"differential run: seed={self.seed} cycles={self.cycles} "
            f"({len(self.cells)} cells)"
        ]
        for cell in self.cells:
            status = "ok" if cell.ok else f"VIOLATED ({len(cell.violations)})"
            lines.append(
                f"  {cell.backend:<11} {cell.engine:<7} {cell.system_name:<28} "
                f"served={cell.total_served:<6} {status}"
            )
        if self.cross_violations:
            lines.append("cross-engine violations:")
            lines.extend(f"  {v}" for v in self.cross_violations)
        lines.append("result: " + ("ALL INVARIANTS HOLD" if self.ok else "VIOLATIONS FOUND"))
        return "\n".join(lines)


def _cell_invariants(
    reputations: np.ndarray, history: np.ndarray, cycles: int
) -> list[str]:
    violations: list[str] = []
    if not np.all(np.isfinite(reputations)):
        violations.append("non-finite reputation values")
    if reputations.size and (reputations.min() < 0.0 or reputations.max() > 1.0):
        violations.append(
            f"reputations outside [0, 1]: min={reputations.min():.6g}, "
            f"max={reputations.max():.6g}"
        )
    total = float(reputations.sum())
    if total > 1.0 + _SUM_SLACK:
        violations.append(f"reputation mass {total:.12g} exceeds 1")
    if history.shape[0] != cycles:
        violations.append(
            f"history has {history.shape[0]} snapshots for {cycles} cycles"
        )
    if history.size and not np.all(np.isfinite(history)):
        violations.append("non-finite history values")
    if history.size and (history.min() < 0.0 or history.max() > 1.0):
        violations.append("history values outside [0, 1]")
    return violations


def run_differential(
    *,
    seed: int = 0,
    cycles: int = 4,
    collusion: str = "pcm",
    use_socialtrust: bool = True,
    backends: Sequence[str] = BACKENDS,
    engines: Sequence[str] = ENGINE_MODES,
    **overrides: Any,
) -> DifferentialReport:
    """Run the backend × engine grid and cross-check shared invariants.

    Every cell is rebuilt from scratch with the same ``seed`` so the
    worlds are structurally identical; ``overrides`` are forwarded to
    :func:`repro.api.build_scenario` (defaults here are a small, fast
    world — raise ``n_nodes``/``cycles`` for a deeper sweep).
    """
    from repro.api import build_scenario

    unknown = sorted(set(backends) - set(BACKENDS))
    if unknown:
        raise ValueError(f"unknown backend(s) {unknown}; choose from {BACKENDS}")
    build: dict[str, Any] = dict(
        n_nodes=24,
        n_pretrusted=2,
        n_colluders=5,
        n_interests=6,
        interests_per_node=(1, 3),
        capacity=10,
        query_cycles=4,
        simulation_cycles=cycles,
        collusion=collusion,
    )
    build.update(overrides)
    report = DifferentialReport(seed=seed, cycles=cycles)
    for backend in backends:
        wrap = use_socialtrust and backend in _WRAPPABLE
        per_engine: dict[str, CellResult] = {}
        for engine in engines:
            scenario = build_scenario(
                seed=seed,
                system=backend,
                use_socialtrust=True if wrap else None,
                engine=engine,
                **build,
            )
            result = scenario.run(cycles)
            cell = CellResult(
                backend=backend,
                engine=engine,
                system_name=scenario.world.system.name,
                reputations=result.reputations,
                history=result.history,
                total_requests=result.metrics.total_requests,
                total_served=result.metrics.total_served,
                unserved=result.metrics.unserved,
                violations=tuple(
                    _cell_invariants(result.reputations, result.history, cycles)
                ),
            )
            per_engine[engine] = cell
            report.cells.append(cell)
        if "batched" in per_engine and "scalar" in per_engine:
            batched, scalar = per_engine["batched"], per_engine["scalar"]
            if not np.array_equal(batched.reputations, scalar.reputations):
                delta = float(
                    np.abs(batched.reputations - scalar.reputations).max()
                )
                report.cross_violations.append(
                    f"{backend}: batched and scalar reputations differ "
                    f"(max |delta| = {delta:.3e})"
                )
            elif not np.array_equal(batched.history, scalar.history):
                report.cross_violations.append(
                    f"{backend}: batched and scalar histories differ"
                )
            if (batched.total_requests, batched.total_served, batched.unserved) != (
                scalar.total_requests,
                scalar.total_served,
                scalar.unserved,
            ):
                report.cross_violations.append(
                    f"{backend}: batched and scalar routing totals differ"
                )
    return report


@dataclass(frozen=True)
class BackendComparison:
    """Dense vs sparse coefficient backends for one (backend, engine) cell."""

    backend: str
    engine: str
    system_name: str
    wrapped: bool
    max_abs_diff: float
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CoefficientDifferentialReport:
    """Outcome of one dense-vs-sparse coefficient sweep."""

    seed: int
    cycles: int
    rtol: float
    atol: float
    comparisons: list[BackendComparison] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        return [
            f"{cmp.backend}/{cmp.engine}: {violation}"
            for cmp in self.comparisons
            for violation in cmp.violations
        ]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"coefficient differential: seed={self.seed} cycles={self.cycles} "
            f"rtol={self.rtol:g} atol={self.atol:g} "
            f"({len(self.comparisons)} cells, dense vs sparse)"
        ]
        for cmp in self.comparisons:
            status = "ok" if cmp.ok else f"VIOLATED ({len(cmp.violations)})"
            note = "socialtrust" if cmp.wrapped else "bare"
            lines.append(
                f"  {cmp.backend:<11} {cmp.engine:<7} {note:<11} "
                f"max |dense - sparse| = {cmp.max_abs_diff:.3e} {status}"
            )
        lines.append(
            "result: " + ("BACKENDS AGREE" if self.ok else "VIOLATIONS FOUND")
        )
        return "\n".join(lines)


def run_coefficient_differential(
    *,
    seed: int = 0,
    cycles: int = 4,
    collusion: str = "pcm",
    use_socialtrust: bool = True,
    backends: Sequence[str] = BACKENDS,
    engines: Sequence[str] = ENGINE_MODES,
    rtol: float = COEFFICIENT_RTOL,
    atol: float = COEFFICIENT_ATOL,
    **overrides: Any,
) -> CoefficientDifferentialReport:
    """Run every backend × engine cell once per coefficient backend.

    Each cell is built twice from the same seed — once with
    ``coefficient_backend="dense"`` and once with ``"sparse"`` (exact
    mode, no top-k truncation) — and the final reputations, history and
    request-routing totals are compared.  SocialTrust-wrapped cells must
    agree within float tolerance (the two cores sum in different
    orders); TrustGuard and GossipTrust never consult the coefficient
    core, so their cells are required to stay **bit-identical** — any
    drift there means the backend switch leaked into unrelated state.
    """
    from repro.api import build_scenario

    unknown = sorted(set(backends) - set(BACKENDS))
    if unknown:
        raise ValueError(f"unknown backend(s) {unknown}; choose from {BACKENDS}")
    build: dict[str, Any] = dict(
        n_nodes=24,
        n_pretrusted=2,
        n_colluders=5,
        n_interests=6,
        interests_per_node=(1, 3),
        capacity=10,
        query_cycles=4,
        simulation_cycles=cycles,
        collusion=collusion,
    )
    build.update(overrides)
    socialtrust_overrides = dict(build.pop("socialtrust", None) or {})
    socialtrust_overrides.pop("coefficient_backend", None)
    report = CoefficientDifferentialReport(
        seed=seed, cycles=cycles, rtol=rtol, atol=atol
    )
    for backend in backends:
        wrap = use_socialtrust and backend in _WRAPPABLE
        for engine in engines:
            results = {}
            for coeff in ("dense", "sparse"):
                scenario = build_scenario(
                    seed=seed,
                    system=backend,
                    use_socialtrust=True if wrap else None,
                    engine=engine,
                    socialtrust={
                        **socialtrust_overrides,
                        "coefficient_backend": coeff,
                    },
                    **build,
                )
                results[coeff] = (scenario, scenario.run(cycles))
            (scenario_d, dense), (_, sparse_r) = results["dense"], results["sparse"]
            violations: list[str] = []
            delta = float(
                np.abs(dense.reputations - sparse_r.reputations).max()
            ) if dense.reputations.size else 0.0
            if wrap:
                if not np.allclose(
                    dense.reputations, sparse_r.reputations, rtol=rtol, atol=atol
                ):
                    violations.append(
                        f"reputations diverge (max |delta| = {delta:.3e})"
                    )
                if dense.history.shape != sparse_r.history.shape or not np.allclose(
                    dense.history, sparse_r.history, rtol=rtol, atol=atol
                ):
                    violations.append("histories diverge beyond tolerance")
            else:
                if not np.array_equal(dense.reputations, sparse_r.reputations):
                    violations.append(
                        "bare backend not bit-identical across coefficient "
                        f"backends (max |delta| = {delta:.3e})"
                    )
                if not np.array_equal(dense.history, sparse_r.history):
                    violations.append("bare backend histories differ")
            if (
                dense.metrics.total_requests,
                dense.metrics.total_served,
                dense.metrics.unserved,
            ) != (
                sparse_r.metrics.total_requests,
                sparse_r.metrics.total_served,
                sparse_r.metrics.unserved,
            ):
                violations.append("request-routing totals differ")
            report.comparisons.append(
                BackendComparison(
                    backend=backend,
                    engine=engine,
                    system_name=scenario_d.world.system.name,
                    wrapped=wrap,
                    max_abs_diff=delta,
                    violations=tuple(violations),
                )
            )
    return report
