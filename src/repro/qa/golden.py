"""Golden-trace recorder and checker.

A *golden trace* freezes everything a scenario run decides along the way —
the per-cycle reputation vectors, the detector's derived thresholds and
per-pair findings (behaviour classes, Ωc/Ωs evidence, Gaussian damping
weight), and SHA-256 digests of the full Ωc/Ωs matrices — into one JSONL
file small enough to check in.  Replaying the same build keywords with the
same seed must reproduce the trace; :func:`diff_traces` compares a replay
against the golden in two modes:

* **strict** — bit-identical: floats compare exactly (JSON round-trips
  IEEE-754 doubles losslessly) and the matrix digests must match byte for
  byte.  This is the mode for same-machine regression: any divergence
  means a numerical behaviour change, deliberate or not.
* **tolerance** — floats compare within ``rtol``/``atol`` and digests are
  ignored (matrix *summary statistics* still compare).  This is the mode
  for cross-platform checks, where a different BLAS may legally reorder
  reductions.

The differ reports the first divergence in human-readable form (which
cycle, which field, both values) so a failed golden check reads like a
code-review comment, not a wall of floats.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.detector import DetectionResult, SuspicionReason

__all__ = [
    "FORMAT_VERSION",
    "GoldenScenario",
    "Divergence",
    "TraceDiff",
    "record_cycles",
    "record_trace",
    "write_trace",
    "load_trace",
    "diff_traces",
    "check_golden",
]

#: Bumped whenever the trace layout changes incompatibly; the checker
#: refuses to compare across versions instead of reporting noise.
FORMAT_VERSION = 1


@dataclass(frozen=True)
class GoldenScenario:
    """One recordable scenario: a name, build keywords, and a run length.

    ``build`` holds JSON-serializable keyword arguments for
    :func:`repro.api.build_scenario` (system/collusion as strings, sizes
    as ints) so the scenario can be reconstructed from the trace header
    alone — a golden file is self-describing.
    """

    name: str
    build: dict[str, Any]
    cycles: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")

    @property
    def filename(self) -> str:
        return f"{self.name}.jsonl"


def _matrix_digest(matrix: np.ndarray) -> dict[str, Any]:
    """Compact fingerprint of a dense matrix: exact digest + summary stats.

    The SHA-256 over the raw float64 bytes carries the strict-mode
    bit-identity check; the summary statistics carry the tolerance-mode
    check (and give the divergence report something human-readable).
    """
    contiguous = np.ascontiguousarray(matrix, dtype=np.float64)
    return {
        "sha256": hashlib.sha256(contiguous.tobytes()).hexdigest(),
        "sum": float(contiguous.sum()),
        "max": float(contiguous.max()) if contiguous.size else 0.0,
        "nonzeros": int(np.count_nonzero(contiguous)),
    }


def _reason_names(reasons: SuspicionReason) -> list[str]:
    return [flag.name for flag in SuspicionReason if flag in reasons]


def _detector_entry(result: DetectionResult) -> dict[str, Any]:
    thresholds = result.thresholds
    return {
        "thresholds": {
            "T+": thresholds.pos_frequency,
            "T-": thresholds.neg_frequency,
            "TR": thresholds.low_reputation,
            "Tcl": thresholds.closeness_low,
            "Tch": thresholds.closeness_high,
            "Tsl": thresholds.similarity_low,
            "Tsh": thresholds.similarity_high,
        },
        "findings": [
            {
                "rater": finding.rater,
                "ratee": finding.ratee,
                "reasons": _reason_names(finding.reasons),
                "closeness": finding.closeness,
                "similarity": finding.similarity,
                "weight": finding.weight,
            }
            for finding in result.findings
        ],
    }


def _json_safe(value: Any) -> Any:
    """JSON cannot carry inf/nan portably; encode them as tagged strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return {"__float__": repr(value)}
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


def _json_restore(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__float__"}:
            return float(value["__float__"])
        return {k: _json_restore(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_json_restore(v) for v in value]
    return value


def record_cycles(simulation, cycles: int) -> list[dict[str, Any]]:
    """Drive ``simulation`` for ``cycles`` more cycles, capturing one trace
    entry per cycle (cycle numbers continue from ``simulation.cycles_run``).

    The per-cycle capture of :func:`record_trace`, exposed separately so
    the chaos kill-and-resume tests can record an *already running* (or
    freshly resumed) simulation and strict-diff the pieces.  SocialTrust
    detail (detector decisions, Ωc/Ωs digests) is captured for both the
    centralised wrapper and the distributed manager execution — anything
    exposing ``last_detection``.
    """
    system = simulation.system
    social = system if hasattr(system, "last_detection") else None
    lines: list[dict[str, Any]] = []
    for _ in range(cycles):
        cycle = simulation.cycles_run
        reputations = simulation.run_simulation_cycle()
        entry: dict[str, Any] = {
            "type": "cycle",
            "cycle": cycle,
            "reputations": [float(x) for x in reputations],
        }
        if social is not None:
            result = social.last_detection
            assert result is not None  # update() ran this cycle
            entry["detector"] = _detector_entry(result)
            entry["omega_c"] = _matrix_digest(
                social.closeness_computer.closeness_matrix()
            )
            entry["omega_s"] = _matrix_digest(
                social.similarity_computer.similarity_matrix()
            )
        lines.append(entry)
    return lines


def record_trace(scenario: GoldenScenario) -> list[dict[str, Any]]:
    """Run ``scenario`` from scratch and return its trace lines.

    The scenario is rebuilt via the public facade, then driven one
    simulation cycle at a time so every intermediate decision can be
    captured: the post-update reputation vector, the SocialTrust
    detector's thresholds/findings/damping weights, and digests of the
    exact Ωc/Ωs matrices the detector consumed.
    """
    # Imported here, not at module top: repro.api imports the full
    # simulation stack, and the differ half of this module must stay
    # importable in contexts that only read/compare traces.
    from repro.api import build_scenario

    built = build_scenario(seed=scenario.seed, **scenario.build)
    simulation = built.world.simulation
    system = built.world.system

    lines: list[dict[str, Any]] = [
        {
            "type": "header",
            "format_version": FORMAT_VERSION,
            "name": scenario.name,
            "seed": scenario.seed,
            "cycles": scenario.cycles,
            "build": dict(scenario.build),
            "system": system.name,
        }
    ]
    lines.extend(record_cycles(simulation, scenario.cycles))
    metrics = simulation.metrics
    config = built.config
    final = metrics.final_reputations()

    def group_mean(ids: tuple[int, ...]) -> float | None:
        return float(final[list(ids)].mean()) if ids else None

    lines.append(
        {
            "type": "summary",
            "total_requests": metrics.total_requests,
            "total_served": metrics.total_served,
            "unserved": metrics.unserved,
            "colluder_mean": group_mean(config.colluder_ids),
            "normal_mean": group_mean(config.normal_ids),
            "pretrusted_mean": group_mean(config.pretrusted_ids),
        }
    )
    return lines


def write_trace(lines: list[dict[str, Any]], path: Path | str) -> int:
    """Write trace lines as JSONL; returns the number of lines written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(_json_safe(line), separators=(",", ":")))
            handle.write("\n")
    return len(lines)


def load_trace(path: Path | str) -> list[dict[str, Any]]:
    """Load a JSONL golden trace; raises ``ValueError`` on malformed input."""
    path = Path(path)
    lines: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(_json_restore(json.loads(raw)))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: line {number}: invalid JSON ({exc})") from None
    if not lines or lines[0].get("type") != "header":
        raise ValueError(f"{path}: not a golden trace (missing header line)")
    version = lines[0].get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: format version {version!r} != supported {FORMAT_VERSION}"
        )
    return lines


@dataclass(frozen=True)
class Divergence:
    """One point where the replay left the golden trace."""

    #: Simulation cycle the divergence occurred in (None: header/summary).
    cycle: int | None
    #: Dotted path of the diverging field, e.g. ``reputations[17]``.
    field: str
    expected: Any
    actual: Any

    def describe(self) -> str:
        where = "header/summary" if self.cycle is None else f"cycle {self.cycle}"
        return (
            f"{where}: {self.field}\n"
            f"    golden : {self.expected!r}\n"
            f"    replay : {self.actual!r}"
        )


@dataclass
class TraceDiff:
    """Outcome of one golden-vs-replay comparison."""

    mode: str
    divergences: list[Divergence] = field(default_factory=list)
    #: Where the golden side came from, for the report header.
    source: str = ""

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def first(self) -> Divergence | None:
        return self.divergences[0] if self.divergences else None

    def render(self, max_shown: int = 10) -> str:
        """Human-readable report leading with the first divergence."""
        header = f"golden-trace comparison (mode={self.mode})"
        if self.source:
            header += f"\ngolden: {self.source}"
        if self.ok:
            return f"{header}\nresult: IDENTICAL (no divergence)"
        shown = self.divergences[:max_shown]
        body = "\n".join(f"  [{i}] {d.describe()}" for i, d in enumerate(shown, 1))
        suffix = ""
        if len(self.divergences) > max_shown:
            suffix = f"\n  ... and {len(self.divergences) - max_shown} more"
        return (
            f"{header}\n"
            f"result: DIVERGED ({len(self.divergences)} divergence(s))\n"
            f"first divergence — {shown[0].describe()}\n"
            f"all divergences:\n{body}{suffix}"
        )


class _Differ:
    """Recursive structural comparison with strict / tolerance numerics."""

    def __init__(self, mode: str, rtol: float, atol: float, limit: int) -> None:
        if mode not in ("strict", "tolerance"):
            raise ValueError(f"mode must be 'strict' or 'tolerance', got {mode!r}")
        self.mode = mode
        self.rtol = rtol
        self.atol = atol
        self.limit = limit
        self.divergences: list[Divergence] = []

    def _full(self) -> bool:
        return len(self.divergences) >= self.limit

    def _record(self, cycle: int | None, path: str, expected: Any, actual: Any) -> None:
        if not self._full():
            self.divergences.append(Divergence(cycle, path, expected, actual))

    def _numbers_equal(self, a: float, b: float) -> bool:
        if self.mode == "strict":
            return a == b or (math.isnan(a) and math.isnan(b))
        return math.isclose(a, b, rel_tol=self.rtol, abs_tol=self.atol) or (
            math.isnan(a) and math.isnan(b)
        )

    def compare(self, cycle: int | None, path: str, expected: Any, actual: Any) -> None:
        if self._full():
            return
        # Digest strings are a bit-identity check only; in tolerance mode
        # the summary statistics next to them carry the comparison.
        if self.mode == "tolerance" and path.endswith(".sha256"):
            return
        if isinstance(expected, bool) or isinstance(actual, bool):
            if expected != actual:
                self._record(cycle, path, expected, actual)
            return
        if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
            if not self._numbers_equal(float(expected), float(actual)):
                self._record(cycle, path, expected, actual)
            return
        if isinstance(expected, dict) and isinstance(actual, dict):
            for key in sorted(set(expected) | set(actual)):
                if key not in expected:
                    self._record(cycle, f"{path}.{key}", "<absent>", actual[key])
                elif key not in actual:
                    self._record(cycle, f"{path}.{key}", expected[key], "<absent>")
                else:
                    self.compare(cycle, f"{path}.{key}", expected[key], actual[key])
            return
        if isinstance(expected, list) and isinstance(actual, list):
            if len(expected) != len(actual):
                self._record(
                    cycle,
                    f"{path}<length>",
                    len(expected),
                    len(actual),
                )
                return
            for index, (e, a) in enumerate(zip(expected, actual)):
                self.compare(cycle, f"{path}[{index}]", e, a)
            return
        if expected != actual:
            self._record(cycle, path, expected, actual)


def diff_traces(
    expected: list[dict[str, Any]],
    actual: list[dict[str, Any]],
    *,
    mode: str = "strict",
    rtol: float = 1e-9,
    atol: float = 1e-12,
    max_divergences: int = 50,
    source: str = "",
) -> TraceDiff:
    """Compare a replayed trace against the golden one.

    ``expected`` is the golden side, ``actual`` the replay.  Comparison is
    line-by-line and structural; the first ``max_divergences`` divergences
    are collected (first-divergence first) so the report stays readable.
    """
    differ = _Differ(mode, rtol, atol, max_divergences)
    if len(expected) != len(actual):
        differ._record(None, "<trace length>", len(expected), len(actual))
    for exp_line, act_line in zip(expected, actual):
        cycle = exp_line.get("cycle") if exp_line.get("type") == "cycle" else None
        kind = exp_line.get("type", "<untyped>")
        differ.compare(cycle, kind, exp_line, act_line)
        if differ._full():
            break
    return TraceDiff(mode=mode, divergences=differ.divergences, source=source)


def check_golden(
    path: Path | str,
    *,
    mode: str = "strict",
    rtol: float = 1e-9,
    atol: float = 1e-12,
) -> TraceDiff:
    """Load a golden trace, replay its scenario from the header, and diff.

    The golden file is self-describing — name, seed, cycle count and build
    keywords all come from the header line — so the check needs nothing
    but the file and the code under test.
    """
    golden = load_trace(path)
    header = golden[0]
    scenario = GoldenScenario(
        name=header["name"],
        build=dict(header["build"]),
        cycles=int(header["cycles"]),
        seed=int(header["seed"]),
    )
    replay = record_trace(scenario)
    return diff_traces(
        golden, replay, mode=mode, rtol=rtol, atol=atol, source=str(path)
    )
