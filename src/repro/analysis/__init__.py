"""Statistics helpers shared by the trace analysis and experiment harness."""

from repro.analysis.render import bar_chart, distribution_panel, sparkline
from repro.analysis.stats import (
    ecdf,
    hill_tail_exponent,
    paper_correlation,
    pearson_correlation,
    percentile_summary,
)

__all__ = [
    "bar_chart",
    "distribution_panel",
    "sparkline",
    "ecdf",
    "hill_tail_exponent",
    "paper_correlation",
    "pearson_correlation",
    "percentile_summary",
]
