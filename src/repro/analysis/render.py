"""Terminal rendering of experiment data.

The paper's figures are per-node reputation scatter plots and bar charts;
the benchmark harness regenerates the underlying series and these helpers
render them as compact ASCII so the harness output *looks like* the figure
it reproduces — no plotting dependency required.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "bar_chart", "distribution_panel"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: int | None = None) -> str:
    """One-line sparkline of ``values`` (down-sampled to ``width`` buckets).

    All-equal input renders as a flat low line; empty input is an error.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot render an empty sparkline")
    if width is not None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if data.size > width:
            buckets = np.array_split(data, width)
            data = np.array([b.mean() for b in buckets])
    lo = data.min()
    hi = data.max()
    if hi == lo:
        return _SPARK_LEVELS[0] * data.size
    scaled = (data - lo) / (hi - lo)
    indices = np.minimum(
        (scaled * len(_SPARK_LEVELS)).astype(int), len(_SPARK_LEVELS) - 1
    )
    return "".join(_SPARK_LEVELS[i] for i in indices)


def bar_chart(
    entries: Mapping[str, float],
    *,
    width: int = 40,
    fmt: str = "{:.4f}",
) -> str:
    """Horizontal ASCII bar chart, one row per entry, scaled to the max."""
    if not entries:
        raise ValueError("cannot render an empty bar chart")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(abs(v) for v in entries.values())
    label_width = max(len(k) for k in entries)
    lines = []
    for key, value in entries.items():
        filled = 0 if peak == 0 else round(abs(value) / peak * width)
        bar = "#" * filled
        lines.append(f"{key:<{label_width}} | {bar:<{width}} {fmt.format(value)}")
    return "\n".join(lines)


def distribution_panel(
    reputations: np.ndarray,
    groups: Mapping[str, Sequence[int]],
    *,
    width: int = 60,
) -> str:
    """Render a per-node reputation distribution as grouped sparklines.

    Mirrors the paper's Fig. 8-18 panels: one sparkline per node group
    (pre-trusted / colluders / normal), each annotated with its mean —
    enough to read "who wins" straight off the harness output.
    """
    reps = np.asarray(reputations, dtype=np.float64)
    if not groups:
        raise ValueError("need at least one group")
    lines = []
    label_width = max(len(k) for k in groups)
    for label, ids in groups.items():
        ids = list(ids)
        if not ids:
            continue
        values = reps[ids]
        lines.append(
            f"{label:<{label_width}} {sparkline(values, width=width)} "
            f"mean={values.mean():.5f} max={values.max():.5f}"
        )
    return "\n".join(lines)
