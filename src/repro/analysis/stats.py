"""Statistics helpers.

Includes the paper's own correlation statistic: Section 3.1 defines

    C = s_xy^2 / (s_xx * s_yy)

with ``s_xy = sum (x_i - x̄)(y_i - ȳ)`` etc., i.e. the *square* of the
Pearson coefficient (the coefficient of determination).  The paper reports
C = 0.996 for reputation vs business-network size and C = 0.092 for
reputation vs personal-network size; we expose both this statistic and the
plain Pearson ``r`` so tests can check either.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "hill_tail_exponent",
    "paper_correlation",
    "pearson_correlation",
    "ecdf",
    "percentile_summary",
    "PercentileSummary",
]


def _validate_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 1 or y.ndim != 1:
        raise ValueError("inputs must be one-dimensional")
    if x.size != y.size:
        raise ValueError(f"length mismatch: {x.size} vs {y.size}")
    if x.size < 2:
        raise ValueError("need at least two observations")
    return x, y


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Plain Pearson ``r``; 0 when either variable is constant."""
    x, y = _validate_xy(x, y)
    dx = x - x.mean()
    dy = y - y.mean()
    # Normalise scales first so the cross products cannot underflow to zero
    # (sxx * syy of subnormal deviations would otherwise divide by 0).
    dx_scale = np.abs(dx).max()
    dy_scale = np.abs(dy).max()
    if dx_scale == 0.0 or dy_scale == 0.0:
        return 0.0
    dx = dx / dx_scale
    dy = dy / dy_scale
    sxx = float(dx @ dx)
    syy = float(dy @ dy)
    if sxx == 0.0 or syy == 0.0:
        return 0.0
    r = float((dx @ dy) / np.sqrt(sxx * syy))
    return float(np.clip(r, -1.0, 1.0))


def paper_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """The paper's ``C = s_xy^2 / (s_xx s_yy)`` — squared Pearson, in [0, 1]."""
    r = pearson_correlation(x, y)
    return r * r


def ecdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative probabilities]."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0:
        raise ValueError("cannot build an ECDF from zero observations")
    p = np.arange(1, v.size + 1, dtype=np.float64) / v.size
    return v, p


@dataclass(frozen=True)
class PercentileSummary:
    """1st / 50th / 99th percentile triple, as Fig. 19 reports."""

    p01: float
    median: float
    p99: float


def hill_tail_exponent(values: np.ndarray, *, tail_fraction: float = 0.1) -> float:
    """Hill estimator of a distribution's power-law tail exponent.

    Fits ``P(X > x) ~ x^-alpha`` to the top ``tail_fraction`` of the
    positive observations.  The paper's Fig. 1/4 log-log plots rest on
    heavy-tailed purchase and reputation distributions; this quantifies
    the tail so the synthetic marketplace can be checked against it
    (heavy tail <=> small alpha, typically 1-3 for social/commerce data).
    """
    v = np.asarray(values, dtype=np.float64)
    v = np.sort(v[v > 0])
    if v.size < 10:
        raise ValueError("need at least 10 positive observations")
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError(f"tail_fraction must be in (0, 1], got {tail_fraction}")
    k = max(2, int(np.ceil(v.size * tail_fraction)))
    tail = v[-k:]
    threshold = tail[0]
    logs = np.log(tail / threshold)
    mean_log = logs.mean()
    if mean_log <= 0:
        return float("inf")
    return float(1.0 / mean_log)


def percentile_summary(values: np.ndarray) -> PercentileSummary:
    """1st/50th/99th percentiles of ``values`` (the Fig. 19 summary)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("cannot summarise zero observations")
    lo, mid, hi = np.percentile(v, [1.0, 50.0, 99.0])
    return PercentileSummary(p01=float(lo), median=float(mid), p99=float(hi))
