"""Calibrated synthetic Overstock marketplace.

The generator reproduces the aggregate statistics the paper's Section 3
reports, each traceable to a concrete mechanism:

* **Fig. 1 / O1** — buyers prefer high-reputed sellers (selection weight
  proportional to reputation + 1), so reputation, business-network size
  and transactions-received grow together: the reputation/business-size
  correlation lands near the paper's C ≈ 0.996 because both are near-
  linear functions of trading volume.
* **Fig. 2 / O2** — friendships form by preferential attachment on the
  *social* graph, independent of trading volume, so the
  reputation/personal-size correlation is weak (paper: C ≈ 0.092).
* **Fig. 3 / O3-O4** — a fraction of purchases is routed through the
  personal network with per-hop decaying preference, and rating values
  decay with social distance, so both the mean rating value and the mean
  rating count fall with hop distance.
* **Fig. 4 / O5-O6** — per-buyer category preferences are Zipf-ranked
  (exponent tuned so the top 3 ranks cover ≈ 88% of purchases) and
  sellers specialise in few categories, so most transactions happen
  between users with high interest similarity.
* Ratings live in Overstock's [-2, +2]; pairs trade in short bursts so
  the mean per-pair rating frequency is ≈ 2.2/month for active pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.social.generators import preferential_attachment_graph
from repro.social.paths import bfs_distances
from repro.trace.schema import RATING_MAX, RATING_MIN, Trace, TraceUser, Transaction
from repro.utils.rng import RngStream, spawn_rng

__all__ = ["MarketplaceConfig", "generate_trace"]


@dataclass(frozen=True)
class MarketplaceConfig:
    """Knobs of the synthetic marketplace (defaults are laptop-scale)."""

    n_users: int = 2500
    n_categories: int = 30
    n_months: int = 24
    #: Mean purchases per user per month (heterogeneous per user).
    mean_purchases_per_month: float = 0.6
    #: Zipf exponent of per-buyer category preference; with the observed-
    #: rank inflation of finite purchase histories, 1.4 puts ~88-89% of a
    #: user's purchases in its top 3 observed categories (Fig. 4(a)).
    category_zipf_exponent: float = 1.4
    #: Number of categories each buyer is interested in.
    buyer_interest_range: tuple[int, int] = (4, 10)
    #: Number of categories each seller offers.
    seller_category_range: tuple[int, int] = (2, 6)
    #: Friendship edges per node in the preferential-attachment graph.
    friendship_edges_per_node: int = 2
    #: Fraction of purchases routed through the personal network.
    social_purchase_fraction: float = 0.15
    #: Per-hop selection weights for socially routed purchases (hop 1-3).
    hop_weights: tuple[float, float, float] = (0.6, 0.25, 0.15)
    #: Mean rating value by social distance (hop 1, 2, 3, >=4), before
    #: noise and clipping to [-2, +2]; matches the Fig. 3(a) decay.
    rating_mean_by_hop: tuple[float, float, float, float] = (1.9, 1.5, 1.0, 0.7)
    rating_noise_std: float = 0.5
    #: Mean of the seller's counter-rating of the buyer (buyers who pay are
    #: almost always rated well, independent of social distance).
    counter_rating_mean: float = 1.7
    #: Geometric "extra ratings in the burst" parameter; a success
    #: probability of 0.45 gives a mean burst of ~2.2 ratings, the paper's
    #: mean per-pair monthly rating frequency.
    burst_continue_prob: float = 0.55

    def __post_init__(self) -> None:
        if self.n_users < 10:
            raise ValueError("n_users must be >= 10")
        if self.n_categories < max(self.buyer_interest_range[1], self.seller_category_range[1]):
            raise ValueError("n_categories too small for the interest ranges")
        if not 0.0 <= self.social_purchase_fraction <= 1.0:
            raise ValueError("social_purchase_fraction must be in [0, 1]")
        if abs(sum(self.hop_weights) - 1.0) > 1e-9:
            raise ValueError("hop_weights must sum to 1")
        if not 0.0 <= self.burst_continue_prob < 1.0:
            raise ValueError("burst_continue_prob must be in [0, 1)")


def _zipf_weights(k: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, k + 1, dtype=np.float64)
    w = ranks**-exponent
    return w / w.sum()


def _rating_for_hop(hop: int, config: MarketplaceConfig, rng: RngStream) -> float:
    means = config.rating_mean_by_hop
    mean = means[min(hop, 4) - 1] if hop >= 1 else means[-1]
    value = rng.normal(mean, config.rating_noise_std)
    return float(np.clip(value, RATING_MIN, RATING_MAX))


def generate_trace(
    config: MarketplaceConfig | None = None, seed: int = 0
) -> Trace:
    """Run the marketplace for ``n_months`` and return the full trace."""
    config = config or MarketplaceConfig()
    rng = spawn_rng(seed, 0)
    n = config.n_users
    k = config.n_categories

    # Personal network: scale-free, independent of trading volume.
    social = preferential_attachment_graph(
        n, rng, edges_per_node=config.friendship_edges_per_node
    )

    # Per-user roles.
    users: list[TraceUser] = []
    lo_b, hi_b = config.buyer_interest_range
    lo_s, hi_s = config.seller_category_range
    for uid in range(n):
        n_buy = int(rng.integers(lo_b, hi_b + 1))
        buy_prefs = tuple(
            int(c) for c in rng.choice(k, size=n_buy, replace=False)
        )
        n_sell = int(rng.integers(lo_s, hi_s + 1))
        sell = frozenset(int(c) for c in rng.choice(k, size=n_sell, replace=False))
        users.append(
            TraceUser(
                user_id=uid,
                friends=set(social.friends(uid)),
                sell_categories=sell,
                buy_preferences=buy_prefs,
            )
        )

    # Sellers per category.
    sellers_by_category: list[np.ndarray] = [
        np.array([u.user_id for u in users if c in u.sell_categories], dtype=np.int64)
        for c in range(k)
    ]

    # Heterogeneous buyer activity (lognormal) around the configured mean.
    activity = rng.lognormal(mean=0.0, sigma=0.7, size=n)
    activity *= config.mean_purchases_per_month / activity.mean()

    reputations = np.zeros(n, dtype=np.float64)
    transactions: list[Transaction] = []

    # Cache of per-buyer social neighbourhoods by hop (static friendships).
    hop_cache: dict[int, list[np.ndarray]] = {}

    def hops_of(buyer: int) -> list[np.ndarray]:
        cached = hop_cache.get(buyer)
        if cached is None:
            dist = bfs_distances(social, buyer, max_hops=3)
            cached = [
                np.array([v for v, d in dist.items() if d == h], dtype=np.int64)
                for h in (1, 2, 3)
            ]
            hop_cache[buyer] = cached
        return cached

    for month in range(config.n_months):
        n_purchases = rng.poisson(activity)
        for buyer_id in np.flatnonzero(n_purchases):
            buyer = users[int(buyer_id)]
            prefs = buyer.buy_preferences
            weights = _zipf_weights(len(prefs), config.category_zipf_exponent)
            for _ in range(int(n_purchases[buyer_id])):
                category = int(prefs[rng.choice(len(prefs), p=weights)])
                seller_id = _pick_seller(
                    int(buyer_id),
                    category,
                    sellers_by_category[category],
                    reputations,
                    hops_of(int(buyer_id)),
                    config,
                    rng,
                )
                if seller_id is None:
                    continue
                hop = _social_hop(int(buyer_id), seller_id, hops_of(int(buyer_id)))
                rating = _rating_for_hop(hop, config, rng)
                counter = float(
                    np.clip(
                        rng.normal(config.counter_rating_mean, config.rating_noise_std),
                        RATING_MIN,
                        RATING_MAX,
                    )
                )
                n_ratings = 1 + int(rng.geometric(1.0 - config.burst_continue_prob)) - 1
                transactions.append(
                    Transaction(
                        buyer=int(buyer_id),
                        seller=seller_id,
                        category=category,
                        rating=rating,
                        month=month,
                        counter_rating=counter,
                        n_ratings=max(1, n_ratings),
                    )
                )
                # Overstock rating is mutual: the buyer's reputation grows too.
                reputations[seller_id] += rating
                reputations[int(buyer_id)] += counter
                buyer.business_contacts.add(seller_id)
                users[seller_id].business_contacts.add(int(buyer_id))

    for uid, user in enumerate(users):
        user.reputation = float(reputations[uid])
    return Trace(
        users=users,
        transactions=transactions,
        n_categories=k,
        n_months=config.n_months,
    )


def _social_hop(buyer: int, seller: int, hops: list[np.ndarray]) -> int:
    for h, members in enumerate(hops, start=1):
        if seller in members:
            return h
    return 4


def _pick_seller(
    buyer: int,
    category: int,
    category_sellers: np.ndarray,
    reputations: np.ndarray,
    hops: list[np.ndarray],
    config: MarketplaceConfig,
    rng: RngStream,
) -> int | None:
    candidates = category_sellers[category_sellers != buyer]
    if candidates.size == 0:
        return None
    if rng.random() < config.social_purchase_fraction:
        # Socially routed purchase: prefer close hops that sell the category.
        hop_probs = np.asarray(config.hop_weights)
        chosen_hops = rng.choice(3, size=3, replace=False, p=hop_probs)
        candidate_set = set(candidates.tolist())
        for h in chosen_hops:
            pool = [v for v in hops[int(h)] if v in candidate_set]
            if pool:
                return int(rng.choice(pool))
        # No socially close seller offers the category; fall through.
    weights = reputations[candidates] + 1.0
    weights = np.clip(weights, 1.0, None)
    weights = weights / weights.sum()
    return int(candidates[rng.choice(candidates.size, p=weights)])
