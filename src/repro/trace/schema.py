"""Record types for marketplace traces.

Mirrors what the Overstock crawl exposes: each user has a *personal
network* (friendship links), a *business network* (past transaction
partners), a reputation accumulated from ratings in [-2, +2], and an
interest profile over product categories; each transaction records buyer,
seller, category, rating and month.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TraceUser", "Transaction", "Trace"]

#: Overstock's rating scale.
RATING_MIN = -2.0
RATING_MAX = 2.0


@dataclass
class TraceUser:
    """One marketplace user."""

    user_id: int
    #: Friendship links (symmetric).
    friends: set[int] = field(default_factory=set)
    #: Past transaction partners (symmetric; grows with trading).
    business_contacts: set[int] = field(default_factory=set)
    #: Accumulated rating sum.
    reputation: float = 0.0
    #: Categories this user *sells* in.
    sell_categories: frozenset[int] = frozenset()
    #: Zipf-ranked categories this user prefers to *buy* in (best first).
    buy_preferences: tuple[int, ...] = ()

    @property
    def personal_network_size(self) -> int:
        return len(self.friends)

    @property
    def business_network_size(self) -> int:
        return len(self.business_contacts)


@dataclass(frozen=True)
class Transaction:
    """One rated purchase."""

    buyer: int
    seller: int
    category: int
    #: Buyer's rating of the seller in [-2, +2].
    rating: float
    #: Month index since trace start.
    month: int
    #: Seller's counter-rating of the buyer (Overstock rating is mutual).
    counter_rating: float = 0.0
    #: Number of individual ratings this pair exchanged for the purchase
    #: burst (the paper measures rating *frequency* per pair).
    n_ratings: int = 1

    def __post_init__(self) -> None:
        if self.buyer == self.seller:
            raise ValueError("self-trades are not allowed")
        if not RATING_MIN <= self.rating <= RATING_MAX:
            raise ValueError(
                f"rating {self.rating} outside [{RATING_MIN}, {RATING_MAX}]"
            )
        if not RATING_MIN <= self.counter_rating <= RATING_MAX:
            raise ValueError(
                f"counter_rating {self.counter_rating} outside "
                f"[{RATING_MIN}, {RATING_MAX}]"
            )
        if self.n_ratings < 1:
            raise ValueError("n_ratings must be >= 1")
        if self.month < 0:
            raise ValueError("month must be >= 0")


@dataclass
class Trace:
    """A full marketplace trace: users plus the transaction log."""

    users: list[TraceUser]
    transactions: list[Transaction]
    n_categories: int
    n_months: int

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_transactions(self) -> int:
        return len(self.transactions)

    def reputations(self) -> np.ndarray:
        return np.array([u.reputation for u in self.users], dtype=np.float64)

    def personal_sizes(self) -> np.ndarray:
        return np.array(
            [u.personal_network_size for u in self.users], dtype=np.float64
        )

    def business_sizes(self) -> np.ndarray:
        return np.array(
            [u.business_network_size for u in self.users], dtype=np.float64
        )

    def transactions_received(self) -> np.ndarray:
        """Per-user count of transactions as seller."""
        counts = np.zeros(self.n_users, dtype=np.float64)
        for t in self.transactions:
            counts[t.seller] += 1
        return counts

    def purchase_counts_by_category(self) -> np.ndarray:
        """(n_users, n_categories) purchase counts as buyer."""
        out = np.zeros((self.n_users, self.n_categories), dtype=np.float64)
        for t in self.transactions:
            out[t.buyer, t.category] += 1
        return out
