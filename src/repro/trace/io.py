"""Trace serialisation.

Round-trips a :class:`~repro.trace.schema.Trace` through a single JSON
document so that synthetic traces can be cached across runs and real
crawled datasets can be brought in from outside.  JSON keeps the format
inspectable and diff-able; the arrays involved are small enough (hundreds
of thousands of transactions) that a binary format would buy little.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.trace.schema import Trace, TraceUser, Transaction

__all__ = ["save_trace", "load_trace", "trace_to_dict", "trace_from_dict"]

#: Format marker written into every file; bumped on breaking changes.
FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """Plain-dict representation of a trace (JSON-compatible)."""
    return {
        "format_version": FORMAT_VERSION,
        "n_categories": trace.n_categories,
        "n_months": trace.n_months,
        "users": [
            {
                "user_id": u.user_id,
                "friends": sorted(u.friends),
                "business_contacts": sorted(u.business_contacts),
                "reputation": u.reputation,
                "sell_categories": sorted(u.sell_categories),
                "buy_preferences": list(u.buy_preferences),
            }
            for u in trace.users
        ],
        "transactions": [
            {
                "buyer": t.buyer,
                "seller": t.seller,
                "category": t.category,
                "rating": t.rating,
                "month": t.month,
                "counter_rating": t.counter_rating,
                "n_ratings": t.n_ratings,
            }
            for t in trace.transactions
        ],
    }


def trace_from_dict(data: dict) -> Trace:
    """Inverse of :func:`trace_to_dict` (validates the format version)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    users = [
        TraceUser(
            user_id=int(u["user_id"]),
            friends=set(int(f) for f in u["friends"]),
            business_contacts=set(int(b) for b in u["business_contacts"]),
            reputation=float(u["reputation"]),
            sell_categories=frozenset(int(c) for c in u["sell_categories"]),
            buy_preferences=tuple(int(c) for c in u["buy_preferences"]),
        )
        for u in data["users"]
    ]
    transactions = [
        Transaction(
            buyer=int(t["buyer"]),
            seller=int(t["seller"]),
            category=int(t["category"]),
            rating=float(t["rating"]),
            month=int(t["month"]),
            counter_rating=float(t.get("counter_rating", 0.0)),
            n_ratings=int(t.get("n_ratings", 1)),
        )
        for t in data["transactions"]
    ]
    return Trace(
        users=users,
        transactions=transactions,
        n_categories=int(data["n_categories"]),
        n_months=int(data["n_months"]),
    )


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))
