"""The paper's Section-3 trace analyses.

Each function reproduces one figure of the trace study:

* :func:`business_network_vs_reputation` — Fig. 1(a): near-perfect linear
  relationship (paper C ≈ 0.996);
* :func:`transactions_vs_reputation` — Fig. 1(b);
* :func:`personal_network_vs_reputation` — Fig. 2: weak relationship
  (paper C ≈ 0.092);
* :func:`rating_stats_by_distance` — Fig. 3(a)/(b): mean rating value and
  mean rating count per pair against personal-network hop distance;
* :func:`category_rank_distribution` — Fig. 4(a): CDF over per-buyer
  category ranks (paper: top 3 ranks ≈ 88%);
* :func:`interest_similarity_cdf` — Fig. 4(b): CDF of transactions against
  buyer-seller interest similarity (paper: ≤ 10% of transactions below
  0.2 similarity, ≥ 60% above 0.3).

All functions take a :class:`~repro.trace.schema.Trace` — crawled or
synthetic — and return plain NumPy structures the benchmark harness
prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import paper_correlation
from repro.core.similarity import overlap_similarity
from repro.social.graph import SocialGraph
from repro.social.paths import bfs_distances
from repro.trace.schema import Trace

__all__ = [
    "CorrelationResult",
    "DistanceRatingStats",
    "business_network_vs_reputation",
    "transactions_vs_reputation",
    "personal_network_vs_reputation",
    "rating_stats_by_distance",
    "category_rank_distribution",
    "interest_similarity_cdf",
]


@dataclass(frozen=True)
class CorrelationResult:
    """(x, y) point cloud plus the paper's correlation statistic."""

    x: np.ndarray
    y: np.ndarray
    correlation: float


def _active_mask(trace: Trace) -> np.ndarray:
    """Users with at least one transaction in either role.

    The paper's log-log scatter plots implicitly exclude users the crawl
    saw but who never traded (zero reputation, zero business network).
    """
    active = np.zeros(trace.n_users, dtype=bool)
    for t in trace.transactions:
        active[t.buyer] = True
        active[t.seller] = True
    return active


def business_network_vs_reputation(trace: Trace) -> CorrelationResult:
    """Fig. 1(a): business-network size against reputation."""
    mask = _active_mask(trace)
    x = trace.reputations()[mask]
    y = trace.business_sizes()[mask]
    return CorrelationResult(x=x, y=y, correlation=paper_correlation(x, y))


def transactions_vs_reputation(trace: Trace) -> CorrelationResult:
    """Fig. 1(b): per-user transaction count against reputation.

    Counts transactions a user participated in (either role); since
    Overstock rating is mutual, reputation accumulates from both roles and
    participation is the volume measure it tracks.
    """
    mask = _active_mask(trace)
    counts = np.zeros(trace.n_users, dtype=np.float64)
    for t in trace.transactions:
        counts[t.buyer] += 1
        counts[t.seller] += 1
    x = trace.reputations()[mask]
    y = counts[mask]
    return CorrelationResult(x=x, y=y, correlation=paper_correlation(x, y))


def personal_network_vs_reputation(trace: Trace) -> CorrelationResult:
    """Fig. 2: personal-network size against reputation (weak relation)."""
    mask = _active_mask(trace)
    x = trace.reputations()[mask]
    y = trace.personal_sizes()[mask]
    return CorrelationResult(x=x, y=y, correlation=paper_correlation(x, y))


@dataclass(frozen=True)
class DistanceRatingStats:
    """Per-hop rating statistics (hop 1..max_hops, then an overflow bucket)."""

    hops: np.ndarray
    mean_rating: np.ndarray
    mean_ratings_per_pair: np.ndarray
    n_transactions: np.ndarray


def _personal_graph(trace: Trace) -> SocialGraph:
    g = SocialGraph(trace.n_users)
    for user in trace.users:
        for friend in user.friends:
            if user.user_id < friend:
                g.add_friendship(user.user_id, friend)
    return g


def rating_stats_by_distance(trace: Trace, *, max_hops: int = 4) -> DistanceRatingStats:
    """Fig. 3: mean rating value / frequency against social hop distance.

    Pairs farther than ``max_hops`` (or disconnected) land in the last
    bucket, mirroring the paper's "distance 4" group.
    """
    if max_hops < 1:
        raise ValueError("max_hops must be >= 1")
    graph = _personal_graph(trace)
    # Distance of each transacting pair, buyer-side BFS with cutoff.
    value_sum = np.zeros(max_hops, dtype=np.float64)
    rating_count_sum = np.zeros(max_hops, dtype=np.float64)
    pair_sets: list[set[tuple[int, int]]] = [set() for _ in range(max_hops)]
    tx_count = np.zeros(max_hops, dtype=np.float64)
    distance_cache: dict[int, dict[int, int]] = {}
    for t in trace.transactions:
        dist = distance_cache.get(t.buyer)
        if dist is None:
            dist = bfs_distances(graph, t.buyer, max_hops=max_hops - 1)
            distance_cache[t.buyer] = dist
        hop = dist.get(t.seller, max_hops)
        bucket = min(hop, max_hops) - 1
        value_sum[bucket] += t.rating * t.n_ratings
        rating_count_sum[bucket] += t.n_ratings
        tx_count[bucket] += 1
        pair_sets[bucket].add((t.buyer, t.seller))
    n_pairs = np.array([max(len(s), 1) for s in pair_sets], dtype=np.float64)
    mean_rating = np.divide(
        value_sum,
        rating_count_sum,
        out=np.zeros(max_hops),
        where=rating_count_sum > 0,
    )
    return DistanceRatingStats(
        hops=np.arange(1, max_hops + 1),
        mean_rating=mean_rating,
        mean_ratings_per_pair=rating_count_sum / n_pairs,
        n_transactions=tx_count,
    )


def category_rank_distribution(trace: Trace, *, top: int = 7) -> np.ndarray:
    """Fig. 4(a): CDF over per-buyer category ranks.

    For each buyer, categories are ranked by purchase count (descending);
    the return value is the cumulative share of purchases covered by the
    top ``r`` ranks, averaged over buyers with at least one purchase.
    """
    if top < 1:
        raise ValueError("top must be >= 1")
    counts = trace.purchase_counts_by_category()
    totals = counts.sum(axis=1)
    buyers = totals > 0
    if not buyers.any():
        raise ValueError("trace has no purchases")
    ranked = -np.sort(-counts[buyers], axis=1)[:, :top]
    shares = ranked / totals[buyers][:, None]
    return np.cumsum(shares.mean(axis=0))


def interest_similarity_cdf(
    trace: Trace, *, bins: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 4(b): CDF of transactions against buyer-seller interest similarity.

    Buyer interest = behavioural purchase categories; seller interest =
    sell categories; similarity is the paper's overlap coefficient
    (Eq. (1)).  Returns ``(bin_edges, cdf)`` where ``cdf[k]`` is the share
    of transactions with similarity <= ``bin_edges[k]``.
    """
    if bins is None:
        bins = np.linspace(0.0, 1.0, 11)
    counts = trace.purchase_counts_by_category()
    buyer_interest = [frozenset(np.flatnonzero(row > 0).tolist()) for row in counts]
    sims = np.array(
        [
            overlap_similarity(
                buyer_interest[t.buyer], trace.users[t.seller].sell_categories
            )
            for t in trace.transactions
        ],
        dtype=np.float64,
    )
    cdf = np.array([(sims <= edge).mean() for edge in bins])
    return np.asarray(bins), cdf
