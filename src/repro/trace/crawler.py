"""BFS trace crawler.

The paper's data collection: "we first selected a user in the Overstock as
a seed node, and then used the breadth first search method to search
through each node in the friend list in the personal network and business
contact list in the business network."  :func:`bfs_crawl` walks the union
of both link types from a seed and returns the induced sub-trace, so the
Section-3 analyses can be run on crawled subsets exactly as the authors
did.
"""

from __future__ import annotations

from collections import deque

from repro.trace.schema import Trace, TraceUser

__all__ = ["bfs_crawl"]


def bfs_crawl(trace: Trace, seed_user: int, *, max_users: int | None = None) -> Trace:
    """Crawl ``trace`` breadth-first from ``seed_user``.

    Follows friendship and business links.  ``max_users`` caps the crawl
    (the paper's crawl was similarly budget-bounded); ``None`` crawls the
    full reachable component.  The returned trace keeps only transactions
    whose buyer *and* seller were reached, with user ids re-indexed densely
    in visit order.
    """
    if not 0 <= seed_user < trace.n_users:
        raise IndexError(f"seed user {seed_user} out of range")
    if max_users is not None and max_users < 1:
        raise ValueError("max_users must be >= 1")
    visited: dict[int, int] = {seed_user: 0}
    queue: deque[int] = deque([seed_user])
    while queue:
        if max_users is not None and len(visited) >= max_users:
            break
        current = queue.popleft()
        user = trace.users[current]
        for neighbor in sorted(user.friends | user.business_contacts):
            if neighbor in visited:
                continue
            if max_users is not None and len(visited) >= max_users:
                break
            visited[neighbor] = len(visited)
            queue.append(neighbor)

    users: list[TraceUser] = []
    for old_id, new_id in visited.items():
        old = trace.users[old_id]
        users.append(
            TraceUser(
                user_id=new_id,
                friends={visited[f] for f in old.friends if f in visited},
                business_contacts={
                    visited[b] for b in old.business_contacts if b in visited
                },
                reputation=old.reputation,
                sell_categories=old.sell_categories,
                buy_preferences=old.buy_preferences,
            )
        )
    transactions = [
        type(t)(
            buyer=visited[t.buyer],
            seller=visited[t.seller],
            category=t.category,
            rating=t.rating,
            month=t.month,
            n_ratings=t.n_ratings,
        )
        for t in trace.transactions
        if t.buyer in visited and t.seller in visited
    ]
    return Trace(
        users=users,
        transactions=transactions,
        n_categories=trace.n_categories,
        n_months=trace.n_months,
    )
