"""Synthetic Overstock trace substrate.

The paper's Section 3 analyses a crawled trace of 450,000 transaction
ratings between 200,000+ Overstock users (2008-2010).  That trace is not
publicly available, so this package provides:

* :mod:`repro.trace.schema` — user / transaction record types;
* :mod:`repro.trace.generator` — a marketplace simulator calibrated to
  every aggregate statistic the paper reports (see
  :class:`~repro.trace.generator.MarketplaceConfig`);
* :mod:`repro.trace.crawler` — the BFS crawler the authors used to walk
  personal + business networks from a seed user;
* :mod:`repro.trace.analysis` — the Section-3 analyses themselves
  (reputation/network-size correlations, per-hop rating statistics,
  category-rank CDF, interest-similarity CDF), which operate on any
  :class:`~repro.trace.schema.Trace` regardless of origin.

Because Section 3 only ever consumes aggregates of the trace, a generator
matching those aggregates exercises the identical analysis code path and
reproduces observations O1-O6 / suspicious behaviours B1-B4.
"""

from repro.trace.analysis import (
    business_network_vs_reputation,
    category_rank_distribution,
    interest_similarity_cdf,
    personal_network_vs_reputation,
    rating_stats_by_distance,
    transactions_vs_reputation,
)
from repro.trace.crawler import bfs_crawl
from repro.trace.generator import MarketplaceConfig, generate_trace
from repro.trace.io import load_trace, save_trace
from repro.trace.schema import Trace, TraceUser, Transaction

__all__ = [
    "business_network_vs_reputation",
    "category_rank_distribution",
    "interest_similarity_cdf",
    "personal_network_vs_reputation",
    "rating_stats_by_distance",
    "transactions_vs_reputation",
    "bfs_crawl",
    "MarketplaceConfig",
    "generate_trace",
    "load_trace",
    "save_trace",
    "Trace",
    "TraceUser",
    "Transaction",
]
