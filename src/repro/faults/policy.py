"""Unified retry/backoff policy for every manager-protocol send.

One :class:`RetryPolicy` describes how a sender spends time on a single
logical message: capped exponential backoff between retransmissions,
optional multiplicative jitter, a per-message deadline (the timeout
budget), and a hard retry cap.  The :class:`UnreliableTransport` and the
``DistributedSocialTrust`` failover path both derive their behaviour from
it, so "how do we retry?" has exactly one answer per
:class:`~repro.faults.config.FaultConfig`.

A shared :class:`RetryBudget` additionally bounds the *total* number of
retransmissions a component may spend across its lifetime — the classic
retry-budget pattern that stops retry storms from amplifying an outage.

Everything here is deterministic under a seeded RNG: with
``retry_jitter == 0`` no draws happen at all, and with jitter enabled the
only extra draw is one uniform per backoff wait.

When every rung of the ladder is exhausted the caller degrades through
the explicit :class:`DegradationTier` ladder — retry, successor manager,
neutral damping, skip-with-audit-event — rather than inventing its own
fallback semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.utils.rng import RngStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.faults.config import FaultConfig

__all__ = ["DegradationTier", "RetryBudget", "RetryPolicy"]


class DegradationTier(enum.Enum):
    """Graceful-degradation ladder for unreachable social information.

    Ordered from least to most lossy: transparent retries, rerouting the
    query to the ring successor of the unreachable manager, substituting
    the conservative neutral damping weight, and finally skipping the
    judgement entirely (leaving the rating undamped) with an audit event
    so the deferral is visible.
    """

    RETRY = "retry"
    SUCCESSOR = "successor"
    NEUTRAL = "neutral_damping"
    SKIP = "skip"


class RetryBudget:
    """Mutable pool of retransmissions shared across sends.

    ``limit=None`` means unlimited (every :meth:`acquire` succeeds).
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be None or >= 0, got {limit}")
        self._limit = limit
        self._spent = 0

    @property
    def limit(self) -> int | None:
        return self._limit

    @property
    def spent(self) -> int:
        return self._spent

    @property
    def remaining(self) -> int | None:
        """Retries left, or ``None`` when unlimited."""
        if self._limit is None:
            return None
        return max(0, self._limit - self._spent)

    def acquire(self) -> bool:
        """Consume one retry from the pool; False when exhausted."""
        if self._limit is not None and self._spent >= self._limit:
            return False
        self._spent += 1
        return True

    def state_dict(self) -> dict:
        return {"limit": self._limit, "spent": self._spent}

    def restore_state(self, state: dict) -> None:
        self._limit = state["limit"]
        self._spent = int(state["spent"])


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + capped jittered exponential backoff + retry cap."""

    #: Retransmissions allowed after the first attempt of one message.
    max_retries: int = 3
    #: First backoff interval; see :meth:`backoff`.
    backoff_base: float = 1.0
    #: Cap on any single backoff interval (before jitter).
    backoff_cap: float = 8.0
    #: Total time (backoff + delivery delay) allowed per message.
    deadline: float = 30.0
    #: Uniform jitter fraction: each wait is scaled by ``1 + jitter * u``
    #: with ``u ~ U[0, 1)``.  Zero performs no RNG draw.
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @classmethod
    def from_config(cls, config: "FaultConfig") -> "RetryPolicy":
        """The single policy a :class:`FaultConfig` implies."""
        return cls(
            max_retries=config.max_retries,
            backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap,
            deadline=config.timeout_budget,
            jitter=config.retry_jitter,
        )

    def backoff(self, attempt: int, rng: RngStream | None = None) -> float:
        """Wait before retransmitting after failed attempt ``attempt``
        (1-based): ``min(backoff_cap, backoff_base * 2**(attempt-1))``,
        jittered when :attr:`jitter` is non-zero.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        wait = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        if self.jitter > 0.0:
            if rng is None:
                raise ValueError("a jittered policy needs an rng")
            wait *= 1.0 + self.jitter * float(rng.random())
        return wait

    def admits_retry(self, attempts: int, elapsed: float) -> bool:
        """Whether another retransmission is allowed after ``attempts``
        sends and ``elapsed`` time spent."""
        return attempts <= self.max_retries and elapsed <= self.deadline

    def within_deadline(self, elapsed: float) -> bool:
        return elapsed <= self.deadline
