"""Fault event streams.

A :class:`FaultSchedule` decides *which* faults happen in a given
simulation cycle; the :class:`~repro.faults.injector.FaultInjector` owns
the resulting liveness state.  Two flavours share one interface:

* the **stochastic** schedule draws independent per-entity Bernoulli
  events from a :class:`FaultConfig` and a dedicated RNG stream (so
  enabling it never perturbs the simulation's own randomness);
* the **scripted** schedule replays an explicit cycle → events mapping,
  which is what deterministic failover tests and worked examples use
  ("manager 2 crashes at cycle 3, recovers at cycle 6").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.faults.config import FaultConfig
from repro.utils.rng import RngStream

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "NETWORK_SUBJECT"]


class FaultKind(enum.Enum):
    """Lifecycle fault categories the schedule can emit."""

    PEER_LEAVE = "peer_leave"
    PEER_CRASH = "peer_crash"
    PEER_JOIN = "peer_join"
    MANAGER_CRASH = "manager_crash"
    MANAGER_RECOVER = "manager_recover"
    #: A network partition bisects the node set (subject is ignored;
    #: use :data:`NETWORK_SUBJECT`).
    PARTITION_START = "partition_start"
    #: The active partition heals.
    PARTITION_HEAL = "partition_heal"
    #: An up manager turns Byzantine: it keeps answering, but serves
    #: corrupted or stale damping weights for its rows.
    MANAGER_BYZANTINE = "manager_byzantine"
    #: A Byzantine manager heals and serves honest weights again.
    MANAGER_HEAL = "manager_heal"

    @property
    def is_peer(self) -> bool:
        return self in (FaultKind.PEER_LEAVE, FaultKind.PEER_CRASH, FaultKind.PEER_JOIN)

    @property
    def is_partition(self) -> bool:
        return self in (FaultKind.PARTITION_START, FaultKind.PARTITION_HEAL)

    @property
    def is_byzantine(self) -> bool:
        return self in (FaultKind.MANAGER_BYZANTINE, FaultKind.MANAGER_HEAL)

    @property
    def takes_down(self) -> bool:
        """Whether the event removes its subject from service."""
        return self in (
            FaultKind.PEER_LEAVE,
            FaultKind.PEER_CRASH,
            FaultKind.MANAGER_CRASH,
        )


#: Subject id used by network-wide events (partitions have no single
#: subject node).
NETWORK_SUBJECT = -1


@dataclass(frozen=True)
class FaultEvent:
    """One lifecycle fault: *what* happened to *whom* at *which* cycle."""

    cycle: int
    kind: FaultKind
    subject: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {self.cycle}")


class FaultSchedule:
    """Produces the lifecycle fault events of each simulation cycle."""

    def __init__(
        self,
        config: FaultConfig | None = None,
        rng: RngStream | None = None,
        *,
        script: Mapping[int, Sequence[FaultEvent]] | None = None,
    ) -> None:
        self._config = config or FaultConfig()
        self._rng = rng
        self._script: dict[int, tuple[FaultEvent, ...]] | None = None
        if script is not None:
            self._script = {
                int(cycle): tuple(events) for cycle, events in script.items()
            }
            for cycle, events in self._script.items():
                for event in events:
                    if event.cycle != cycle:
                        raise ValueError(
                            f"event {event} filed under cycle {cycle}"
                        )
        if self._script is None and rng is None and not self._config.fault_free:
            raise ValueError("a stochastic schedule with non-zero rates needs an rng")

    @classmethod
    def scripted(cls, events: Iterable[FaultEvent]) -> "FaultSchedule":
        """Build a deterministic schedule from a flat event list."""
        by_cycle: dict[int, list[FaultEvent]] = {}
        for event in events:
            by_cycle.setdefault(event.cycle, []).append(event)
        return cls(script={c: tuple(evts) for c, evts in by_cycle.items()})

    @property
    def config(self) -> FaultConfig:
        return self._config

    @property
    def is_scripted(self) -> bool:
        return self._script is not None

    @property
    def rng(self) -> RngStream | None:
        return self._rng

    def draw(
        self,
        cycle: int,
        online: np.ndarray,
        managers_up: Mapping[int, bool],
        *,
        partition_active: bool = False,
        byzantine: Mapping[int, bool] | None = None,
    ) -> list[FaultEvent]:
        """Fault events for ``cycle`` given the current liveness state.

        ``online`` is the boolean per-peer liveness mask; ``managers_up``
        maps manager id → up; ``partition_active`` / ``byzantine`` convey
        the injector's chaos state so the stochastic schedule knows which
        transitions are drawable.  Events for already-down (or
        already-up) subjects are filtered by the injector, not here.
        """
        if self._script is not None:
            return list(self._script.get(int(cycle), ()))
        cfg = self._config
        events: list[FaultEvent] = []
        if cfg.peer_crash_rate or cfg.peer_leave_rate or cfg.peer_rejoin_rate:
            rng = self._rng
            assert rng is not None
            draws = rng.random(online.size)
            for node in range(online.size):
                if online[node]:
                    if draws[node] < cfg.peer_crash_rate:
                        events.append(FaultEvent(cycle, FaultKind.PEER_CRASH, node))
                    elif draws[node] < cfg.peer_crash_rate + cfg.peer_leave_rate:
                        events.append(FaultEvent(cycle, FaultKind.PEER_LEAVE, node))
                elif draws[node] < cfg.peer_rejoin_rate:
                    events.append(FaultEvent(cycle, FaultKind.PEER_JOIN, node))
        if cfg.manager_crash_rate or cfg.manager_recovery_rate:
            rng = self._rng
            assert rng is not None
            for manager_id in sorted(managers_up):
                draw = float(rng.random())
                if managers_up[manager_id]:
                    if draw < cfg.manager_crash_rate:
                        events.append(
                            FaultEvent(cycle, FaultKind.MANAGER_CRASH, manager_id)
                        )
                elif draw < cfg.manager_recovery_rate:
                    events.append(
                        FaultEvent(cycle, FaultKind.MANAGER_RECOVER, manager_id)
                    )
        if cfg.partition_rate and not partition_active:
            rng = self._rng
            assert rng is not None
            if float(rng.random()) < cfg.partition_rate:
                events.append(
                    FaultEvent(cycle, FaultKind.PARTITION_START, NETWORK_SUBJECT)
                )
        if cfg.byzantine_rate or cfg.byzantine_recovery_rate:
            rng = self._rng
            assert rng is not None
            corrupted = byzantine or {}
            for manager_id in sorted(managers_up):
                draw = float(rng.random())
                if not managers_up[manager_id]:
                    # A down manager serves nothing, honest or otherwise.
                    continue
                if corrupted.get(manager_id, False):
                    if draw < cfg.byzantine_recovery_rate:
                        events.append(
                            FaultEvent(cycle, FaultKind.MANAGER_HEAL, manager_id)
                        )
                elif draw < cfg.byzantine_rate:
                    events.append(
                        FaultEvent(cycle, FaultKind.MANAGER_BYZANTINE, manager_id)
                    )
        return events
