"""Fault injection for the distributed SocialTrust protocol.

The paper's resource-manager protocol (Section 4.3) is evaluated in a
fault-free world; real P2P deployments are dominated by peer churn,
manager failures, lossy messaging, network partitions, and outright
Byzantine behaviour.  This package injects exactly those faults —
deterministically, from dedicated RNG streams — and gives every layer
the observability to show *graceful degradation* instead of crashes:

* :class:`FaultConfig` — all rates and the retry policy as explicit knobs;
* :class:`FaultSchedule` / :class:`FaultEvent` — stochastic or scripted
  lifecycle event streams (churn, crashes, partitions, Byzantine turns);
* :class:`FaultInjector` — shared liveness + chaos state (peers,
  managers, partition sides, Byzantine flags) and the faulty channel;
* :class:`UnreliableTransport` — loss/delay/duplication/reordering under
  the unified :class:`RetryPolicy`;
* :class:`RetryPolicy` / :class:`RetryBudget` / :class:`DegradationTier`
  — the single deadline + capped jittered backoff + budget policy and
  the explicit graceful-degradation ladder every caller follows;
* :class:`FaultMetrics` — event log, retry/timeout/fallback/reassignment
  and partition/Byzantine counters, and the per-cycle series.
"""

from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector
from repro.faults.metrics import FaultMetrics
from repro.faults.policy import DegradationTier, RetryBudget, RetryPolicy
from repro.faults.schedule import (
    NETWORK_SUBJECT,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)
from repro.faults.transport import DeliveryReport, UnreliableTransport

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultMetrics",
    "FaultSchedule",
    "NETWORK_SUBJECT",
    "DegradationTier",
    "DeliveryReport",
    "RetryBudget",
    "RetryPolicy",
    "UnreliableTransport",
]
