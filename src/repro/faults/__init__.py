"""Fault injection for the distributed SocialTrust protocol.

The paper's resource-manager protocol (Section 4.3) is evaluated in a
fault-free world; real P2P deployments are dominated by peer churn,
manager failures, and lossy messaging.  This package injects exactly
those faults — deterministically, from dedicated RNG streams — and gives
every layer the observability to show *graceful degradation* instead of
crashes:

* :class:`FaultConfig` — all rates and the retry policy as explicit knobs;
* :class:`FaultSchedule` / :class:`FaultEvent` — stochastic or scripted
  lifecycle event streams;
* :class:`FaultInjector` — shared liveness state (peers + managers) and
  the faulty channel;
* :class:`UnreliableTransport` — loss/delay with capped exponential
  backoff under a timeout budget;
* :class:`FaultMetrics` — event log, retry/timeout/fallback/reassignment
  counters, and the per-cycle degradation series.
"""

from repro.faults.config import FaultConfig
from repro.faults.injector import FaultInjector
from repro.faults.metrics import FaultMetrics
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.faults.transport import DeliveryReport, UnreliableTransport

__all__ = [
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultMetrics",
    "FaultSchedule",
    "DeliveryReport",
    "UnreliableTransport",
]
