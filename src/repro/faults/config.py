"""Fault-model parameters.

Every failure mode the injector can produce is an explicit knob here, so a
robustness experiment is a :class:`FaultConfig` plus a seed:

* **peer churn** — per-simulation-cycle departure (graceful leave or
  abrupt crash) and rejoin probabilities;
* **manager failures** — per-cycle crash and recovery probabilities for
  the Section 4.3 resource managers;
* **lossy messaging** — per-attempt loss probability, optional delivery
  delay, and the retry policy (capped exponential backoff under a total
  timeout budget) the managers use to survive it;
* **state aging** — how fast a departed peer's interaction-ledger rows
  decay while it is away, so a rejoining peer resumes with decayed state
  rather than stale full-strength history.

All rates default to zero: a default-constructed config is the fault-free
world, and the injector built from it is provably inert (it draws from its
own RNG stream and takes every fast path), which is what lets the
zero-fault distributed execution stay bit-identical to the centralised
one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_probability

__all__ = ["FaultConfig"]


@dataclass(frozen=True)
class FaultConfig:
    """Rates and retry policy for one fault-injection scenario."""

    #: Per-simulation-cycle probability that an online peer leaves
    #: gracefully (stops issuing and serving queries).
    peer_leave_rate: float = 0.0
    #: Per-simulation-cycle probability that an online peer crashes.
    #: Operationally identical to a leave at the protocol level we model;
    #: kept distinct so event logs and metrics can tell them apart.
    peer_crash_rate: float = 0.0
    #: Per-simulation-cycle probability that an offline peer rejoins.
    peer_rejoin_rate: float = 0.0
    #: Per-simulation-cycle probability that an up resource manager crashes.
    manager_crash_rate: float = 0.0
    #: Per-simulation-cycle probability that a down manager recovers.
    manager_recovery_rate: float = 0.0
    #: Per-attempt probability that a protocol message is lost.
    message_loss_rate: float = 0.0
    #: Probability a *delivered* message is delayed.
    message_delay_rate: float = 0.0
    #: Mean of the exponential delay applied to delayed messages (in the
    #: same abstract time units as the backoff/budget below).
    mean_delay: float = 1.0
    #: Maximum retransmissions after the first attempt.
    max_retries: int = 3
    #: First backoff interval; attempt ``k`` waits
    #: ``min(backoff_cap, backoff_base * 2**(k-1))`` after a loss.
    backoff_base: float = 1.0
    #: Cap on any single backoff interval.
    backoff_cap: float = 8.0
    #: Total time (backoff + delay) a sender is willing to spend on one
    #: message before giving up and falling back.
    timeout_budget: float = 30.0
    #: Per-cycle multiplicative decay applied to a departed peer's
    #: interaction-ledger rows while it is offline.
    offline_decay: float = 0.9
    #: Uniform jitter fraction applied to each backoff wait: attempt ``k``
    #: waits ``backoff * (1 + retry_jitter * u)`` with ``u ~ U[0, 1)``.
    #: Zero (the default) draws nothing and reproduces the deterministic
    #: capped-exponential schedule exactly.
    retry_jitter: float = 0.0
    #: Total retransmissions a transport may spend across its whole
    #: lifetime (``None`` = unlimited).  Once exhausted, every send gets
    #: exactly one attempt.
    retry_budget: int | None = None
    #: Per-simulation-cycle probability that a network partition starts
    #: (bisecting the node set); ignored while one is already active.
    partition_rate: float = 0.0
    #: Cycles a stochastic partition lasts before it auto-heals.
    partition_heal_cycles: int = 3
    #: Fraction of nodes placed on the minority side of a partition.
    partition_fraction: float = 0.5
    #: Per-simulation-cycle probability that an honest up manager turns
    #: Byzantine (serves corrupted or stale damping weights).
    byzantine_rate: float = 0.0
    #: Per-simulation-cycle probability that a Byzantine manager heals.
    byzantine_recovery_rate: float = 0.0
    #: What a Byzantine manager serves: ``"suppress"`` (reports no damping
    #: for its rows), ``"stale"`` (replays the previous interval's
    #: weights), or ``"corrupt"`` (dampens every rated pair in its rows).
    byzantine_mode: str = "suppress"
    #: Probability a delivered message is duplicated in flight.
    message_duplicate_rate: float = 0.0
    #: Probability a delivered message arrives out of order.
    message_reorder_rate: float = 0.0

    _BYZANTINE_MODES = ("suppress", "stale", "corrupt")

    def __post_init__(self) -> None:
        for name in (
            "peer_leave_rate",
            "peer_crash_rate",
            "peer_rejoin_rate",
            "manager_crash_rate",
            "manager_recovery_rate",
            "message_loss_rate",
            "message_delay_rate",
            "offline_decay",
            "retry_jitter",
            "partition_rate",
            "byzantine_rate",
            "byzantine_recovery_rate",
            "message_duplicate_rate",
            "message_reorder_rate",
        ):
            check_probability(name, getattr(self, name))
        if self.mean_delay < 0:
            raise ValueError(f"mean_delay must be >= 0, got {self.mean_delay}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if self.timeout_budget <= 0:
            raise ValueError(
                f"timeout_budget must be positive, got {self.timeout_budget}"
            )
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError(
                f"retry_budget must be None or >= 0, got {self.retry_budget}"
            )
        if self.partition_heal_cycles < 1:
            raise ValueError(
                f"partition_heal_cycles must be >= 1, got {self.partition_heal_cycles}"
            )
        if not 0.0 < self.partition_fraction < 1.0:
            raise ValueError(
                f"partition_fraction must be in (0, 1), got {self.partition_fraction}"
            )
        if self.byzantine_mode not in self._BYZANTINE_MODES:
            raise ValueError(
                f"byzantine_mode must be one of {self._BYZANTINE_MODES}, "
                f"got {self.byzantine_mode!r}"
            )

    @property
    def fault_free(self) -> bool:
        """True when no failure mode can ever fire."""
        return (
            self.peer_leave_rate == 0.0
            and self.peer_crash_rate == 0.0
            and self.manager_crash_rate == 0.0
            and self.message_loss_rate == 0.0
            and self.message_delay_rate == 0.0
            and self.partition_rate == 0.0
            and self.byzantine_rate == 0.0
            and self.message_duplicate_rate == 0.0
            and self.message_reorder_rate == 0.0
        )

    @property
    def churn_enabled(self) -> bool:
        return self.peer_leave_rate > 0.0 or self.peer_crash_rate > 0.0

    @property
    def lossy(self) -> bool:
        return self.message_loss_rate > 0.0 or self.message_delay_rate > 0.0

    @property
    def unreliable(self) -> bool:
        """True when any per-message fault (loss, delay, duplication,
        reordering) can fire, i.e. when the transport needs an RNG."""
        return (
            self.lossy
            or self.message_duplicate_rate > 0.0
            or self.message_reorder_rate > 0.0
        )
