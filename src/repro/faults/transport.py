"""Lossy message transport with retries.

Models the only part of the network a Section 4.3 manager can see: a send
either arrives (possibly delayed) or vanishes.  The sender retries lost
messages with capped exponential backoff until either the retry cap or a
total timeout budget is exhausted — the standard recipe for P2P RPC
layers — and reports what happened so callers can fall back gracefully
(the distributed SocialTrust layer substitutes a conservative neutral
damping weight for pairs whose social information never arrives).

The fault-free fast path performs no RNG draws at all, so attaching a
transport with zero loss/delay rates is exactly equivalent to not having
one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.config import FaultConfig
from repro.faults.metrics import FaultMetrics
from repro.utils.rng import RngStream

__all__ = ["DeliveryReport", "UnreliableTransport"]


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of one logical send (including all retransmissions)."""

    delivered: bool
    #: Send attempts performed (1 = delivered first try).
    attempts: int
    #: Total time spent: delivery delays plus backoff waits.
    latency: float

    @property
    def retries(self) -> int:
        return self.attempts - 1


class UnreliableTransport:
    """Message channel with loss, delay, and a retry policy."""

    def __init__(
        self,
        config: FaultConfig,
        rng: RngStream | None = None,
        *,
        metrics: FaultMetrics | None = None,
    ) -> None:
        if config.lossy and rng is None:
            raise ValueError("a lossy transport needs an rng")
        self._config = config
        self._rng = rng
        self._metrics = metrics or FaultMetrics()

    @property
    def config(self) -> FaultConfig:
        return self._config

    @property
    def metrics(self) -> FaultMetrics:
        return self._metrics

    def send(self, kind: str) -> DeliveryReport:
        """Attempt delivery of one ``kind`` message, retrying on loss.

        Retransmission ``k`` waits ``min(backoff_cap, backoff_base *
        2**(k-1))`` first; the loop stops once the retry cap is hit or the
        accumulated latency (backoff + delivery delay) would exceed the
        timeout budget.
        """
        cfg = self._config
        metrics = self._metrics
        if not cfg.lossy:
            metrics.record_attempt(kind)
            return DeliveryReport(delivered=True, attempts=1, latency=0.0)
        rng = self._rng
        assert rng is not None
        elapsed = 0.0
        attempts = 0
        while attempts <= cfg.max_retries:
            attempts += 1
            metrics.record_attempt(kind)
            if rng.random() >= cfg.message_loss_rate:
                delay = 0.0
                if cfg.message_delay_rate and rng.random() < cfg.message_delay_rate:
                    delay = float(rng.exponential(cfg.mean_delay))
                    metrics.record_delay(kind)
                elapsed += delay
                if elapsed > cfg.timeout_budget:
                    # Delivered, but after the sender stopped waiting — a
                    # late response is a timeout from the caller's side.
                    break
                metrics.record_retries(attempts - 1)
                return DeliveryReport(True, attempts, elapsed)
            metrics.record_loss(kind)
            backoff = min(cfg.backoff_cap, cfg.backoff_base * (2 ** (attempts - 1)))
            elapsed += backoff
            if elapsed > cfg.timeout_budget:
                break
        metrics.record_retries(attempts - 1)
        metrics.record_timeout(kind)
        return DeliveryReport(False, attempts, elapsed)
