"""Lossy message transport with a unified retry policy.

Models the only part of the network a Section 4.3 manager can see: a send
either arrives (possibly delayed, duplicated, or out of order) or
vanishes.  The sender retries lost messages under the single
:class:`~repro.faults.policy.RetryPolicy` derived from its
:class:`FaultConfig` — capped (optionally jittered) exponential backoff
until the retry cap, the per-message deadline, or the shared
:class:`~repro.faults.policy.RetryBudget` is exhausted — and reports what
happened so callers can degrade gracefully (the distributed SocialTrust
layer walks the :class:`~repro.faults.policy.DegradationTier` ladder for
pairs whose social information never arrives).

Duplication and reordering model the delivery anomalies of epidemic /
gossip dissemination (cf. the differential-gossip line of work): the
manager protocol is idempotent per interval — reports are keyed by
(rater, ratee) pair and aggregated at interval boundaries — so both
anomalies are absorbed semantically, but they are drawn, counted, and
reported so chaos experiments can verify that claim.

The fault-free fast path performs no RNG draws at all, so attaching a
transport with zero fault rates is exactly equivalent to not having one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.config import FaultConfig
from repro.faults.metrics import FaultMetrics
from repro.faults.policy import RetryBudget, RetryPolicy
from repro.utils.rng import RngStream

__all__ = ["DeliveryReport", "UnreliableTransport"]


@dataclass(frozen=True)
class DeliveryReport:
    """Outcome of one logical send (including all retransmissions)."""

    delivered: bool
    #: Send attempts performed (1 = delivered first try).
    attempts: int
    #: Total time spent: delivery delays plus backoff waits.
    latency: float
    #: Extra copies delivered alongside the original (idempotent
    #: receivers deduplicate; counted for observability).
    duplicates: int = 0
    #: Whether the message arrived out of order relative to the
    #: sender's stream (absorbed by interval-boundary aggregation).
    reordered: bool = False

    @property
    def retries(self) -> int:
        return self.attempts - 1


class UnreliableTransport:
    """Message channel with loss, delay, duplication, and reordering."""

    def __init__(
        self,
        config: FaultConfig,
        rng: RngStream | None = None,
        *,
        metrics: FaultMetrics | None = None,
    ) -> None:
        if config.unreliable and rng is None:
            raise ValueError("an unreliable transport needs an rng")
        self._config = config
        self._rng = rng
        self._metrics = metrics or FaultMetrics()
        self._policy = RetryPolicy.from_config(config)
        self._budget = RetryBudget(config.retry_budget)

    @property
    def config(self) -> FaultConfig:
        return self._config

    @property
    def metrics(self) -> FaultMetrics:
        return self._metrics

    @property
    def policy(self) -> RetryPolicy:
        """The retry policy every send follows."""
        return self._policy

    @property
    def retry_budget(self) -> RetryBudget:
        """Lifetime retransmission pool shared by all sends."""
        return self._budget

    def send(self, kind: str) -> DeliveryReport:
        """Attempt delivery of one ``kind`` message, retrying on loss.

        Retransmission ``k`` waits ``policy.backoff(k)`` first; the loop
        stops once the retry cap, the per-message deadline, or the
        lifetime retry budget is exhausted.
        """
        cfg = self._config
        metrics = self._metrics
        if not cfg.unreliable:
            metrics.record_attempt(kind)
            return DeliveryReport(delivered=True, attempts=1, latency=0.0)
        rng = self._rng
        assert rng is not None
        policy = self._policy
        elapsed = 0.0
        attempts = 0
        while True:
            attempts += 1
            metrics.record_attempt(kind)
            if rng.random() >= cfg.message_loss_rate:
                delay = 0.0
                if cfg.message_delay_rate and rng.random() < cfg.message_delay_rate:
                    delay = float(rng.exponential(cfg.mean_delay))
                    metrics.record_delay(kind)
                elapsed += delay
                if not policy.within_deadline(elapsed):
                    # Delivered, but after the sender stopped waiting — a
                    # late response is a timeout from the caller's side.
                    break
                metrics.record_retries(attempts - 1)
                duplicates = 0
                if (
                    cfg.message_duplicate_rate > 0.0
                    and rng.random() < cfg.message_duplicate_rate
                ):
                    duplicates = 1
                    metrics.record_duplicate(kind)
                reordered = False
                if (
                    cfg.message_reorder_rate > 0.0
                    and rng.random() < cfg.message_reorder_rate
                ):
                    reordered = True
                    metrics.record_reorder(kind)
                return DeliveryReport(
                    True, attempts, elapsed, duplicates=duplicates, reordered=reordered
                )
            metrics.record_loss(kind)
            elapsed += policy.backoff(attempts, rng)
            if not policy.admits_retry(attempts, elapsed):
                break
            if not self._budget.acquire():
                break
        metrics.record_retries(attempts - 1)
        metrics.record_timeout(kind)
        return DeliveryReport(False, attempts, elapsed)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Mutable transport state (the retry budget; the RNG is shared
        with the injector and serialized there)."""
        return {"budget": self._budget.state_dict()}

    def restore_state(self, state: dict) -> None:
        self._budget.restore_state(state["budget"])
