"""The fault injector — liveness state plus the faulty channel.

One :class:`FaultInjector` is shared by the :class:`~repro.p2p.simulator.
Simulation` (peer churn) and the :class:`~repro.core.manager.
DistributedSocialTrust` (manager failures, lossy messaging), so both
layers see one consistent failure world:

* it owns the boolean per-peer liveness mask and the per-manager up/down
  map, advanced once per simulation cycle from a
  :class:`~repro.faults.schedule.FaultSchedule`;
* it owns the :class:`~repro.faults.transport.UnreliableTransport` the
  managers send ``rating_report`` / ``info_request`` traffic through;
* every lifecycle event, message loss, retry, timeout fallback and
  reassignment lands in one shared
  :class:`~repro.faults.metrics.FaultMetrics`.

All RNG draws come from the injector's own stream, never the
simulation's, so a zero-rate injector leaves a run bit-identical to one
without any injector at all.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.faults.config import FaultConfig
from repro.faults.metrics import FaultMetrics
from repro.faults.schedule import (
    NETWORK_SUBJECT,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)
from repro.faults.transport import UnreliableTransport
from repro.utils.rng import RngStream

__all__ = ["FaultInjector"]


class FaultInjector:
    """Tracks who is alive and injects faults into a distributed run."""

    def __init__(
        self,
        n_nodes: int,
        manager_ids: Iterable[int] = (),
        *,
        config: FaultConfig | None = None,
        rng: RngStream | None = None,
        schedule: FaultSchedule | None = None,
        metrics: FaultMetrics | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if config is None:
            config = schedule.config if schedule is not None else FaultConfig()
        self._n = int(n_nodes)
        self._config = config
        self._metrics = metrics or FaultMetrics()
        self._schedule = schedule or FaultSchedule(config, rng)
        self._transport = UnreliableTransport(config, rng, metrics=self._metrics)
        self._rng = rng if rng is not None else self._schedule.rng
        self._online = np.ones(self._n, dtype=bool)
        self._managers: dict[int, bool] = {}
        self._byzantine: dict[int, bool] = {}
        self._partition_side: np.ndarray | None = None
        self._partition_heal_at: int | None = None
        self._cycle = 0
        self._obs = None
        self.register_managers(manager_ids)

    def bind_observability(self, observability) -> None:
        """Publish lifecycle counters and liveness gauges into an
        :class:`~repro.obs.Observability` bundle from :meth:`advance` on.

        Idempotent; called by an observability-enabled simulation so the
        injector needs no constructor change at its many build sites.
        """
        self._obs = observability

    # -- structure ----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def config(self) -> FaultConfig:
        return self._config

    @property
    def metrics(self) -> FaultMetrics:
        return self._metrics

    @property
    def transport(self) -> UnreliableTransport:
        return self._transport

    @property
    def cycle(self) -> int:
        return self._cycle

    def register_managers(self, manager_ids: Iterable[int]) -> None:
        """Add managers (idempotent; new ones start up).

        Re-registering a known manager — which happens when a
        ``DistributedSocialTrust`` layer is rebuilt around a resumed
        injector — changes nothing and counts nothing: only genuinely
        new ids are reported to :meth:`FaultMetrics.
        record_managers_registered`.
        """
        new = 0
        for manager_id in manager_ids:
            mid = int(manager_id)
            if mid not in self._managers:
                self._managers[mid] = True
                new += 1
            self._byzantine.setdefault(mid, False)
        if new:
            self._metrics.record_managers_registered(new)

    # -- liveness queries -----------------------------------------------------

    @property
    def online_mask(self) -> np.ndarray:
        """Read-only per-peer liveness mask."""
        view = self._online.view()
        view.flags.writeable = False
        return view

    def peer_online(self, node: int) -> bool:
        return bool(self._online[node])

    @property
    def any_offline(self) -> bool:
        return not self._online.all()

    def offline_nodes(self) -> np.ndarray:
        return np.flatnonzero(~self._online)

    @property
    def peers_online(self) -> int:
        return int(self._online.sum())

    def manager_up(self, manager_id: int) -> bool:
        return self._managers.get(int(manager_id), False)

    def down_managers(self) -> frozenset[int]:
        return frozenset(m for m, up in self._managers.items() if not up)

    @property
    def managers_up_count(self) -> int:
        return sum(1 for up in self._managers.values() if up)

    # -- partition queries ----------------------------------------------------

    @property
    def partition_active(self) -> bool:
        return self._partition_side is not None

    @property
    def partition_mask(self) -> np.ndarray | None:
        """Read-only per-peer side mask (True = side A), or ``None``
        while the network is whole."""
        if self._partition_side is None:
            return None
        view = self._partition_side.view()
        view.flags.writeable = False
        return view

    def same_side(self, a: int, b: int) -> bool:
        """Whether peers ``a`` and ``b`` can currently exchange messages."""
        if self._partition_side is None:
            return True
        return bool(self._partition_side[a] == self._partition_side[b])

    def manager_side(self, manager_id: int) -> bool | None:
        """Partition side of a manager, or ``None`` while whole.

        Manager ``m`` is modelled as hosted on peer ``m`` when that peer
        exists; managers outside the node-id range sit on side A.
        """
        if self._partition_side is None:
            return None
        mid = int(manager_id)
        if 0 <= mid < self._n:
            return bool(self._partition_side[mid])
        return True

    # -- Byzantine queries ----------------------------------------------------

    def manager_byzantine(self, manager_id: int) -> bool:
        return self._byzantine.get(int(manager_id), False)

    def byzantine_managers(self) -> frozenset[int]:
        return frozenset(m for m, bad in self._byzantine.items() if bad)

    # -- state transitions ------------------------------------------------------

    def _draw_partition_side(self) -> np.ndarray:
        """Side mask of a fresh partition: a random node subset of size
        ``round(n * partition_fraction)`` (contiguous prefix when the
        injector has no RNG, i.e. fully scripted runs)."""
        side_size = int(round(self._n * self._config.partition_fraction))
        side_size = max(1, min(self._n - 1, side_size))
        mask = np.zeros(self._n, dtype=bool)
        if self._rng is not None:
            mask[self._rng.permutation(self._n)[:side_size]] = True
        else:
            mask[:side_size] = True
        return mask

    def _apply(self, event: FaultEvent) -> bool:
        """Apply one event; returns False for no-ops (already in state)."""
        if event.kind.is_peer:
            node = event.subject
            if not 0 <= node < self._n:
                raise IndexError(f"peer {node} out of range [0, {self._n})")
            target = not event.kind.takes_down
            if bool(self._online[node]) == target:
                return False
            self._online[node] = target
            return True
        if event.kind is FaultKind.PARTITION_START:
            if self._partition_side is not None:
                return False
            self._partition_side = self._draw_partition_side()
            if not self._schedule.is_scripted:
                self._partition_heal_at = (
                    event.cycle + self._config.partition_heal_cycles
                )
            return True
        if event.kind is FaultKind.PARTITION_HEAL:
            if self._partition_side is None:
                return False
            self._partition_side = None
            self._partition_heal_at = None
            return True
        manager_id = int(event.subject)
        if manager_id not in self._managers:
            raise KeyError(f"unknown manager {manager_id}")
        if event.kind.is_byzantine:
            target = event.kind is FaultKind.MANAGER_BYZANTINE
            if target and not self._managers[manager_id]:
                return False  # a down manager cannot serve lies
            if self._byzantine[manager_id] == target:
                return False
            self._byzantine[manager_id] = target
            return True
        target = event.kind is FaultKind.MANAGER_RECOVER
        if self._managers[manager_id] == target:
            return False
        self._managers[manager_id] = target
        if not target:
            # A crash wipes the corrupted in-memory state: the manager
            # restarts honest if it ever recovers.
            self._byzantine[manager_id] = False
        return True

    def advance(self) -> list[FaultEvent]:
        """Advance one simulation cycle; returns the events that applied."""
        applied: list[FaultEvent] = []
        if (
            self._partition_heal_at is not None
            and self._cycle >= self._partition_heal_at
        ):
            heal = FaultEvent(self._cycle, FaultKind.PARTITION_HEAL, NETWORK_SUBJECT)
            if self._apply(heal):
                self._metrics.record_event(heal)
                applied.append(heal)
        drawn = self._schedule.draw(
            self._cycle,
            self._online,
            self._managers,
            partition_active=self.partition_active,
            byzantine=self._byzantine,
        )
        for event in drawn:
            if self._apply(event):
                self._metrics.record_event(event)
                applied.append(event)
        self._cycle += 1
        if self._obs is not None:
            registry = self._obs.metrics
            if applied:
                registry.counter("faults.events").inc(len(applied))
            registry.gauge("faults.peers_online").set(self.peers_online)
            registry.gauge("faults.managers_up").set(self.managers_up_count)
            registry.gauge("faults.partition_active").set(
                1.0 if self.partition_active else 0.0
            )
            registry.gauge("faults.byzantine_managers").set(
                len(self.byzantine_managers())
            )
        return applied

    # -- manual controls (tests, examples, operational drills) -------------------

    def _force(self, kind: FaultKind, subject: int) -> None:
        event = FaultEvent(self._cycle, kind, subject)
        if self._apply(event):
            self._metrics.record_event(event)

    def fail_peer(self, node: int, *, crash: bool = False) -> None:
        self._force(FaultKind.PEER_CRASH if crash else FaultKind.PEER_LEAVE, node)

    def restore_peer(self, node: int) -> None:
        self._force(FaultKind.PEER_JOIN, node)

    def fail_manager(self, manager_id: int) -> None:
        self._force(FaultKind.MANAGER_CRASH, manager_id)

    def restore_manager(self, manager_id: int) -> None:
        self._force(FaultKind.MANAGER_RECOVER, manager_id)

    def start_partition(
        self,
        side: np.ndarray | None = None,
        *,
        heal_after: int | None = None,
    ) -> None:
        """Start a partition now, optionally with an explicit side mask
        and an auto-heal delay in cycles."""
        if self._partition_side is not None:
            return
        event = FaultEvent(self._cycle, FaultKind.PARTITION_START, NETWORK_SUBJECT)
        if side is not None:
            mask = np.asarray(side, dtype=bool)
            if mask.shape != (self._n,):
                raise ValueError(f"side mask must have shape ({self._n},)")
            if mask.all() or not mask.any():
                raise ValueError("side mask must split the nodes in two")
            self._partition_side = mask.copy()
            self._partition_heal_at = None
        else:
            self._apply(event)
        if heal_after is not None:
            if heal_after < 1:
                raise ValueError(f"heal_after must be >= 1, got {heal_after}")
            self._partition_heal_at = self._cycle + heal_after
        self._metrics.record_event(event)

    def heal_partition(self) -> None:
        self._force(FaultKind.PARTITION_HEAL, NETWORK_SUBJECT)

    def make_byzantine(self, manager_id: int) -> None:
        self._force(FaultKind.MANAGER_BYZANTINE, manager_id)

    def heal_byzantine(self, manager_id: int) -> None:
        self._force(FaultKind.MANAGER_HEAL, manager_id)

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Every mutable piece of the failure world, for cycle-boundary
        checkpoints: liveness, chaos state, shared metrics, the retry
        budget, and the injector's RNG stream."""
        return {
            "cycle": self._cycle,
            "online": self._online.copy(),
            "managers": [[mid, up] for mid, up in sorted(self._managers.items())],
            "byzantine": [
                [mid, bad] for mid, bad in sorted(self._byzantine.items())
            ],
            "partition_side": (
                None if self._partition_side is None else self._partition_side.copy()
            ),
            "partition_heal_at": self._partition_heal_at,
            "transport": self._transport.state_dict(),
            "metrics": self._metrics.state_dict(),
            "rng": None if self._rng is None else self._rng.bit_generator.state,
        }

    def restore_state(self, state: dict) -> None:
        self._cycle = int(state["cycle"])
        online = np.asarray(state["online"], dtype=bool)
        if online.shape != self._online.shape:
            raise ValueError(
                f"online mask shape {online.shape} != ({self._n},)"
            )
        self._online = online.copy()
        self._managers = {int(mid): bool(up) for mid, up in state["managers"]}
        self._byzantine = {int(mid): bool(bad) for mid, bad in state["byzantine"]}
        side = state["partition_side"]
        self._partition_side = (
            None if side is None else np.asarray(side, dtype=bool).copy()
        )
        heal_at = state["partition_heal_at"]
        self._partition_heal_at = None if heal_at is None else int(heal_at)
        self._transport.restore_state(state["transport"])
        self._metrics.restore_state(state["metrics"])
        if state["rng"] is not None:
            if self._rng is None:
                raise ValueError(
                    "checkpoint carries an injector RNG state but this "
                    "injector was built without an rng"
                )
            self._rng.bit_generator.state = state["rng"]
