"""The fault injector — liveness state plus the faulty channel.

One :class:`FaultInjector` is shared by the :class:`~repro.p2p.simulator.
Simulation` (peer churn) and the :class:`~repro.core.manager.
DistributedSocialTrust` (manager failures, lossy messaging), so both
layers see one consistent failure world:

* it owns the boolean per-peer liveness mask and the per-manager up/down
  map, advanced once per simulation cycle from a
  :class:`~repro.faults.schedule.FaultSchedule`;
* it owns the :class:`~repro.faults.transport.UnreliableTransport` the
  managers send ``rating_report`` / ``info_request`` traffic through;
* every lifecycle event, message loss, retry, timeout fallback and
  reassignment lands in one shared
  :class:`~repro.faults.metrics.FaultMetrics`.

All RNG draws come from the injector's own stream, never the
simulation's, so a zero-rate injector leaves a run bit-identical to one
without any injector at all.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.faults.config import FaultConfig
from repro.faults.metrics import FaultMetrics
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.faults.transport import UnreliableTransport
from repro.utils.rng import RngStream

__all__ = ["FaultInjector"]


class FaultInjector:
    """Tracks who is alive and injects faults into a distributed run."""

    def __init__(
        self,
        n_nodes: int,
        manager_ids: Iterable[int] = (),
        *,
        config: FaultConfig | None = None,
        rng: RngStream | None = None,
        schedule: FaultSchedule | None = None,
        metrics: FaultMetrics | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if config is None:
            config = schedule.config if schedule is not None else FaultConfig()
        self._n = int(n_nodes)
        self._config = config
        self._metrics = metrics or FaultMetrics()
        self._schedule = schedule or FaultSchedule(config, rng)
        self._transport = UnreliableTransport(config, rng, metrics=self._metrics)
        self._online = np.ones(self._n, dtype=bool)
        self._managers: dict[int, bool] = {int(m): True for m in manager_ids}
        self._cycle = 0
        self._obs = None

    def bind_observability(self, observability) -> None:
        """Publish lifecycle counters and liveness gauges into an
        :class:`~repro.obs.Observability` bundle from :meth:`advance` on.

        Idempotent; called by an observability-enabled simulation so the
        injector needs no constructor change at its many build sites.
        """
        self._obs = observability

    # -- structure ----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self._n

    @property
    def config(self) -> FaultConfig:
        return self._config

    @property
    def metrics(self) -> FaultMetrics:
        return self._metrics

    @property
    def transport(self) -> UnreliableTransport:
        return self._transport

    @property
    def cycle(self) -> int:
        return self._cycle

    def register_managers(self, manager_ids: Iterable[int]) -> None:
        """Add managers (idempotent; new ones start up)."""
        for manager_id in manager_ids:
            self._managers.setdefault(int(manager_id), True)

    # -- liveness queries -----------------------------------------------------

    @property
    def online_mask(self) -> np.ndarray:
        """Read-only per-peer liveness mask."""
        view = self._online.view()
        view.flags.writeable = False
        return view

    def peer_online(self, node: int) -> bool:
        return bool(self._online[node])

    @property
    def any_offline(self) -> bool:
        return not self._online.all()

    def offline_nodes(self) -> np.ndarray:
        return np.flatnonzero(~self._online)

    @property
    def peers_online(self) -> int:
        return int(self._online.sum())

    def manager_up(self, manager_id: int) -> bool:
        return self._managers.get(int(manager_id), False)

    def down_managers(self) -> frozenset[int]:
        return frozenset(m for m, up in self._managers.items() if not up)

    @property
    def managers_up_count(self) -> int:
        return sum(1 for up in self._managers.values() if up)

    # -- state transitions ------------------------------------------------------

    def _apply(self, event: FaultEvent) -> bool:
        """Apply one event; returns False for no-ops (already in state)."""
        if event.kind.is_peer:
            node = event.subject
            if not 0 <= node < self._n:
                raise IndexError(f"peer {node} out of range [0, {self._n})")
            target = not event.kind.takes_down
            if bool(self._online[node]) == target:
                return False
            self._online[node] = target
            return True
        manager_id = int(event.subject)
        if manager_id not in self._managers:
            raise KeyError(f"unknown manager {manager_id}")
        target = event.kind is FaultKind.MANAGER_RECOVER
        if self._managers[manager_id] == target:
            return False
        self._managers[manager_id] = target
        return True

    def advance(self) -> list[FaultEvent]:
        """Advance one simulation cycle; returns the events that applied."""
        drawn = self._schedule.draw(self._cycle, self._online, self._managers)
        applied: list[FaultEvent] = []
        for event in drawn:
            if self._apply(event):
                self._metrics.record_event(event)
                applied.append(event)
        self._cycle += 1
        if self._obs is not None:
            registry = self._obs.metrics
            if applied:
                registry.counter("faults.events").inc(len(applied))
            registry.gauge("faults.peers_online").set(self.peers_online)
            registry.gauge("faults.managers_up").set(self.managers_up_count)
        return applied

    # -- manual controls (tests, examples, operational drills) -------------------

    def _force(self, kind: FaultKind, subject: int) -> None:
        event = FaultEvent(self._cycle, kind, subject)
        if self._apply(event):
            self._metrics.record_event(event)

    def fail_peer(self, node: int, *, crash: bool = False) -> None:
        self._force(FaultKind.PEER_CRASH if crash else FaultKind.PEER_LEAVE, node)

    def restore_peer(self, node: int) -> None:
        self._force(FaultKind.PEER_JOIN, node)

    def fail_manager(self, manager_id: int) -> None:
        self._force(FaultKind.MANAGER_CRASH, manager_id)

    def restore_manager(self, manager_id: int) -> None:
        self._force(FaultKind.MANAGER_RECOVER, manager_id)
