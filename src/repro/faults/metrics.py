"""Fault observability.

One :class:`FaultMetrics` instance is shared by every component of a
faulty run — the injector logs lifecycle events into it, the transport
logs message attempts/losses/retries/timeouts, the distributed manager
layer logs reassignments and neutral-damping fallbacks, and the
simulation snapshots the cumulative counters once per simulation cycle so
the degradation *series* (how retries, timeouts, fallbacks and
reassignments accumulate as the run progresses) is available next to the
reputation history.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

__all__ = ["FaultMetrics"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.faults.schedule import FaultEvent


class FaultMetrics:
    """Counters, event log, and per-cycle series for one faulty run."""

    def __init__(self) -> None:
        #: Lifecycle events by :class:`FaultKind` value.
        self.events: Counter = Counter()
        #: Message send attempts by message kind.
        self.attempts: Counter = Counter()
        #: Lost attempts by message kind.
        self.losses: Counter = Counter()
        #: Delayed deliveries by message kind.
        self.delays: Counter = Counter()
        #: Messages abandoned after exhausting retries/budget, by kind.
        self.timeouts: Counter = Counter()
        #: Deliveries duplicated in flight, by message kind.
        self.duplicates: Counter = Counter()
        #: Deliveries arriving out of order, by message kind.
        self.reorders: Counter = Counter()
        self._retries = 0
        self._fallbacks = 0
        self._reassignments = 0
        self._partition_blocks = 0
        self._byzantine_corruptions = 0
        self._managers_registered = 0
        self._event_log: list["FaultEvent"] = []
        self._series: list[dict[str, float]] = []

    # -- recording ----------------------------------------------------------

    def record_event(self, event: "FaultEvent") -> None:
        self.events[event.kind.value] += 1
        self._event_log.append(event)

    def record_attempt(self, kind: str) -> None:
        self.attempts[kind] += 1

    def record_loss(self, kind: str) -> None:
        self.losses[kind] += 1

    def record_delay(self, kind: str) -> None:
        self.delays[kind] += 1

    def record_retries(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"retry count must be >= 0, got {count}")
        self._retries += count

    def record_timeout(self, kind: str) -> None:
        self.timeouts[kind] += 1

    def record_fallback(self) -> None:
        """One suspected pair judged with the neutral damping weight
        because its social information stayed unreachable."""
        self._fallbacks += 1

    def record_reassignment(self, n_nodes: int = 1) -> None:
        """``n_nodes`` managed peers served by a failover manager this
        update because their home manager is down."""
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
        self._reassignments += n_nodes

    def record_duplicate(self, kind: str) -> None:
        self.duplicates[kind] += 1

    def record_reorder(self, kind: str) -> None:
        self.reorders[kind] += 1

    def record_partition_block(self, count: int = 1) -> None:
        """``count`` protocol exchanges skipped because the endpoints sit
        on opposite sides of an active network partition."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._partition_blocks += count

    def record_byzantine_corruption(self, count: int = 1) -> None:
        """``count`` damping-weight rows served corrupted or stale by a
        Byzantine manager this update."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._byzantine_corruptions += count

    def record_managers_registered(self, count: int) -> None:
        """``count`` genuinely *new* managers registered with the
        injector (re-registrations after a resume must not be counted)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._managers_registered += count

    # -- cumulative counters -------------------------------------------------

    @property
    def retries(self) -> int:
        return self._retries

    @property
    def fallbacks(self) -> int:
        return self._fallbacks

    @property
    def reassignments(self) -> int:
        return self._reassignments

    @property
    def partition_blocks(self) -> int:
        return self._partition_blocks

    @property
    def byzantine_corruptions(self) -> int:
        return self._byzantine_corruptions

    @property
    def managers_registered(self) -> int:
        return self._managers_registered

    @property
    def total_duplicates(self) -> int:
        return sum(self.duplicates.values())

    @property
    def total_reorders(self) -> int:
        return sum(self.reorders.values())

    @property
    def total_timeouts(self) -> int:
        return sum(self.timeouts.values())

    @property
    def total_losses(self) -> int:
        return sum(self.losses.values())

    @property
    def event_log(self) -> tuple["FaultEvent", ...]:
        return tuple(self._event_log)

    # -- per-cycle series -----------------------------------------------------

    def snapshot_cycle(
        self, cycle: int, *, peers_online: int, managers_up: int
    ) -> None:
        """Append one row of the degradation series (cumulative counters)."""
        self._series.append(
            {
                "cycle": float(cycle),
                "peers_online": float(peers_online),
                "managers_up": float(managers_up),
                "events": float(sum(self.events.values())),
                "losses": float(self.total_losses),
                "retries": float(self._retries),
                "timeouts": float(self.total_timeouts),
                "fallbacks": float(self._fallbacks),
                "reassignments": float(self._reassignments),
                "partition_blocks": float(self._partition_blocks),
                "byzantine_corruptions": float(self._byzantine_corruptions),
            }
        )

    def series(self) -> tuple[dict[str, float], ...]:
        """The per-cycle rows recorded by :meth:`snapshot_cycle`."""
        return tuple(self._series)

    def summary(self) -> dict[str, int]:
        """Flat cumulative totals, for reports and experiment metadata."""
        return {
            "events": sum(self.events.values()),
            "attempts": sum(self.attempts.values()),
            "losses": self.total_losses,
            "delays": sum(self.delays.values()),
            "retries": self._retries,
            "timeouts": self.total_timeouts,
            "fallbacks": self._fallbacks,
            "reassignments": self._reassignments,
            "duplicates": self.total_duplicates,
            "reorders": self.total_reorders,
            "partition_blocks": self._partition_blocks,
            "byzantine_corruptions": self._byzantine_corruptions,
        }

    def reset(self) -> None:
        self.events.clear()
        self.attempts.clear()
        self.losses.clear()
        self.delays.clear()
        self.timeouts.clear()
        self.duplicates.clear()
        self.reorders.clear()
        self._retries = 0
        self._fallbacks = 0
        self._reassignments = 0
        self._partition_blocks = 0
        self._byzantine_corruptions = 0
        self._managers_registered = 0
        self._event_log.clear()
        self._series.clear()

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-friendly snapshot of every counter, the event log, and
        the per-cycle series (for cycle-boundary checkpoints)."""
        return {
            "events": dict(self.events),
            "attempts": dict(self.attempts),
            "losses": dict(self.losses),
            "delays": dict(self.delays),
            "timeouts": dict(self.timeouts),
            "duplicates": dict(self.duplicates),
            "reorders": dict(self.reorders),
            "retries": self._retries,
            "fallbacks": self._fallbacks,
            "reassignments": self._reassignments,
            "partition_blocks": self._partition_blocks,
            "byzantine_corruptions": self._byzantine_corruptions,
            "managers_registered": self._managers_registered,
            "event_log": [
                {"cycle": e.cycle, "kind": e.kind.value, "subject": e.subject}
                for e in self._event_log
            ],
            "series": [dict(row) for row in self._series],
        }

    def restore_state(self, state: dict) -> None:
        from repro.faults.schedule import FaultEvent, FaultKind

        self.reset()
        self.events.update(state["events"])
        self.attempts.update(state["attempts"])
        self.losses.update(state["losses"])
        self.delays.update(state["delays"])
        self.timeouts.update(state["timeouts"])
        self.duplicates.update(state["duplicates"])
        self.reorders.update(state["reorders"])
        self._retries = int(state["retries"])
        self._fallbacks = int(state["fallbacks"])
        self._reassignments = int(state["reassignments"])
        self._partition_blocks = int(state["partition_blocks"])
        self._byzantine_corruptions = int(state["byzantine_corruptions"])
        self._managers_registered = int(state["managers_registered"])
        self._event_log = [
            FaultEvent(int(e["cycle"]), FaultKind(e["kind"]), int(e["subject"]))
            for e in state["event_log"]
        ]
        self._series = [dict(row) for row in state["series"]]
