"""Fault observability.

One :class:`FaultMetrics` instance is shared by every component of a
faulty run — the injector logs lifecycle events into it, the transport
logs message attempts/losses/retries/timeouts, the distributed manager
layer logs reassignments and neutral-damping fallbacks, and the
simulation snapshots the cumulative counters once per simulation cycle so
the degradation *series* (how retries, timeouts, fallbacks and
reassignments accumulate as the run progresses) is available next to the
reputation history.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

__all__ = ["FaultMetrics"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.faults.schedule import FaultEvent


class FaultMetrics:
    """Counters, event log, and per-cycle series for one faulty run."""

    def __init__(self) -> None:
        #: Lifecycle events by :class:`FaultKind` value.
        self.events: Counter = Counter()
        #: Message send attempts by message kind.
        self.attempts: Counter = Counter()
        #: Lost attempts by message kind.
        self.losses: Counter = Counter()
        #: Delayed deliveries by message kind.
        self.delays: Counter = Counter()
        #: Messages abandoned after exhausting retries/budget, by kind.
        self.timeouts: Counter = Counter()
        self._retries = 0
        self._fallbacks = 0
        self._reassignments = 0
        self._event_log: list["FaultEvent"] = []
        self._series: list[dict[str, float]] = []

    # -- recording ----------------------------------------------------------

    def record_event(self, event: "FaultEvent") -> None:
        self.events[event.kind.value] += 1
        self._event_log.append(event)

    def record_attempt(self, kind: str) -> None:
        self.attempts[kind] += 1

    def record_loss(self, kind: str) -> None:
        self.losses[kind] += 1

    def record_delay(self, kind: str) -> None:
        self.delays[kind] += 1

    def record_retries(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"retry count must be >= 0, got {count}")
        self._retries += count

    def record_timeout(self, kind: str) -> None:
        self.timeouts[kind] += 1

    def record_fallback(self) -> None:
        """One suspected pair judged with the neutral damping weight
        because its social information stayed unreachable."""
        self._fallbacks += 1

    def record_reassignment(self, n_nodes: int = 1) -> None:
        """``n_nodes`` managed peers served by a failover manager this
        update because their home manager is down."""
        if n_nodes < 0:
            raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
        self._reassignments += n_nodes

    # -- cumulative counters -------------------------------------------------

    @property
    def retries(self) -> int:
        return self._retries

    @property
    def fallbacks(self) -> int:
        return self._fallbacks

    @property
    def reassignments(self) -> int:
        return self._reassignments

    @property
    def total_timeouts(self) -> int:
        return sum(self.timeouts.values())

    @property
    def total_losses(self) -> int:
        return sum(self.losses.values())

    @property
    def event_log(self) -> tuple["FaultEvent", ...]:
        return tuple(self._event_log)

    # -- per-cycle series -----------------------------------------------------

    def snapshot_cycle(
        self, cycle: int, *, peers_online: int, managers_up: int
    ) -> None:
        """Append one row of the degradation series (cumulative counters)."""
        self._series.append(
            {
                "cycle": float(cycle),
                "peers_online": float(peers_online),
                "managers_up": float(managers_up),
                "events": float(sum(self.events.values())),
                "losses": float(self.total_losses),
                "retries": float(self._retries),
                "timeouts": float(self.total_timeouts),
                "fallbacks": float(self._fallbacks),
                "reassignments": float(self._reassignments),
            }
        )

    def series(self) -> tuple[dict[str, float], ...]:
        """The per-cycle rows recorded by :meth:`snapshot_cycle`."""
        return tuple(self._series)

    def summary(self) -> dict[str, int]:
        """Flat cumulative totals, for reports and experiment metadata."""
        return {
            "events": sum(self.events.values()),
            "attempts": sum(self.attempts.values()),
            "losses": self.total_losses,
            "delays": sum(self.delays.values()),
            "retries": self._retries,
            "timeouts": self.total_timeouts,
            "fallbacks": self._fallbacks,
            "reassignments": self._reassignments,
        }

    def reset(self) -> None:
        self.events.clear()
        self.attempts.clear()
        self.losses.clear()
        self.delays.clear()
        self.timeouts.clear()
        self._retries = 0
        self._fallbacks = 0
        self._reassignments = 0
        self._event_log.clear()
        self._series.clear()
